//! φ boundary hardening: explicit coverage for φ = 0, φ = 1, and fractions within
//! `1/N` of a rank boundary, across the SUM / MIN / MAX / LEX solvers.
//!
//! The sharp edge is floating point: the target rank is `⌊φ·N⌋`, and a fraction
//! computed as `r / N` in `f64` can land a few ULPs below the real quotient (e.g.
//! `(1.0 / 49.0) * 49.0 < 1.0`), which a naive floor sends to rank `r − 1`. The
//! `target_rank` helper snaps near-integer products before flooring; these tests pin
//! that behavior end to end.

use quantile_joins::prelude::*;
use quantile_joins::workload::path::PathConfig;

fn three_path(seed: u64) -> Instance {
    PathConfig {
        atoms: 3,
        tuples_per_relation: 40,
        join_domain: 6,
        weight_range: 500,
        skew: 0.3,
        seed,
    }
    .generate()
}

fn rankings_under_test(instance: &Instance) -> Vec<Ranking> {
    vec![
        Ranking::min(instance.query().variables()),
        Ranking::max(instance.query().variables()),
        Ranking::lex(vars(&["x2", "x4", "x1"])),
        // Adjacent partial SUM (tractable side of Theorem 5.6).
        Ranking::sum(vars(&["x1", "x2", "x3"])),
    ]
}

fn assert_valid(instance: &Instance, ranking: &Ranking, result: &QuantileResult, label: &str) {
    let (below, equal) =
        quantile_joins::core::quantile::rank_of_weight(instance, ranking, &result.weight).unwrap();
    assert!(
        result.target_index >= below && result.target_index < below + equal,
        "{label}: target {} outside window [{}, {})",
        result.target_index,
        below,
        below + equal
    );
}

#[test]
fn target_rank_is_exact_at_every_boundary_fraction() {
    // r/N computed in f64 must map back to rank r for every r, including the values
    // where the product rounds below the integer (N = 49 exhibits this for r = 1).
    for total in [1u128, 2, 3, 7, 49, 50, 1000, 12_345] {
        for r in 0..total.min(200) {
            let phi = r as f64 / total as f64;
            assert_eq!(
                target_rank(phi, total),
                r,
                "phi = {r}/{total} must target rank {r}"
            );
        }
    }
}

#[test]
fn target_rank_respects_offsets_between_boundaries() {
    for total in [10u128, 49, 100] {
        for r in 1..total.min(30) {
            let below = (r as f64 - 0.5) / total as f64;
            let above = (r as f64 + 0.5) / total as f64;
            assert_eq!(target_rank(below, total), r - 1, "({r}-0.5)/{total}");
            assert_eq!(
                target_rank(above, total),
                (r).min(total - 1),
                "({r}+0.5)/{total}"
            );
        }
        assert_eq!(target_rank(0.0, total), 0);
        assert_eq!(target_rank(1.0, total), total - 1);
    }
}

#[test]
fn phi_zero_and_one_hit_the_extremes_for_every_solver() {
    let instance = three_path(11);
    for ranking in rankings_under_test(&instance) {
        let min = exact_quantile(&instance, &ranking, 0.0).unwrap();
        let max = exact_quantile(&instance, &ranking, 1.0).unwrap();
        assert_eq!(min.target_index, 0, "ranking {ranking}");
        assert_eq!(max.target_index, max.total_answers - 1, "ranking {ranking}");
        assert!(min.weight <= max.weight, "ranking {ranking}");
        assert_valid(&instance, &ranking, &min, "phi=0");
        assert_valid(&instance, &ranking, &max, "phi=1");
    }
}

#[test]
fn fractions_within_one_over_n_of_a_boundary_are_exact() {
    let instance = three_path(23);
    for ranking in rankings_under_test(&instance) {
        let total = exact_quantile(&instance, &ranking, 0.0)
            .unwrap()
            .total_answers;
        assert!(total > 4, "workload too small to probe boundaries");
        // Probe the first, middle, and last boundary ranks, each from the boundary
        // itself and from half a rank on either side.
        for r in [1u128, total / 2, total - 1] {
            let at = r as f64 / total as f64;
            let below = (r as f64 - 0.5) / total as f64;
            let above = ((r as f64 + 0.5) / total as f64).min(1.0);
            let result_at = exact_quantile(&instance, &ranking, at).unwrap();
            assert_eq!(
                result_at.target_index, r,
                "ranking {ranking}: phi={r}/{total} must target rank {r}"
            );
            let result_below = exact_quantile(&instance, &ranking, below).unwrap();
            assert_eq!(result_below.target_index, r - 1, "ranking {ranking}");
            let result_above = exact_quantile(&instance, &ranking, above).unwrap();
            assert!(result_above.target_index >= r, "ranking {ranking}");
            assert!(result_below.weight <= result_at.weight, "ranking {ranking}");
            assert!(result_at.weight <= result_above.weight, "ranking {ranking}");
            for (label, result) in [
                ("at", &result_at),
                ("below", &result_below),
                ("above", &result_above),
            ] {
                assert_valid(&instance, &ranking, result, label);
            }
        }
    }
}

#[test]
fn baseline_agrees_with_exact_at_boundary_fractions() {
    // The "direct way" baseline and the pivoting solver must target the same rank for
    // the same φ, including fractions computed as r/N (where naive flooring drifts).
    let instance = three_path(17);
    let ranking = Ranking::sum(vars(&["x1", "x2", "x3"]));
    let total = exact_quantile(&instance, &ranking, 0.0)
        .unwrap()
        .total_answers;
    for r in [1u128, total / 3, total / 2, total - 1] {
        let phi = r as f64 / total as f64;
        let exact = exact_quantile(&instance, &ranking, phi).unwrap();
        let baseline =
            quantile_by_materialization(&instance, &ranking, phi, BaselineStrategy::Selection)
                .unwrap();
        assert_eq!(exact.target_index, baseline.target_index, "phi={r}/{total}");
        assert_eq!(exact.weight, baseline.weight, "phi={r}/{total}");
    }
}

#[test]
fn batched_boundaries_agree_with_single_solves() {
    let instance = three_path(5);
    for ranking in rankings_under_test(&instance) {
        let total = exact_quantile(&instance, &ranking, 0.0)
            .unwrap()
            .total_answers;
        let phis = [
            0.0,
            1.0 / total as f64,
            0.5 - 1.0 / total as f64,
            0.5,
            (total - 1) as f64 / total as f64,
            1.0,
        ];
        let batched = exact_quantile_batch(&instance, &ranking, &phis).unwrap();
        for (phi, b) in phis.iter().zip(&batched) {
            let single = exact_quantile(&instance, &ranking, *phi).unwrap();
            assert_eq!(b.target_index, single.target_index, "phi {phi}");
            assert_eq!(b.weight, single.weight, "phi {phi}");
            assert_eq!(b.answer, single.answer, "phi {phi}");
        }
    }
}
