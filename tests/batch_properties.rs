//! Property tests for the batched multi-φ solver: over random acyclic instances, a
//! batched solve must be (a) pointwise identical to independent `exact_quantile`
//! calls and (b) monotone non-decreasing in φ.

use proptest::prelude::*;
use quantile_joins::prelude::*;
use quantile_joins::workload::random_acyclic::RandomAcyclicConfig;

fn random_instance(seed: u64, atoms: usize) -> Instance {
    RandomAcyclicConfig {
        atoms,
        max_arity: 3,
        tuples_per_relation: 12,
        domain: 5,
        seed,
    }
    .generate()
}

/// A ranking that is exactly solvable on any acyclic query: MIN / MAX / LEX over all
/// variables, or SUM over the variables of a single atom (tractable by Theorem 5.6).
fn ranking_for(instance: &Instance, kind: usize) -> Ranking {
    let all = instance.query().variables();
    match kind {
        0 => Ranking::max(all),
        1 => Ranking::min(all),
        2 => Ranking::lex(all),
        _ => Ranking::sum(
            instance
                .query()
                .atom(0)
                .variable_set()
                .into_iter()
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched multi-φ output equals k independent single-φ solves, pointwise.
    #[test]
    fn batched_is_identical_to_independent_solves(
        seed in 0u64..5000,
        atoms in 1usize..4,
        kind in 0usize..4,
        phi_lo in 0.0f64..0.5,
        phi_hi in 0.5f64..1.0,
    ) {
        let instance = random_instance(seed, atoms);
        if count_answers(&instance).unwrap() == 0 {
            return Ok(());
        }
        let ranking = ranking_for(&instance, kind);
        let phis = [0.0, phi_lo, 0.5, phi_hi, 1.0];
        let batched = exact_quantile_batch(&instance, &ranking, &phis).unwrap();
        prop_assert_eq!(batched.len(), phis.len());
        for (phi, b) in phis.iter().zip(&batched) {
            let single = exact_quantile(&instance, &ranking, *phi).unwrap();
            prop_assert_eq!(&b.weight, &single.weight, "phi {}", phi);
            prop_assert_eq!(&b.answer, &single.answer, "phi {}", phi);
            prop_assert_eq!(b.target_index, single.target_index, "phi {}", phi);
            prop_assert_eq!(b.total_answers, single.total_answers, "phi {}", phi);
            prop_assert_eq!(b.iterations, single.iterations, "phi {}", phi);
        }
    }

    /// For sorted φ inputs the returned weights are monotone non-decreasing, and each
    /// result is a genuine φ-quantile of the answer multiset.
    #[test]
    fn batched_is_monotone_and_valid(
        seed in 0u64..5000,
        atoms in 1usize..4,
        kind in 0usize..4,
    ) {
        let instance = random_instance(seed, atoms);
        if count_answers(&instance).unwrap() == 0 {
            return Ok(());
        }
        let ranking = ranking_for(&instance, kind);
        let phis = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let batched = exact_quantile_batch(&instance, &ranking, &phis).unwrap();
        for (prev, next) in batched.iter().zip(batched.iter().skip(1)) {
            prop_assert!(prev.weight <= next.weight, "weights must be monotone in φ");
            prop_assert!(prev.target_index <= next.target_index);
        }
        for result in &batched {
            let (below, equal) = quantile_joins::core::quantile::rank_of_weight(
                &instance, &ranking, &result.weight,
            )
            .unwrap();
            prop_assert!(
                result.target_index >= below && result.target_index < below + equal,
                "target {} outside window [{}, {})",
                result.target_index,
                below,
                below + equal
            );
        }
    }
}
