//! Encoded-vs-row equivalence: the encoded execution layer (the default for exact
//! solves) must return **pointwise identical** answers to the row path — same
//! answer assignment, same weight (bit for bit), same target index, same iteration
//! count — across ranking families, random instances, and boundary φ values.

use proptest::prelude::*;
use quantile_joins::core::encoded::{exact_quantile_batch_encoded, exact_quantile_encoded};
use quantile_joins::core::quantile::rank_of_weight;
use quantile_joins::prelude::*;
use quantile_joins::workload::random_acyclic::RandomAcyclicConfig;

fn random_instance(seed: u64, atoms: usize) -> Instance {
    RandomAcyclicConfig {
        atoms,
        max_arity: 3,
        tuples_per_relation: 12,
        domain: 5,
        seed,
    }
    .generate()
}

/// A ranking of the requested family over the instance's variables, mirroring the
/// families the engine's dichotomy routes to the exact path.
fn ranking_for(instance: &Instance, kind: usize) -> Option<Ranking> {
    let variables = instance.query().variables();
    match kind {
        0 => Some(Ranking::min(variables)),
        1 => Some(Ranking::max(variables)),
        2 => Some(Ranking::lex(variables.into_iter().take(2).collect())),
        _ => {
            // Partial SUM over a prefix of the variables, only when tractable.
            let weighted: Vec<Variable> = variables.into_iter().take(2).collect();
            classify_partial_sum(instance.query(), &weighted)
                .is_tractable()
                .then(|| Ranking::sum(weighted))
        }
    }
}

fn assert_pointwise_equal(a: &QuantileResult, b: &QuantileResult, context: &str) {
    assert_eq!(a.answer, b.answer, "{context}: answers differ");
    assert_eq!(a.weight, b.weight, "{context}: weights differ");
    assert_eq!(a.total_answers, b.total_answers, "{context}: totals differ");
    assert_eq!(
        a.target_index, b.target_index,
        "{context}: target indices differ"
    );
    assert_eq!(
        a.iterations, b.iterations,
        "{context}: iteration counts differ"
    );
}

/// φ values that stress rank boundaries: the extremes, plus fractions that land
/// exactly on and just beside integer ranks.
fn boundary_phis(total: u128) -> Vec<f64> {
    let mut phis = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    if total > 1 {
        let t = total as f64;
        phis.push(1.0 / t);
        phis.push((total - 1) as f64 / t);
        phis.push(((total / 2) as f64) / t);
    }
    phis
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `exact_quantile` (encoded default) equals the row path pointwise across
    /// MIN/MAX/LEX/SUM rankings and boundary φ values on random acyclic instances.
    #[test]
    fn encoded_and_row_solves_are_pointwise_identical(
        seed in 0u64..3000,
        atoms in 1usize..4,
        kind in 0usize..4,
    ) {
        let instance = random_instance(seed, atoms);
        let Some(ranking) = ranking_for(&instance, kind) else { return Ok(()) };
        let total = count_answers(&instance).unwrap();
        if total == 0 {
            return Ok(());
        }
        for phi in boundary_phis(total) {
            let encoded = exact_quantile(&instance, &ranking, phi).unwrap();
            let row = exact_quantile_via_rows(&instance, &ranking, phi).unwrap();
            assert_pointwise_equal(&encoded, &row, &format!("{ranking} at φ={phi}"));
            // And the answer really is a φ-quantile.
            let (below, equal) = rank_of_weight(&instance, &ranking, &encoded.weight).unwrap();
            prop_assert!(
                encoded.target_index >= below && encoded.target_index < below + equal,
                "{ranking} at φ={phi}: target {} outside window [{below}, {})",
                encoded.target_index,
                below + equal
            );
        }
    }

    /// Batched multi-φ solving is pointwise identical across the two paths (and to
    /// the single-φ driver, transitively via the row path's own guarantee).
    #[test]
    fn encoded_and_row_batches_are_pointwise_identical(
        seed in 0u64..3000,
        atoms in 1usize..4,
        kind in 0usize..4,
    ) {
        let instance = random_instance(seed, atoms);
        let Some(ranking) = ranking_for(&instance, kind) else { return Ok(()) };
        let total = count_answers(&instance).unwrap();
        if total == 0 {
            return Ok(());
        }
        let phis = boundary_phis(total);
        let encoded = exact_quantile_batch(&instance, &ranking, &phis).unwrap();
        let row = exact_quantile_batch_via_rows(&instance, &ranking, &phis).unwrap();
        prop_assert_eq!(encoded.len(), row.len());
        for ((phi, e), r) in phis.iter().zip(&encoded).zip(&row) {
            assert_pointwise_equal(e, r, &format!("batch {ranking} at φ={phi}"));
        }
    }
}

/// The engine's acceptance workload: encoded and row paths agree on the paper's
/// social-network join at several φ, via both the pre-encoded entry point and the
/// encode-per-solve default.
#[test]
fn social_network_workload_is_pointwise_identical() {
    let config = SocialConfig {
        rows_per_relation: 120,
        seed: 2023,
        ..Default::default()
    };
    let instance = config.generate();
    let ranking = config.likes_ranking();
    let encoded_db = EncodedInstance::from_instance(&instance).unwrap();
    let options = PivotingOptions::default();
    for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
        let default_path = exact_quantile(&instance, &ranking, phi).unwrap();
        let row = exact_quantile_via_rows(&instance, &ranking, phi).unwrap();
        let pre_encoded = exact_quantile_encoded(&encoded_db, &ranking, phi, &options).unwrap();
        assert_pointwise_equal(&default_path, &row, &format!("social φ={phi}"));
        assert_pointwise_equal(&pre_encoded, &row, &format!("social pre-encoded φ={phi}"));
    }
    let phis = [0.05, 0.25, 0.5, 0.75, 0.95];
    let batch_enc = exact_quantile_batch_encoded(&encoded_db, &ranking, &phis, &options).unwrap();
    let batch_row = exact_quantile_batch_via_rows(&instance, &ranking, &phis).unwrap();
    for ((phi, e), r) in phis.iter().zip(&batch_enc).zip(&batch_row) {
        assert_pointwise_equal(e, r, &format!("social batch φ={phi}"));
    }
}

/// A database relation the query never references must still count towards the
/// materialization threshold on both paths (regression: the encoded path once
/// sized the database from query-referenced views only, diverging from the row
/// path's `Instance::database_size` and thus from its recursion).
#[test]
fn unreferenced_relations_keep_thresholds_identical() {
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    for i in 0..25i64 {
        r1.push(vec![Value::from(i % 5), Value::from(i % 3)])
            .unwrap();
        r2.push(vec![Value::from(i % 3), Value::from(i % 4)])
            .unwrap();
    }
    // A large relation no atom references: it inflates the database size (and so
    // the default materialization threshold) on the row path.
    let mut unused = Relation::new("Unused", 1);
    for i in 0..500i64 {
        unused.push(vec![Value::from(i)]).unwrap();
    }
    let instance = Instance::new(
        path_query(2),
        Database::from_relations([r1, r2, unused]).unwrap(),
    )
    .unwrap();
    let ranking = Ranking::sum(instance.query().variables());
    for phi in [0.0, 0.3, 0.5, 0.8, 1.0] {
        let encoded = exact_quantile(&instance, &ranking, phi).unwrap();
        let row = exact_quantile_via_rows(&instance, &ranking, phi).unwrap();
        assert_pointwise_equal(&encoded, &row, &format!("unreferenced relation φ={phi}"));
    }
}

/// String join keys exercise the non-integer dictionary space.
#[test]
fn string_keys_are_pointwise_identical() {
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    for i in 0..30i64 {
        r1.push(vec![
            Value::from(i),
            Value::from(format!("k{}", i % 5).as_str()),
        ])
        .unwrap();
        r2.push(vec![
            Value::from(format!("k{}", i % 5).as_str()),
            Value::from(1000 - 13 * i),
        ])
        .unwrap();
    }
    let instance =
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
    // Weight only the numeric endpoints (strings have no identity weight).
    let ranking = Ranking::sum(vars(&["x1", "x3"]));
    for phi in [0.0, 0.3, 0.5, 1.0] {
        let encoded = exact_quantile(&instance, &ranking, phi).unwrap();
        let row = exact_quantile_via_rows(&instance, &ranking, phi).unwrap();
        assert_pointwise_equal(&encoded, &row, &format!("string keys φ={phi}"));
    }
}

// ---------------------------------------------------------------------------
// Thread-sweep bit-identity: the chunk executor must not change any answer
// ---------------------------------------------------------------------------

/// The executor pools for the thread sweep, built once per test process. T=1 is
/// the guaranteed-sequential degree; the others exercise real chunk scheduling
/// (the parallel code paths run even on a 1-core host — determinism comes from
/// canonical chunk order, not from how chunks land on threads).
fn sweep_pools() -> &'static [(usize, quantile_joins::par::Pool)] {
    static POOLS: std::sync::OnceLock<Vec<(usize, quantile_joins::par::Pool)>> =
        std::sync::OnceLock::new();
    POOLS.get_or_init(|| {
        [1usize, 2, 4, 8]
            .into_iter()
            .map(|t| (t, quantile_joins::par::Pool::new(t)))
            .collect()
    })
}

/// Weights as raw bit patterns: "identical" for the sweep means bit-identical
/// `f64`s, not merely `==` (which would let `-0.0` and `0.0` slip past).
fn weight_bits(w: &Weight) -> Vec<u64> {
    match w {
        Weight::Num(x) => vec![x.to_bits()],
        Weight::Vec(v) => v.iter().map(|x| x.to_bits()).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every answer of the encoded batch solve is bit-identical at executor
    /// degrees 1, 2, 4, and 8 — across MIN/MAX/LEX/SUM rankings and boundary φ.
    #[test]
    fn parallel_solves_are_bit_identical_across_thread_counts(
        seed in 0u64..3000,
        atoms in 1usize..4,
        kind in 0usize..4,
    ) {
        let instance = random_instance(seed, atoms);
        let Some(ranking) = ranking_for(&instance, kind) else { return Ok(()) };
        let total = count_answers(&instance).unwrap();
        if total == 0 {
            return Ok(());
        }
        let phis = boundary_phis(total);
        let mut baseline: Option<Vec<QuantileResult>> = None;
        for (threads, pool) in sweep_pools() {
            let results = quantile_joins::par::with_pool(pool, || {
                exact_quantile_batch(&instance, &ranking, &phis)
            })
            .unwrap();
            match &baseline {
                None => baseline = Some(results),
                Some(sequential) => {
                    prop_assert_eq!(results.len(), sequential.len());
                    for ((phi, seq), par) in phis.iter().zip(sequential).zip(&results) {
                        let context = format!("{ranking} at φ={phi}, {threads} threads");
                        assert_pointwise_equal(par, seq, &context);
                        prop_assert_eq!(
                            weight_bits(&par.weight),
                            weight_bits(&seq.weight),
                            "{}: weight bits differ",
                            context
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Approximate path: deterministic lossy trims and the randomized sampler
// ---------------------------------------------------------------------------

/// A full SUM ranking over every variable — intractable exactly on most shapes,
/// which is precisely the regime the lossy path exists for (Theorem 6.2 applies
/// to every acyclic query).
fn full_sum_ranking(instance: &Instance) -> Ranking {
    Ranking::sum(instance.query().variables())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The encoded lossy solve (`approximate_sum_quantile`, ε-sketches over
    /// per-code weight tables, selection-vector trim views) is pointwise
    /// identical to the row `LossySumTrimmer` solve — same answer, same weight,
    /// same iteration count — across ε values, boundary φ, and executor degrees
    /// 1 and 4. The trims are deterministic, so this is exact equality, not an
    /// error-bound check.
    #[test]
    fn lossy_encoded_and_row_solves_are_pointwise_identical(
        seed in 0u64..3000,
        atoms in 1usize..4,
        eps_idx in 0usize..3,
    ) {
        let instance = random_instance(seed, atoms);
        let ranking = full_sum_ranking(&instance);
        let total = count_answers(&instance).unwrap();
        if total == 0 {
            return Ok(());
        }
        let epsilon = [0.25, 0.1, 0.05][eps_idx];
        for phi in boundary_phis(total) {
            let mut baseline: Option<(QuantileResult, QuantileResult)> = None;
            for (threads, pool) in sweep_pools().iter().filter(|(t, _)| *t == 1 || *t == 4) {
                let (encoded, row) = quantile_joins::par::with_pool(pool, || {
                    let encoded = approximate_sum_quantile(
                        &instance, &ranking, phi, epsilon, ErrorBudget::Direct,
                    )?;
                    let row = approximate_sum_quantile_via_rows(
                        &instance, &ranking, phi, epsilon, ErrorBudget::Direct,
                    )?;
                    Ok::<_, quantile_joins::CoreError>((encoded, row))
                })
                .unwrap();
                let context = format!("lossy ε={epsilon} φ={phi} T={threads}");
                assert_pointwise_equal(&encoded, &row, &context);
                prop_assert_eq!(
                    weight_bits(&encoded.weight),
                    weight_bits(&row.weight),
                    "{}: weight bits differ",
                    context
                );
                match &baseline {
                    None => baseline = Some((encoded, row)),
                    Some((seq_enc, _)) => {
                        assert_pointwise_equal(&encoded, seq_enc, &format!("{context} vs T=1"));
                    }
                }
            }
        }
    }

    /// The randomized sampler is seed-identical across the encoded and row
    /// paths: the same `SamplingOptions { seed }` draws the same Hoeffding
    /// sample on both, so every returned quantile matches exactly. When the
    /// sample budget reaches the answer count, both paths refuse identically
    /// with [`CoreError::ApproxRefused`] and a witness naming the regime.
    #[test]
    fn sampler_is_seed_identical_across_paths(
        seed in 0u64..3000,
        atoms in 1usize..4,
        sample_seed in 0u64..1000,
    ) {
        let instance = random_instance(seed, atoms);
        let ranking = full_sum_ranking(&instance);
        let total = count_answers(&instance).unwrap();
        if total == 0 {
            return Ok(());
        }
        let phis = boundary_phis(total);
        // Small instances sit under the Hoeffding budget for tight ε; pick a
        // loose ε that samples when possible, and assert the refusal contract
        // when even that budget reaches |Q(D)|.
        let options = SamplingOptions { epsilon: 0.2, delta: 0.1, seed: sample_seed };
        for (threads, pool) in sweep_pools().iter().filter(|(t, _)| *t == 1 || *t == 4) {
            let (encoded, row) = quantile_joins::par::with_pool(pool, || {
                let encoded = quantile_by_sampling_batch(&instance, &ranking, &phis, &options);
                let row = quantile_by_sampling_batch_via_rows(&instance, &ranking, &phis, &options);
                (encoded, row)
            });
            if (options.sample_count() as u128) >= total {
                for (label, result) in [("encoded", &encoded), ("row", &row)] {
                    match result {
                        Err(quantile_joins::CoreError::ApproxRefused(witness)) => {
                            prop_assert!(
                                witness.contains("Hoeffding"),
                                "{label} T={threads}: witness lacks regime: {witness}"
                            );
                        }
                        other => prop_assert!(
                            false,
                            "{label} T={threads}: expected ApproxRefused, got {other:?}"
                        ),
                    }
                }
                continue;
            }
            let encoded = encoded.unwrap();
            let row = row.unwrap();
            prop_assert_eq!(encoded.len(), row.len());
            for ((phi, e), r) in phis.iter().zip(&encoded).zip(&row) {
                let context = format!("sampler seed={sample_seed} φ={phi} T={threads}");
                assert_pointwise_equal(e, r, &context);
                prop_assert_eq!(
                    weight_bits(&e.weight),
                    weight_bits(&r.weight),
                    "{}: weight bits differ",
                    context
                );
            }
        }
    }
}

/// The engine end to end at explicit thread counts: `EngineConfig { threads }`
/// must not change any served answer, and T=1 must not spawn executor workers.
#[test]
fn engine_answers_are_bit_identical_across_thread_configs() {
    let config = SocialConfig {
        rows_per_relation: 150,
        seed: 77,
        ..Default::default()
    };
    let phis = [0.0, 0.1, 0.5, 0.9, 1.0];
    let mut baseline: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::with_config(quantile_joins::engine::EngineConfig {
            threads: Some(threads),
            ..Default::default()
        });
        let (_, database) = config.generate().into_parts();
        engine.create_database("social", database).unwrap();
        engine
            .register(
                "likes",
                "social",
                social_network_query(),
                config.likes_ranking(),
            )
            .unwrap();
        let answers = engine.quantile_batch("likes", &phis).unwrap();
        let bits: Vec<Vec<u64>> = answers
            .iter()
            .map(|a| weight_bits(&a.result.weight))
            .collect();
        match &baseline {
            None => baseline = Some(bits),
            Some(sequential) => {
                assert_eq!(&bits, sequential, "threads={threads} changed an answer")
            }
        }
    }
}
