//! Cross-crate integration tests: the full quantile pipeline against the brute-force
//! baseline on generated workloads, for every ranking function family.

use quantile_joins::core::quantile::rank_of_weight;
use quantile_joins::core::sampling::{quantile_by_sampling, SamplingOptions};
use quantile_joins::prelude::*;
use quantile_joins::CoreError;

/// Asserts that `result` is a valid φ-quantile of the instance under the ranking: the
/// targeted index falls inside the returned weight's rank window.
fn assert_valid_quantile(instance: &Instance, ranking: &Ranking, result: &QuantileResult) {
    let (below, equal) = rank_of_weight(instance, ranking, &result.weight).unwrap();
    assert!(equal >= 1, "returned weight belongs to no answer");
    assert!(
        result.target_index >= below && result.target_index < below + equal,
        "target {} outside [{}, {})",
        result.target_index,
        below,
        below + equal
    );
}

#[test]
fn social_network_partial_sum_quantiles_match_baseline() {
    let config = SocialConfig {
        rows_per_relation: 400,
        users: 300,
        events: 40,
        max_likes: 500,
        event_skew: 0.7,
        seed: 11,
    };
    let instance = config.generate();
    let ranking = config.likes_ranking();
    for phi in [0.1, 0.5, 0.9] {
        let fast = exact_quantile(&instance, &ranking, phi).unwrap();
        let slow =
            quantile_by_materialization(&instance, &ranking, phi, BaselineStrategy::Selection)
                .unwrap();
        assert_eq!(fast.weight, slow.weight, "phi {phi}");
        assert_valid_quantile(&instance, &ranking, &fast);
    }
}

#[test]
fn min_max_quantiles_on_generated_paths() {
    let instance = PathConfig {
        atoms: 3,
        tuples_per_relation: 250,
        join_domain: 12,
        weight_range: 500,
        skew: 0.4,
        seed: 3,
    }
    .generate();
    for ranking in [
        Ranking::min(instance.query().variables()),
        Ranking::max(instance.query().variables()),
        Ranking::min(vars(&["x1", "x4"])),
        Ranking::max(vars(&["x2", "x3"])),
    ] {
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let fast = exact_quantile(&instance, &ranking, phi).unwrap();
            assert_valid_quantile(&instance, &ranking, &fast);
        }
    }
}

#[test]
fn lex_quantiles_on_generated_paths() {
    let instance = PathConfig {
        atoms: 2,
        tuples_per_relation: 300,
        join_domain: 15,
        weight_range: 50,
        skew: 0.0,
        seed: 9,
    }
    .generate();
    for ranking in [
        Ranking::lex(vars(&["x1", "x3"])),
        Ranking::lex(vars(&["x3", "x2", "x1"])),
    ] {
        for phi in [0.2, 0.5, 0.8] {
            let fast = exact_quantile(&instance, &ranking, phi).unwrap();
            assert_valid_quantile(&instance, &ranking, &fast);
        }
    }
}

#[test]
fn full_sum_on_binary_join_matches_baseline() {
    let instance = PathConfig {
        atoms: 2,
        tuples_per_relation: 400,
        join_domain: 20,
        weight_range: 1_000,
        skew: 0.5,
        seed: 17,
    }
    .generate();
    let ranking = Ranking::sum(instance.query().variables());
    for phi in [0.05, 0.5, 0.95] {
        let fast = exact_quantile(&instance, &ranking, phi).unwrap();
        assert_valid_quantile(&instance, &ranking, &fast);
    }
}

#[test]
fn intractable_full_sum_is_refused_and_approximated() {
    let instance = PathConfig {
        atoms: 3,
        tuples_per_relation: 150,
        join_domain: 10,
        weight_range: 300,
        skew: 0.0,
        seed: 23,
    }
    .generate();
    let ranking = Ranking::sum(instance.query().variables());
    assert!(matches!(
        exact_quantile(&instance, &ranking, 0.5).unwrap_err(),
        CoreError::IntractableSum(_)
    ));

    let total = count_answers(&instance).unwrap();
    let epsilon = 0.1;
    let approx =
        approximate_sum_quantile(&instance, &ranking, 0.5, epsilon, ErrorBudget::Direct).unwrap();
    let (below, equal) = rank_of_weight(&instance, &ranking, &approx.weight).unwrap();
    // Allow the accumulated error of the iterated lossy trimmings.
    let slack = (2.0 * epsilon * approx.iterations.max(1) as f64 * total as f64).max(1.0);
    let target = approx.target_index as f64;
    assert!(
        (below as f64) <= target + slack && (below + equal) as f64 >= target - slack,
        "approximate answer too far from the target: window [{below}, {}) target {target} slack {slack}",
        below + equal
    );
}

#[test]
fn sampling_approximation_tracks_the_target() {
    let instance = PathConfig {
        atoms: 3,
        tuples_per_relation: 200,
        join_domain: 8,
        weight_range: 100,
        skew: 0.0,
        seed: 31,
    }
    .generate();
    let ranking = Ranking::sum(instance.query().variables());
    let options = SamplingOptions {
        epsilon: 0.05,
        delta: 0.01,
        seed: 5,
    };
    let result = quantile_by_sampling(&instance, &ranking, 0.5, &options).unwrap();
    let (below, equal) = rank_of_weight(&instance, &ranking, &result.weight).unwrap();
    let total = result.total_answers as f64;
    assert!(
        (below as f64) <= 0.65 * total && (below + equal) as f64 >= 0.35 * total,
        "sampled median too far from the middle: [{below}, {})",
        below + equal
    );
}

#[test]
fn dichotomy_classifier_matches_solver_behaviour() {
    let social = SocialConfig::default();
    assert!(classify_partial_sum(
        social.generate().query(),
        social.likes_ranking().weighted_vars()
    )
    .is_tractable());

    let three_path = path_query(3);
    assert!(!classify_partial_sum(&three_path, &three_path.variables()).is_tractable());

    let star = star_query(3);
    assert!(!classify_partial_sum(&star, &vars(&["x1", "x2", "x3"])).is_tractable());
    assert!(classify_partial_sum(&star, &vars(&["x0", "x2"])).is_tractable());
}

#[test]
fn quantiles_are_monotone_in_phi() {
    let instance = PathConfig {
        atoms: 2,
        tuples_per_relation: 350,
        join_domain: 25,
        weight_range: 700,
        skew: 0.2,
        seed: 41,
    }
    .generate();
    let ranking = Ranking::sum(instance.query().variables());
    let mut previous: Option<Weight> = None;
    for phi in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let result = exact_quantile(&instance, &ranking, phi).unwrap();
        if let Some(prev) = &previous {
            assert!(
                prev <= &result.weight,
                "quantile weights must be monotone in φ"
            );
        }
        previous = Some(result.weight);
    }
}
