//! Example 3.4 of the paper, end to end: the median by full SUM of a binary join with
//! 1001 answers, computed by pivoting and partitioning.

use quantile_joins::core::quantile::{quantile_by_pivoting, rank_of_weight, PivotingOptions};
use quantile_joins::core::trim::{AdjacentSumTrimmer, Trimmer};
use quantile_joins::prelude::*;
use quantile_joins::ranking::RankPredicate;
use quantile_joins::workload::figures::example_3_4_instance;

#[test]
fn the_instance_has_1001_answers_and_the_median_index_is_500() {
    let instance = example_3_4_instance();
    assert_eq!(count_answers(&instance).unwrap(), 1001);
    let ranking = Ranking::sum(instance.query().variables());
    let result = exact_quantile(&instance, &ranking, 0.5).unwrap();
    assert_eq!(result.target_index, 500);
    let (below, equal) = rank_of_weight(&instance, &ranking, &result.weight).unwrap();
    assert!(result.target_index >= below && result.target_index < below + equal);
}

#[test]
fn partitions_around_a_pivot_weight_cover_all_answers() {
    // The example partitions the 1001 answers around a pivot weight into less-than,
    // equal-to, and greater-than; the counts must add up exactly, whatever the pivot.
    let instance = example_3_4_instance();
    let ranking = Ranking::sum(instance.query().variables());
    let pivot = quantile_joins::core::pivot::select_pivot(&instance, &ranking).unwrap();

    let lt = AdjacentSumTrimmer
        .trim(
            &instance,
            &ranking,
            &RankPredicate::less_than(pivot.weight.clone()),
        )
        .unwrap();
    let gt = AdjacentSumTrimmer
        .trim(
            &instance,
            &ranking,
            &RankPredicate::greater_than(pivot.weight.clone()),
        )
        .unwrap();
    let n_lt = count_answers(&lt).unwrap();
    let n_gt = count_answers(&gt).unwrap();
    assert!(
        n_lt + n_gt < 1001,
        "the pivot's own weight class is non-empty"
    );
    let (below, equal) = rank_of_weight(&instance, &ranking, &pivot.weight).unwrap();
    assert_eq!(n_lt, below);
    assert_eq!(n_gt, 1001 - below - equal);
    // The pivot guarantee: both sides hold at least c · |Q(D)| answers.
    let c_bound = (pivot.c * 1001.0).floor() as u128;
    assert!(n_lt + equal >= c_bound);
    assert!(n_gt + equal >= c_bound);
}

#[test]
fn forcing_iteration_reproduces_the_example_walkthrough() {
    // Run the driver with a tiny materialization threshold so it must iterate, as in
    // the example's narrative, and check it still lands on a true median.
    let instance = example_3_4_instance();
    let ranking = Ranking::sum(instance.query().variables());
    let options = PivotingOptions {
        materialize_threshold: Some(8),
        max_iterations: 128,
    };
    let result =
        quantile_by_pivoting(&instance, &ranking, 0.5, &AdjacentSumTrimmer, &options).unwrap();
    assert!(result.iterations >= 1);
    let (below, equal) = rank_of_weight(&instance, &ranking, &result.weight).unwrap();
    assert!(result.target_index >= below && result.target_index < below + equal);
}
