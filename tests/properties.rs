//! Property-based tests: the algorithms against brute force on random acyclic
//! instances, and structural invariants of the core data structures.

use proptest::prelude::*;
use quantile_joins::core::pivot::{select_pivot, verify_pivot};
use quantile_joins::core::quantile::rank_of_weight;
use quantile_joins::core::trim::{AdjacentSumTrimmer, LexTrimmer, MinMaxTrimmer, Trimmer};
use quantile_joins::exec::yannakakis::materialize;
use quantile_joins::exec::DirectAccess;
use quantile_joins::prelude::*;
use quantile_joins::ranking::RankPredicate;
use quantile_joins::workload::random_acyclic::RandomAcyclicConfig;

fn random_instance(seed: u64, atoms: usize) -> Instance {
    RandomAcyclicConfig {
        atoms,
        max_arity: 3,
        tuples_per_relation: 12,
        domain: 5,
        seed,
    }
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counting by message passing agrees with materialization on random instances.
    #[test]
    fn counting_matches_materialization(seed in 0u64..5000, atoms in 1usize..5) {
        let instance = random_instance(seed, atoms);
        let counted = count_answers(&instance).unwrap();
        let materialized = materialize(&instance).unwrap().len() as u128;
        prop_assert_eq!(counted, materialized);
    }

    /// Direct access enumerates exactly the materialized answers, each exactly once.
    #[test]
    fn direct_access_is_a_bijection(seed in 0u64..5000, atoms in 1usize..4) {
        let instance = random_instance(seed, atoms);
        let access = DirectAccess::new(&instance).unwrap();
        let materialized = materialize(&instance).unwrap();
        prop_assert_eq!(access.total(), materialized.len() as u128);
        if access.total() > 0 && access.total() < 3000 {
            let mut seen = std::collections::HashSet::new();
            for i in 0..access.total() {
                let answer = access.answer_at(i).unwrap();
                let key = format!("{answer:?}");
                prop_assert!(seen.insert(key));
            }
        }
    }

    /// The pivot returned by Algorithm 2 really is a c-pivot, for several rankings.
    #[test]
    fn pivots_respect_their_guarantee(seed in 0u64..5000, atoms in 1usize..4, kind in 0usize..4) {
        let instance = random_instance(seed, atoms);
        if count_answers(&instance).unwrap() == 0 {
            return Ok(());
        }
        let all_vars = instance.query().variables();
        let ranking = match kind {
            0 => Ranking::sum(all_vars),
            1 => Ranking::min(all_vars),
            2 => Ranking::max(all_vars),
            _ => Ranking::lex(all_vars),
        };
        let pivot = select_pivot(&instance, &ranking).unwrap();
        let (le, ge) = verify_pivot(&instance, &ranking, &pivot).unwrap();
        prop_assert!(le >= pivot.c - 1e-12, "{le} < {}", pivot.c);
        prop_assert!(ge >= pivot.c - 1e-12, "{ge} < {}", pivot.c);
    }

    /// MIN/MAX trimming partitions the answers exactly around any bound.
    #[test]
    fn minmax_trimming_partitions_exactly(seed in 0u64..5000, atoms in 1usize..4, bound in -1.0f64..10.0, use_max in any::<bool>()) {
        let instance = random_instance(seed, atoms);
        let total = count_answers(&instance).unwrap();
        let vars = instance.query().variables();
        let ranking = if use_max { Ranking::max(vars) } else { Ranking::min(vars) };
        let lt = MinMaxTrimmer.trim(&instance, &ranking, &RankPredicate::less_than(Weight::num(bound))).unwrap();
        let gt = MinMaxTrimmer.trim(&instance, &ranking, &RankPredicate::greater_than(Weight::num(bound))).unwrap();
        let n_lt = count_answers(&lt).unwrap();
        let n_gt = count_answers(&gt).unwrap();
        let (below, equal) = rank_of_weight(&instance, &ranking, &Weight::num(bound)).unwrap();
        prop_assert_eq!(n_lt, below);
        prop_assert_eq!(n_gt, total - below - equal);
    }

    /// Exact quantiles agree with the brute-force baseline whenever the ranking is on
    /// the tractable side of the dichotomy.
    #[test]
    fn exact_quantiles_match_brute_force(seed in 0u64..5000, atoms in 1usize..4, phi in 0.0f64..1.0, kind in 0usize..4) {
        let instance = random_instance(seed, atoms);
        if count_answers(&instance).unwrap() == 0 {
            return Ok(());
        }
        let all_vars = instance.query().variables();
        let ranking = match kind {
            0 => Ranking::max(all_vars),
            1 => Ranking::min(all_vars),
            2 => Ranking::lex(all_vars),
            _ => {
                let sum = Ranking::sum(all_vars);
                if !classify_partial_sum(instance.query(), sum.weighted_vars()).is_tractable() {
                    return Ok(());
                }
                sum
            }
        };
        let result = exact_quantile(&instance, &ranking, phi).unwrap();
        let (below, equal) = rank_of_weight(&instance, &ranking, &result.weight).unwrap();
        prop_assert!(equal >= 1);
        prop_assert!(result.target_index >= below && result.target_index < below + equal);
    }

    /// LEX trimming is exact on random instances and random bounds.
    #[test]
    fn lex_trimming_partitions_exactly(seed in 0u64..5000, b1 in 0.0f64..5.0, b2 in 0.0f64..5.0) {
        let instance = random_instance(seed, 3);
        let total = count_answers(&instance).unwrap();
        let all_vars = instance.query().variables();
        let lex_vars: Vec<Variable> = all_vars.into_iter().take(2).collect();
        if lex_vars.len() < 2 {
            return Ok(());
        }
        let ranking = Ranking::lex(lex_vars);
        let bound = Weight::Vec(vec![b1.floor(), b2.floor()]);
        let lt = LexTrimmer.trim(&instance, &ranking, &RankPredicate::less_than(bound.clone())).unwrap();
        let gt = LexTrimmer.trim(&instance, &ranking, &RankPredicate::greater_than(bound.clone())).unwrap();
        let n_lt = count_answers(&lt).unwrap();
        let n_gt = count_answers(&gt).unwrap();
        let (below, equal) = rank_of_weight(&instance, &ranking, &bound).unwrap();
        prop_assert_eq!(n_lt, below);
        prop_assert_eq!(n_gt, total - below - equal);
    }

    /// The adjacent-pair SUM trimming is exact whenever the dichotomy admits a cover.
    #[test]
    fn adjacent_sum_trimming_is_exact_when_applicable(seed in 0u64..5000, bound in 0.0f64..15.0) {
        let instance = random_instance(seed, 3);
        let total = count_answers(&instance).unwrap();
        let all_vars = instance.query().variables();
        let candidate: Vec<Variable> = all_vars.into_iter().take(3).collect();
        let ranking = Ranking::sum(candidate);
        if !classify_partial_sum(instance.query(), ranking.weighted_vars()).is_tractable() {
            return Ok(());
        }
        let lt = AdjacentSumTrimmer.trim(&instance, &ranking, &RankPredicate::less_than(Weight::num(bound))).unwrap();
        let gt = AdjacentSumTrimmer.trim(&instance, &ranking, &RankPredicate::greater_than(Weight::num(bound))).unwrap();
        let n_lt = count_answers(&lt).unwrap();
        let n_gt = count_answers(&gt).unwrap();
        let (below, equal) = rank_of_weight(&instance, &ranking, &Weight::num(bound)).unwrap();
        prop_assert_eq!(n_lt, below);
        prop_assert_eq!(n_gt, total - below - equal);
    }
}
