//! Sharing invariants of the copy-on-write data layer.
//!
//! The trim layer, the self-join/binarization rewrites, and the engine's prepared
//! plans are all required to *share* relation storage they do not modify — observable
//! as pointer equality on the underlying `Arc`s — and the sharing must never change
//! what the solver computes. These tests pin both halves: pointer identity for
//! untouched relations, and solver results identical to the materialization baseline
//! across every ranking kind.

use proptest::prelude::*;
use quantile_joins::core::trim::{MinMaxTrimmer, SingleAtomSumTrimmer, Trimmer};
use quantile_joins::prelude::*;
use quantile_joins::query::self_join::eliminate_self_joins;
use quantile_joins::ranking::RankPredicate;
use quantile_joins::workload::figures::figure1_instance;
use quantile_joins::workload::random_acyclic::RandomAcyclicConfig;
use quantile_joins::workload::social::SocialConfig;
use std::sync::Arc;

fn random_instance(seed: u64, atoms: usize) -> Instance {
    RandomAcyclicConfig {
        atoms,
        max_arity: 3,
        tuples_per_relation: 12,
        domain: 5,
        seed,
    }
    .generate()
}

fn social_instance(rows: usize, seed: u64) -> Instance {
    SocialConfig {
        rows_per_relation: rows,
        seed,
        ..Default::default()
    }
    .generate()
}

/// Trimming a predicate that touches only one relation must share — not copy —
/// every other relation of the database.
#[test]
fn trim_shares_relations_the_predicate_never_touches() {
    let instance = social_instance(120, 11);
    // `l2` occurs only in Share; Admin and Attend are untouched by the predicate.
    let ranking = Ranking::max(vars(&["l2"]));
    let trimmed = MinMaxTrimmer
        .trim(
            &instance,
            &ranking,
            &RankPredicate::less_than(Weight::num(400.0)),
        )
        .unwrap();
    for name in ["Admin", "Attend"] {
        assert!(
            trimmed
                .database()
                .relation(name)
                .unwrap()
                .shares_tuples_with(instance.database().relation(name).unwrap()),
            "{name} must be shared by pointer, not copied"
        );
    }
    // Share really was filtered (so the trim did real work).
    assert!(
        trimmed.database().relation("Share").unwrap().len()
            < instance.database().relation("Share").unwrap().len()
    );
}

/// The single-atom SUM trimmer shares everything except the covering atom's relation.
#[test]
fn sum_single_atom_trim_shares_the_other_relations() {
    let instance = social_instance(120, 13);
    let ranking = Ranking::sum(vars(&["l2"]));
    let trimmed = SingleAtomSumTrimmer
        .trim(
            &instance,
            &ranking,
            &RankPredicate::less_than(Weight::num(400.0)),
        )
        .unwrap();
    for name in ["Admin", "Attend"] {
        assert!(trimmed
            .database()
            .relation(name)
            .unwrap()
            .shares_tuples_with(instance.database().relation(name).unwrap()));
    }
    assert!(
        trimmed.database().relation("Share").unwrap().len()
            < instance.database().relation("Share").unwrap().len()
    );
}

/// Self-join elimination materializes fresh relation *names*, never fresh tuples:
/// every introduced relation is a storage-sharing view of the original.
#[test]
fn self_join_elimination_shares_all_storage() {
    let r = Relation::from_rows("R", &[&[1, 2], &[2, 3], &[3, 4]]).unwrap();
    let q = JoinQuery::new(vec![
        quantile_joins::query::Atom::from_names("R", &["a", "b"]),
        quantile_joins::query::Atom::from_names("R", &["b", "c"]),
        quantile_joins::query::Atom::from_names("R", &["c", "d"]),
    ]);
    let original = r.clone();
    let instance = Instance::new(q, Database::from_relations([r]).unwrap()).unwrap();
    let rewritten = eliminate_self_joins(&instance).unwrap();
    assert_eq!(rewritten.database().num_relations(), 3);
    for rel in rewritten.database().relations() {
        assert!(
            rel.shares_tuples_with(&original),
            "{} must share the original R's storage",
            rel.name()
        );
    }
}

/// Registering N plans against one catalog database must allocate the tuple storage
/// exactly once: every plan's instance holds the catalog's own `Arc<Database>`, and
/// every relation inside is pointer-identical across plans.
#[test]
fn n_plans_share_one_database_allocation() {
    let (_, database) = social_instance(100, 17).into_parts();
    let engine = Engine::new();
    engine.create_database("social", database).unwrap();
    let rankings = [
        Ranking::sum(vars(&["l2", "l3"])),
        Ranking::max(social_network_query().variables()),
        Ranking::min(vars(&["l3"])),
        Ranking::lex(vars(&["l2", "l3"])),
    ];
    for (i, ranking) in rankings.iter().enumerate() {
        engine
            .register(
                &format!("p{i}"),
                "social",
                social_network_query(),
                ranking.clone(),
            )
            .unwrap();
    }
    let catalog_db = Arc::clone(&engine.catalog().get("social").unwrap().database);
    for plan in engine.plans() {
        assert!(
            Arc::ptr_eq(plan.instance.shared_database(), &catalog_db),
            "plan {} holds a copy instead of the shared catalog database",
            plan.name
        );
        for rel in plan.instance.database().relations() {
            assert!(rel.shares_tuples_with(catalog_db.relation(rel.name()).unwrap()));
        }
    }
    for stats in engine.plan_storage_stats() {
        assert_eq!(
            (
                stats.shared_relations,
                stats.owned_relations,
                stats.owned_bytes
            ),
            (3, 0, 0),
            "plan {} owns storage it should share",
            stats.plan
        );
    }
}

/// The figure-1 walkthrough instance: solver results agree with the materialization
/// baseline for every ranking kind (a fixed-point guard for the refactor).
#[test]
fn figure1_results_match_baseline_for_every_ranking() {
    let instance = figure1_instance();
    let all = instance.query().variables();
    let rankings = [
        Ranking::sum(vars(&["x2", "x4"])),
        Ranking::min(all.clone()),
        Ranking::max(all.clone()),
        Ranking::lex(vars(&["x2", "x1"])),
    ];
    for ranking in &rankings {
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let pivoted = exact_quantile(&instance, ranking, phi).unwrap();
            let baseline =
                quantile_by_materialization(&instance, ranking, phi, BaselineStrategy::FullSort)
                    .unwrap();
            assert_eq!(pivoted.weight, baseline.weight, "{ranking} at φ={phi}");
            assert_eq!(pivoted.target_index, baseline.target_index);
            assert_eq!(pivoted.total_answers, baseline.total_answers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MIN/MAX trimming on a single-variable ranking shares, by pointer, the relation
    /// of every atom that does not contain the ranked variable.
    #[test]
    fn trims_share_every_unconstrained_relation(seed in 0u64..5000, atoms in 2usize..5) {
        let instance = random_instance(seed, atoms);
        let var = instance.query().variables()[0].clone();
        let ranking = Ranking::max(vec![var.clone()]);
        let trimmed = MinMaxTrimmer
            .trim(&instance, &ranking, &RankPredicate::less_than(Weight::num(2.5)))
            .unwrap();
        for atom in instance.query().atoms() {
            if !atom.contains(&var) {
                let before = instance.database().relation(atom.relation()).unwrap();
                let after = trimmed.database().relation(atom.relation()).unwrap();
                prop_assert!(
                    after.shares_tuples_with(before),
                    "{} does not mention {:?} but was copied",
                    atom.relation(),
                    var
                );
            }
        }
    }

    /// Solver results stay identical to the materialization baseline across ranking
    /// kinds on random workload instances (SUM over a single atom's variables keeps
    /// the instance on the tractable side of the dichotomy).
    #[test]
    fn solver_matches_baseline_across_rankings(
        seed in 0u64..5000,
        atoms in 1usize..4,
        kind in 0usize..4,
        phi_idx in 0usize..5,
    ) {
        let phi = [0.0, 0.25, 0.5, 0.75, 1.0][phi_idx];
        let instance = random_instance(seed, atoms);
        if count_answers(&instance).unwrap() == 0 {
            return Ok(());
        }
        let all = instance.query().variables();
        let ranking = match kind {
            0 => Ranking::sum(instance.query().atom(0).variables().to_vec()),
            1 => Ranking::min(all.clone()),
            2 => Ranking::max(all.clone()),
            _ => Ranking::lex(all.clone()),
        };
        let pivoted = exact_quantile(&instance, &ranking, phi).unwrap();
        let baseline =
            quantile_by_materialization(&instance, &ranking, phi, BaselineStrategy::FullSort)
                .unwrap();
        prop_assert_eq!(&pivoted.weight, &baseline.weight);
        prop_assert_eq!(pivoted.target_index, baseline.target_index);
        prop_assert_eq!(pivoted.total_answers, baseline.total_answers);
    }
}
