//! # quantile-joins
//!
//! A faithful, from-scratch Rust implementation of *"Efficient Computation of
//! Quantiles over Joins"* (Tziavelis, Carmeli, Gatterbauer, Kimelfeld, Riedewald —
//! PODS 2023): compute the answer at relative position φ of a join query's ordered
//! answer list **without materializing the join**, in time quasilinear in the database.
//!
//! This facade crate re-exports the workspace's layers:
//!
//! * [`data`] — values, tuples, relations, databases;
//! * [`query`] — join queries, hypergraphs, acyclicity, join trees;
//! * [`exec`] — Yannakakis evaluation, message passing, counting, direct access;
//! * [`ranking`] — SUM / MIN / MAX / LEX ranking functions and predicates;
//! * [`core`] — the pivoting framework, exact and lossy trimmings, the partial-SUM
//!   dichotomy, deterministic and randomized approximations, batched multi-φ solving,
//!   and baselines;
//! * [`engine`] — the persistent, thread-safe quantile-query engine: a catalog of
//!   named databases, compile-once prepared plans, a sharded LRU result cache, and
//!   the CLI command language;
//! * [`server`] — the concurrent TCP serving layer: line protocol, bounded worker
//!   pool, blocking client, and the `qjoin` binary's `serve`/`client` subcommands;
//! * [`telemetry`] — the observability substrate: lock-free log-bucketed latency
//!   histograms, a named-metric registry, and Prometheus/JSON exposition;
//! * [`workload`] — synthetic instance generators used by the examples, tests, and
//!   benchmarks.
//!
//! The most convenient entry points are re-exported at the top level and in
//! [`prelude`]:
//!
//! ```
//! use quantile_joins::prelude::*;
//!
//! // Median of l2 + l3 over the paper's social-network join.
//! let config = SocialConfig { rows_per_relation: 300, ..Default::default() };
//! let instance = config.generate();
//! let ranking = config.likes_ranking();
//! let median = exact_quantile(&instance, &ranking, 0.5).unwrap();
//! assert!(median.total_answers > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qjoin_core as core;
pub use qjoin_data as data;
pub use qjoin_engine as engine;
pub use qjoin_exec as exec;
pub use qjoin_par as par;
pub use qjoin_query as query;
pub use qjoin_ranking as ranking;
pub use qjoin_server as server;
pub use qjoin_telemetry as telemetry;
pub use qjoin_workload as workload;

pub use qjoin_core::solver::{
    approximate_sum_quantile, exact_quantile, exact_quantile_batch, ErrorBudget,
};
pub use qjoin_core::{CoreError, PivotingOptions, QuantileResult};
pub use qjoin_engine::{Engine, EngineError};
pub use qjoin_query::Instance;
pub use qjoin_ranking::Ranking;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
    pub use qjoin_core::batch::quantile_batch_by_pivoting;
    pub use qjoin_core::dichotomy::{classify_partial_sum, SumClassification};
    pub use qjoin_core::encoded::{exact_quantile_batch_encoded, exact_quantile_encoded};
    pub use qjoin_core::lossy_trim::LossySumTrimmer;
    pub use qjoin_core::quantile::{quantile_by_pivoting, target_rank, PivotingOptions};
    pub use qjoin_core::sampling::{
        quantile_by_sampling, quantile_by_sampling_batch, quantile_by_sampling_batch_via_rows,
        SamplingOptions,
    };
    pub use qjoin_core::sketch::{sketch, RoundDirection, SketchBucket, SketchEntry};
    pub use qjoin_core::solver::{
        approximate_sum_quantile, approximate_sum_quantile_via_rows, exact_quantile,
        exact_quantile_batch, exact_quantile_batch_via_rows, exact_quantile_batch_with_options,
        exact_quantile_via_rows, exact_quantile_with_options, ErrorBudget,
    };
    pub use qjoin_core::trim::{AdjacentSumTrimmer, LexTrimmer, MinMaxTrimmer, Trimmer};
    pub use qjoin_core::QuantileResult;
    pub use qjoin_data::{Database, EncodedDatabase, Relation, Tuple, Value};
    pub use qjoin_engine::{
        Accuracy, Engine, EngineAnswer, EngineConfig, EngineError, EngineStats, PlanStorageStats,
        PlanStrategy, PreparedPlan,
    };
    pub use qjoin_exec::count::count_answers;
    pub use qjoin_query::query::{path_query, social_network_query, star_query};
    pub use qjoin_query::variable::vars;
    pub use qjoin_query::{Atom, EncodedInstance, Instance, JoinQuery, Variable};
    pub use qjoin_ranking::{AggregateKind, Ranking, Weight, WeightFn};
    pub use qjoin_server::{Client, Server, ServerConfig};
    pub use qjoin_workload::path::PathConfig;
    pub use qjoin_workload::social::SocialConfig;
    pub use qjoin_workload::star::StarConfig;
    pub use qjoin_workload::star_schema::StarSchemaConfig;
}
