//! # qjoin-workload
//!
//! Synthetic workload and data generators for the `qjoin` experiments.
//!
//! The paper is a theory paper and ships no datasets; its claims are asymptotic. The
//! experiment harness therefore needs *parameterized* synthetic instances whose size,
//! join fan-out, and weight skew can be controlled:
//!
//! * [`social`] — the social-network schema of the paper's introduction
//!   (`Admin(u1, e), Share(u2, e, l2), Attend(u3, e, l3)`), with a configurable number
//!   of users, events, and a Zipf-like skew on event popularity.
//! * [`path`] — k-path join instances `R_1(x_1, x_2), ..., R_k(x_k, x_{k+1})` with
//!   controllable join fan-out (the canonical tractable/intractable examples of the
//!   dichotomy).
//! * [`star`] — star joins sharing a central variable.
//! * [`star_schema`] — a data-warehouse orders/lineitem/part star schema with a
//!   Zipf-skewed fact table, parameterized up to 10^6–10^7 tuples (the scaling
//!   experiment's workload).
//! * [`figures`] — the exact worked instances of Figures 1/2/4 and Example 5.1, used
//!   by unit tests and by the figure-reproduction examples.
//! * [`random_acyclic`] — random acyclic queries with random databases, used by
//!   property-based tests to cross-check the algorithms against brute force.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod path;
pub mod random_acyclic;
pub mod social;
pub mod star;
pub mod star_schema;

use rand::Rng;

/// A reusable Zipf-like (power-law) sampler over `0..domain` with exponent `skew`:
/// `skew = 0` is uniform, larger values concentrate mass on small indices.
///
/// The cumulative distribution is precomputed once (`O(domain)`), so each draw costs
/// one uniform variate plus a binary search (`O(log domain)`). At million-tuple
/// scale this is the difference between generating a database in milliseconds and
/// in hours — the one-shot [`zipf_index`] rebuilds the CDF on every call and is only
/// appropriate for small domains.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    domain: usize,
    /// Cumulative unnormalized weights `Σ_{j<=i} j^{-skew}`; empty for the uniform
    /// (`skew <= 0`) shortcut.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the CDF for the given domain and exponent.
    pub fn new(domain: usize, skew: f64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        if skew <= 0.0 {
            return ZipfSampler {
                domain,
                cumulative: Vec::new(),
            };
        }
        let mut cumulative = Vec::with_capacity(domain);
        let mut acc = 0.0f64;
        for i in 1..=domain {
            acc += (i as f64).powf(-skew);
            cumulative.push(acc);
        }
        ZipfSampler { domain, cumulative }
    }

    /// Draws one index in `0..domain`. Consumes exactly one RNG variate, so seeded
    /// generation stays reproducible regardless of domain size.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        if self.cumulative.is_empty() {
            return rng.random_range(0..self.domain);
        }
        let total = *self.cumulative.last().expect("non-empty domain");
        let target = rng.random_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.domain - 1)
    }

    /// The domain size the sampler draws from.
    pub fn domain(&self) -> usize {
        self.domain
    }
}

/// Draws a value in `0..domain` from a Zipf-like (power-law) distribution with
/// exponent `skew`; `skew = 0` is uniform, larger values concentrate mass on small
/// indices. Used to control join fan-out skew across all generators.
///
/// One-shot convenience over [`ZipfSampler`]: rebuilds the CDF on every call. Hot
/// loops (anything drawing more than a handful of values from the same
/// distribution) should build the sampler once and reuse it.
pub fn zipf_index(rng: &mut impl Rng, domain: usize, skew: f64) -> usize {
    ZipfSampler::new(domain, skew).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10, 0.0)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "count {c} too far from uniform");
        }
    }

    #[test]
    fn zipf_high_skew_prefers_small_indices() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut first = 0usize;
        for _ in 0..5_000 {
            if zipf_index(&mut rng, 100, 1.5) == 0 {
                first += 1;
            }
        }
        assert!(first > 1_000, "index 0 drawn only {first} times");
    }

    #[test]
    fn zipf_results_stay_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for domain in [1usize, 2, 7, 50] {
            for skew in [0.0, 0.5, 2.0] {
                for _ in 0..200 {
                    assert!(zipf_index(&mut rng, domain, skew) < domain);
                }
            }
        }
    }
}
