//! The social-network workload of the paper's introduction.

use crate::ZipfSampler;
use qjoin_data::{Database, Relation, Value};
use qjoin_query::query::social_network_query;
use qjoin_query::variable::vars;
use qjoin_query::Instance;
use qjoin_ranking::Ranking;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the social-network instance
/// `Admin(u1, e), Share(u2, e, l2), Attend(u3, e, l3)`.
///
/// Each tuple draws its event from a Zipf-like distribution over `events` (popular
/// events make the join fan out) and its like count uniformly from `0..max_likes`.
/// The motivating query of the paper asks for the 0.1-quantile of `l2 + l3` over the
/// join, which is the partial SUM handled by Theorem 5.6's tractable side.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// Number of distinct users.
    pub users: usize,
    /// Number of distinct events.
    pub events: usize,
    /// Rows in each of the three relations.
    pub rows_per_relation: usize,
    /// Like counts are drawn from `0..max_likes`.
    pub max_likes: i64,
    /// Zipf skew of event popularity (0 = uniform).
    pub event_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            users: 1_000,
            events: 100,
            rows_per_relation: 1_000,
            max_likes: 1_000,
            event_skew: 0.8,
            seed: 7,
        }
    }
}

impl SocialConfig {
    /// Generates the instance.
    pub fn generate(&self) -> Instance {
        assert!(self.users >= 1 && self.events >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let event_dist = ZipfSampler::new(self.events, self.event_skew);
        let mut admin = Relation::new("Admin", 2);
        let mut share = Relation::new("Share", 3);
        let mut attend = Relation::new("Attend", 3);
        for _ in 0..self.rows_per_relation {
            let user = rng.random_range(0..self.users) as i64;
            let event = event_dist.sample(&mut rng) as i64;
            admin
                .push(vec![Value::from(user), Value::from(event)])
                .expect("arity");

            let user = rng.random_range(0..self.users) as i64;
            let event = event_dist.sample(&mut rng) as i64;
            let likes = rng.random_range(0..self.max_likes.max(1));
            share
                .push(vec![
                    Value::from(user),
                    Value::from(event),
                    Value::from(likes),
                ])
                .expect("arity");

            let user = rng.random_range(0..self.users) as i64;
            let event = event_dist.sample(&mut rng) as i64;
            let likes = rng.random_range(0..self.max_likes.max(1));
            attend
                .push(vec![
                    Value::from(user),
                    Value::from(event),
                    Value::from(likes),
                ])
                .expect("arity");
        }
        Instance::new(
            social_network_query(),
            Database::from_relations([admin, share, attend]).expect("distinct names"),
        )
        .expect("generated instance is consistent")
    }

    /// The ranking function of the motivating example: SUM of the share and attend
    /// like counts (`l2 + l3`).
    pub fn likes_ranking(&self) -> Ranking {
        Ranking::sum(vars(&["l2", "l3"]))
    }

    /// Total number of tuples the generated database will contain.
    pub fn database_size(&self) -> usize {
        3 * self.rows_per_relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_exec::count::count_answers;

    #[test]
    fn generated_instance_matches_schema() {
        let config = SocialConfig {
            rows_per_relation: 200,
            ..Default::default()
        };
        let inst = config.generate();
        assert_eq!(inst.database_size(), 600);
        assert_eq!(inst.database().relation("Share").unwrap().arity(), 3);
        assert!(count_answers(&inst).unwrap() > 0);
    }

    #[test]
    fn likes_ranking_targets_adjacent_atoms() {
        // l2 and l3 live in Share and Attend, which both contain the event variable;
        // the dichotomy classification itself is asserted in the cross-crate
        // integration tests.
        let config = SocialConfig::default();
        let inst = config.generate();
        let ranking = config.likes_ranking();
        let share = inst.query().atom(1);
        let attend = inst.query().atom(2);
        assert!(share.contains(&ranking.weighted_vars()[0]));
        assert!(attend.contains(&ranking.weighted_vars()[1]));
    }

    #[test]
    fn event_skew_increases_output_size() {
        let base = SocialConfig {
            rows_per_relation: 400,
            events: 50,
            event_skew: 0.0,
            seed: 11,
            ..Default::default()
        };
        let skewed = SocialConfig {
            event_skew: 1.5,
            ..base.clone()
        };
        let uniform_count = count_answers(&base.generate()).unwrap();
        let skewed_count = count_answers(&skewed.generate()).unwrap();
        assert!(
            skewed_count > uniform_count,
            "skewed {skewed_count} <= uniform {uniform_count}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let config = SocialConfig::default();
        assert_eq!(config.generate().database(), config.generate().database());
    }
}
