//! The worked instances of the paper's figures and examples, reproduced verbatim.
//!
//! These tiny instances anchor the implementation to the paper: the unit tests of the
//! substrate and algorithm crates check intermediate values against the figures, and
//! the `figure*` example binaries print the same numbers.

use qjoin_data::{Database, Relation};
use qjoin_query::query::figure1_query;
use qjoin_query::{Atom, Instance, JoinQuery};

/// The instance of Figure 1: `R(x1,x2), S(x1,x3), T(x2,x4), U(x4,x5)` over the
/// hand-made database whose answer count is 13 (counts 9 and 4 at the two `R` tuples).
pub fn figure1_instance() -> Instance {
    let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).expect("fixed rows");
    let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]])
        .expect("fixed rows");
    let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).expect("fixed rows");
    let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).expect("fixed rows");
    Instance::new(
        figure1_query(),
        Database::from_relations([r, s, t, u]).expect("distinct names"),
    )
    .expect("figure instance is consistent")
}

/// The join tree drawn in Figures 1 and 2: `R` is the root, `S` and `T` its children,
/// and `U` a child of `T`.
pub fn figure1_join_tree() -> qjoin_query::JoinTree {
    qjoin_query::JoinTree::from_edges(4, &[(0, 1), (0, 2), (2, 3)], 0)
}

/// The instance of Example 5.1: three unary relations ranked by
/// `MAX(x1, x2, x3)` with the pivot weight 10 used in the example.
pub fn example_5_1_instance() -> Instance {
    let q = JoinQuery::new(vec![
        Atom::from_names("A", &["x1"]),
        Atom::from_names("B", &["x2"]),
        Atom::from_names("C", &["x3"]),
    ]);
    let a = Relation::from_rows("A", &[&[2], &[8], &[12]]).expect("fixed rows");
    let b = Relation::from_rows("B", &[&[5], &[11]]).expect("fixed rows");
    let c = Relation::from_rows("C", &[&[1], &[9], &[15]]).expect("fixed rows");
    Instance::new(
        q,
        Database::from_relations([a, b, c]).expect("distinct names"),
    )
    .expect("figure instance is consistent")
}

/// The two-relation instance of Figure 4 / Example 6.4: `R(y, z), S(x, y)` with
/// partial sums `x + y ∈ {3, 4, 5}` flowing from `S` into the single `R` tuple.
pub fn figure4_instance() -> Instance {
    let q = JoinQuery::new(vec![
        Atom::from_names("R", &["y", "z"]),
        Atom::from_names("S", &["x", "y"]),
    ]);
    let r = Relation::from_rows("R", &[&[1, 6]]).expect("fixed rows");
    let s = Relation::from_rows("S", &[&[2, 1], &[3, 1], &[4, 1]]).expect("fixed rows");
    Instance::new(q, Database::from_relations([r, s]).expect("distinct names"))
        .expect("figure instance is consistent")
}

/// The binary-join instance of Example 3.4's shape (`R1(x1,x2), R2(x2,x3)`) scaled so
/// that `|Q(D)|` is close to the example's 1001 answers.
pub fn example_3_4_instance() -> Instance {
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    // 77 R1 tuples and 13 R2 tuples sharing a single join value: 77 × 13 = 1001.
    for i in 0..77i64 {
        r1.push(vec![qjoin_data::Value::from(i), qjoin_data::Value::from(0)])
            .expect("arity");
    }
    for j in 0..13i64 {
        r2.push(vec![
            qjoin_data::Value::from(0),
            qjoin_data::Value::from(100 * j),
        ])
        .expect("arity");
    }
    Instance::new(
        qjoin_query::query::path_query(2),
        Database::from_relations([r1, r2]).expect("distinct names"),
    )
    .expect("example instance is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_exec::count::count_answers;

    #[test]
    fn figure1_has_thirteen_answers() {
        assert_eq!(count_answers(&figure1_instance()).unwrap(), 13);
        assert!(figure1_join_tree().satisfies_running_intersection(figure1_instance().query()));
    }

    #[test]
    fn example_5_1_has_eighteen_answers() {
        assert_eq!(count_answers(&example_5_1_instance()).unwrap(), 18);
    }

    #[test]
    fn figure4_has_three_answers() {
        assert_eq!(count_answers(&figure4_instance()).unwrap(), 3);
    }

    #[test]
    fn example_3_4_has_1001_answers() {
        assert_eq!(count_answers(&example_3_4_instance()).unwrap(), 1001);
    }
}
