//! k-path join instances.

use crate::ZipfSampler;
use qjoin_data::{Database, Relation, Value};
use qjoin_query::query::path_query;
use qjoin_query::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a k-path instance `R_1(x_1, x_2), ..., R_k(x_k, x_{k+1})`.
///
/// Every relation holds `tuples_per_relation` rows. Interior variables
/// (`x_2, ..., x_k`) are drawn from a domain of `join_domain` values, which controls
/// the join fan-out and therefore how much larger than the input the join result is;
/// endpoint variables carry weights drawn from `0..weight_range`.
#[derive(Clone, Debug)]
pub struct PathConfig {
    /// Number of atoms `k`.
    pub atoms: usize,
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Domain size of the join (interior) variables.
    pub join_domain: usize,
    /// Weights are integers in `0..weight_range`.
    pub weight_range: i64,
    /// Zipf skew of the join-variable distribution (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            atoms: 3,
            tuples_per_relation: 1000,
            join_domain: 100,
            weight_range: 10_000,
            skew: 0.0,
            seed: 42,
        }
    }
}

impl PathConfig {
    /// Generates the instance.
    pub fn generate(&self) -> Instance {
        assert!(self.atoms >= 1);
        assert!(self.join_domain >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let join_key = ZipfSampler::new(self.join_domain, self.skew);
        let mut relations = Vec::with_capacity(self.atoms);
        for i in 1..=self.atoms {
            let mut rel = Relation::new(format!("R{i}"), 2);
            for _ in 0..self.tuples_per_relation {
                // The first column is x_i, the second x_{i+1}: endpoints get weight
                // values, interior columns get join-domain values.
                let first = if i == 1 {
                    rng.random_range(0..self.weight_range.max(1))
                } else {
                    join_key.sample(&mut rng) as i64
                };
                let second = if i == self.atoms {
                    rng.random_range(0..self.weight_range.max(1))
                } else {
                    join_key.sample(&mut rng) as i64
                };
                rel.push(vec![Value::from(first), Value::from(second)])
                    .expect("arity is fixed");
            }
            relations.push(rel);
        }
        Instance::new(
            path_query(self.atoms),
            Database::from_relations(relations).expect("distinct relation names"),
        )
        .expect("generated instance is consistent")
    }

    /// Total number of tuples the generated database will contain.
    pub fn database_size(&self) -> usize {
        self.atoms * self.tuples_per_relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_exec::count::count_answers;

    #[test]
    fn generated_instance_has_requested_shape() {
        let config = PathConfig {
            atoms: 3,
            tuples_per_relation: 200,
            join_domain: 10,
            weight_range: 50,
            skew: 0.0,
            seed: 7,
        };
        let inst = config.generate();
        assert_eq!(inst.query().num_atoms(), 3);
        assert_eq!(inst.database_size(), 600);
        assert_eq!(config.database_size(), 600);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = PathConfig::default();
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a.database(), b.database());
        let different = PathConfig {
            seed: 43,
            ..PathConfig::default()
        }
        .generate();
        assert_ne!(a.database(), different.database());
    }

    #[test]
    fn small_join_domain_produces_many_answers() {
        // With a small join domain the expected output is much larger than the input.
        let inst = PathConfig {
            atoms: 3,
            tuples_per_relation: 300,
            join_domain: 5,
            weight_range: 1000,
            skew: 0.0,
            seed: 1,
        }
        .generate();
        let answers = count_answers(&inst).unwrap();
        assert!(answers > 10 * inst.database_size() as u128);
    }

    #[test]
    fn skewed_instances_still_join() {
        let inst = PathConfig {
            atoms: 2,
            tuples_per_relation: 150,
            join_domain: 30,
            weight_range: 100,
            skew: 1.2,
            seed: 5,
        }
        .generate();
        assert!(count_answers(&inst).unwrap() > 0);
    }
}
