//! Star-join instances.

use crate::ZipfSampler;
use qjoin_data::{Database, Relation, Value};
use qjoin_query::query::star_query;
use qjoin_query::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a star instance `R_1(x_0, x_1), ..., R_k(x_0, x_k)`.
///
/// All relations share the central variable `x_0`, drawn from `center_domain` values;
/// leaf variables carry weights in `0..weight_range`. Star joins with SUM over the
/// leaves are the canonical *intractable* family of the dichotomy (the leaves form an
/// independent set), which makes them the stress test for the deterministic
/// approximation.
#[derive(Clone, Debug)]
pub struct StarConfig {
    /// Number of relations `k`.
    pub arms: usize,
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Domain size of the central join variable.
    pub center_domain: usize,
    /// Leaf weights are integers in `0..weight_range`.
    pub weight_range: i64,
    /// Zipf skew of the centre-value distribution.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarConfig {
    fn default() -> Self {
        StarConfig {
            arms: 3,
            tuples_per_relation: 1000,
            center_domain: 100,
            weight_range: 10_000,
            skew: 0.0,
            seed: 21,
        }
    }
}

impl StarConfig {
    /// Generates the instance.
    pub fn generate(&self) -> Instance {
        assert!(self.arms >= 1 && self.center_domain >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let center_dist = ZipfSampler::new(self.center_domain, self.skew);
        let mut relations = Vec::with_capacity(self.arms);
        for i in 1..=self.arms {
            let mut rel = Relation::new(format!("R{i}"), 2);
            for _ in 0..self.tuples_per_relation {
                let center = center_dist.sample(&mut rng) as i64;
                let leaf = rng.random_range(0..self.weight_range.max(1));
                rel.push(vec![Value::from(center), Value::from(leaf)])
                    .expect("arity");
            }
            relations.push(rel);
        }
        Instance::new(
            star_query(self.arms),
            Database::from_relations(relations).expect("distinct names"),
        )
        .expect("generated instance is consistent")
    }

    /// Total number of tuples the generated database will contain.
    pub fn database_size(&self) -> usize {
        self.arms * self.tuples_per_relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_exec::count::count_answers;

    #[test]
    fn shape_and_determinism() {
        let config = StarConfig {
            arms: 4,
            tuples_per_relation: 100,
            ..Default::default()
        };
        let inst = config.generate();
        assert_eq!(inst.query().num_atoms(), 4);
        assert_eq!(inst.database_size(), 400);
        assert_eq!(inst.database(), config.generate().database());
    }

    #[test]
    fn output_grows_superlinearly_in_arm_count() {
        let base = StarConfig {
            arms: 2,
            tuples_per_relation: 200,
            center_domain: 10,
            seed: 3,
            ..Default::default()
        };
        let more_arms = StarConfig {
            arms: 3,
            ..base.clone()
        };
        let c2 = count_answers(&base.generate()).unwrap();
        let c3 = count_answers(&more_arms.generate()).unwrap();
        assert!(c3 > c2);
        assert!(c2 > base.database_size() as u128);
    }
}
