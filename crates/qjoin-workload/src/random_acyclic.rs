//! Random acyclic queries and databases for property-based testing.
//!
//! Property tests compare the quantile algorithms against brute force on many random
//! instances; for that they need a generator of *acyclic* queries with non-trivial
//! join structure. The construction grows a random join tree directly, which
//! guarantees acyclicity by construction: each new atom shares a random non-empty
//! subset of variables with an existing atom and adds a few fresh ones.

use qjoin_data::{Database, Relation, Value};
use qjoin_query::{Atom, Instance, JoinQuery, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random-instance generator.
#[derive(Clone, Debug)]
pub struct RandomAcyclicConfig {
    /// Number of atoms (at least 1).
    pub atoms: usize,
    /// Maximum arity of each atom.
    pub max_arity: usize,
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Domain size of every variable (small domains create dense joins).
    pub domain: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomAcyclicConfig {
    fn default() -> Self {
        RandomAcyclicConfig {
            atoms: 3,
            max_arity: 3,
            tuples_per_relation: 20,
            domain: 6,
            seed: 0,
        }
    }
}

impl RandomAcyclicConfig {
    /// Generates a random acyclic instance.
    pub fn generate(&self) -> Instance {
        assert!(self.atoms >= 1 && self.max_arity >= 1 && self.domain >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut atoms: Vec<Atom> = Vec::with_capacity(self.atoms);
        let mut var_counter = 0usize;
        let fresh_var = |counter: &mut usize| {
            let v = Variable::new(format!("x{}", *counter));
            *counter += 1;
            v
        };

        for i in 0..self.atoms {
            let arity = rng.random_range(1..=self.max_arity);
            let mut vars: Vec<Variable> = Vec::with_capacity(arity);
            if i > 0 {
                // Share a random non-empty prefix of variables with a random earlier
                // atom; attaching to an existing atom keeps the query acyclic.
                let parent = &atoms[rng.random_range(0..i)];
                let parent_vars: Vec<Variable> = parent.variable_set().into_iter().collect();
                let shared = rng.random_range(1..=parent_vars.len().min(arity));
                for v in parent_vars.iter().take(shared) {
                    vars.push(v.clone());
                }
            }
            while vars.len() < arity {
                vars.push(fresh_var(&mut var_counter));
            }
            atoms.push(Atom::new(format!("R{i}"), vars));
        }

        let query = JoinQuery::new(atoms);
        let mut db = Database::new();
        for atom in query.atoms() {
            let mut rel = Relation::new(atom.relation(), atom.arity());
            for _ in 0..self.tuples_per_relation {
                let row: Vec<Value> = (0..atom.arity())
                    .map(|_| Value::from(rng.random_range(0..self.domain)))
                    .collect();
                rel.push(row).expect("arity matches");
            }
            // Relations are sets in the paper's model; small domains make duplicate
            // draws likely, so deduplicate before handing the instance out.
            rel.dedup();
            db.add_relation(rel).expect("distinct names");
        }
        Instance::new(query, db).expect("generated instance is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_query::acyclicity::is_acyclic;

    #[test]
    fn generated_queries_are_always_acyclic() {
        for seed in 0..50 {
            for atoms in 1..=5 {
                let inst = RandomAcyclicConfig {
                    atoms,
                    seed,
                    ..Default::default()
                }
                .generate();
                assert!(is_acyclic(inst.query()), "seed {seed}, atoms {atoms}");
            }
        }
    }

    #[test]
    fn generated_instances_validate_and_vary_with_seed() {
        let a = RandomAcyclicConfig {
            seed: 1,
            ..Default::default()
        }
        .generate();
        let b = RandomAcyclicConfig {
            seed: 2,
            ..Default::default()
        }
        .generate();
        assert_ne!(a.database(), b.database());
        assert_eq!(a.query().num_atoms(), 3);
    }

    #[test]
    fn many_random_instances_have_answers_sometimes() {
        // With a small domain, joins are dense enough that most instances are
        // non-empty; make sure the generator is not degenerate.
        let mut non_empty = 0;
        for seed in 0..30 {
            let inst = RandomAcyclicConfig {
                atoms: 3,
                domain: 4,
                tuples_per_relation: 15,
                seed,
                ..Default::default()
            }
            .generate();
            if qjoin_exec::count::count_answers(&inst).unwrap() > 0 {
                non_empty += 1;
            }
        }
        assert!(non_empty > 15, "only {non_empty}/30 instances had answers");
    }
}
