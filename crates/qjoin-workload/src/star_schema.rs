//! A data-warehouse orders/lineitem/part star schema — the scaling experiment's
//! million-tuple workload.
//!
//! The schema mirrors a trimmed TPC-H fragment:
//!
//! ```text
//! Orders(okey, owt), Lineitem(okey, pkey, lwt), Part(pkey, pwt)
//! ```
//!
//! `Lineitem` is the fact table and dominates the database size; `Orders` and
//! `Part` are dimensions roughly 10x and 100x smaller. Every lineitem's `okey`
//! and `pkey` are drawn (Zipf-skewed) from the dimension key ranges, and every
//! dimension key is present, so every lineitem joins exactly one order and one
//! part: `|Q(D)| = lineitems`, i.e. the output is *linear* in the input. That is
//! exactly the regime the scaling experiment needs — a near-linear time/Θ(n)
//! curve is meaningful only when the output itself does not blow up.
//!
//! Two rankings expose both sides of the Theorem 5.6 dichotomy on the same
//! instance: [`StarSchemaConfig::revenue_ranking`] (SUM over `lwt` alone, one
//! atom — exact quantiles are tractable) and
//! [`StarSchemaConfig::total_weight_ranking`] (SUM over `owt + lwt + pwt` —
//! `owt` and `pwt` live in non-adjacent atoms, so exact quantiles are NP-hard
//! and only the approximate paths apply).

use crate::ZipfSampler;
use qjoin_data::{Database, Relation, Value};
use qjoin_query::variable::vars;
use qjoin_query::{Atom, Instance, JoinQuery};
use qjoin_ranking::Ranking;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the orders/lineitem/part instance.
#[derive(Clone, Debug)]
pub struct StarSchemaConfig {
    /// Rows in the `Lineitem` fact table (the scale knob: 10^6–10^7 for the
    /// scaling experiment, smaller for tests).
    pub lineitems: usize,
    /// Rows in the `Orders` dimension (every `okey` in `0..orders` occurs).
    pub orders: usize,
    /// Rows in the `Part` dimension (every `pkey` in `0..parts` occurs).
    pub parts: usize,
    /// Weights are integers in `0..weight_range`.
    pub weight_range: i64,
    /// Zipf skew of the fact table's foreign keys (popular orders/parts).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StarSchemaConfig {
    fn default() -> Self {
        StarSchemaConfig::with_scale(10_000)
    }
}

impl StarSchemaConfig {
    /// A config with `lineitems` fact rows and the canonical 10:1 / 100:1
    /// dimension ratios (at least one row each).
    pub fn with_scale(lineitems: usize) -> Self {
        StarSchemaConfig {
            lineitems,
            orders: (lineitems / 10).max(1),
            parts: (lineitems / 100).max(1),
            weight_range: 10_000,
            skew: 0.6,
            seed: 2023,
        }
    }

    /// The query `Orders(o, wo), Lineitem(o, p, wl), Part(p, wp)`.
    pub fn query() -> JoinQuery {
        JoinQuery::new(vec![
            Atom::from_names("Orders", &["o", "wo"]),
            Atom::from_names("Lineitem", &["o", "p", "wl"]),
            Atom::from_names("Part", &["p", "wp"]),
        ])
    }

    /// Generates the instance.
    pub fn generate(&self) -> Instance {
        assert!(self.lineitems >= 1 && self.orders >= 1 && self.parts >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let weight_range = self.weight_range.max(1);
        let order_key = ZipfSampler::new(self.orders, self.skew);
        let part_key = ZipfSampler::new(self.parts, self.skew);

        let mut orders = Relation::new("Orders", 2);
        for okey in 0..self.orders {
            let wo = rng.random_range(0..weight_range);
            orders
                .push(vec![Value::from(okey as i64), Value::from(wo)])
                .expect("arity");
        }
        let mut part = Relation::new("Part", 2);
        for pkey in 0..self.parts {
            let wp = rng.random_range(0..weight_range);
            part.push(vec![Value::from(pkey as i64), Value::from(wp)])
                .expect("arity");
        }
        let mut lineitem = Relation::new("Lineitem", 3);
        for _ in 0..self.lineitems {
            let okey = order_key.sample(&mut rng) as i64;
            let pkey = part_key.sample(&mut rng) as i64;
            let wl = rng.random_range(0..weight_range);
            lineitem
                .push(vec![Value::from(okey), Value::from(pkey), Value::from(wl)])
                .expect("arity");
        }

        Instance::new(
            Self::query(),
            Database::from_relations([orders, lineitem, part]).expect("distinct names"),
        )
        .expect("generated instance is consistent")
    }

    /// SUM over the lineitem weight alone: all weighted variables live in one
    /// atom, so exact quantiles are tractable (Theorem 5.6, tractable side).
    pub fn revenue_ranking(&self) -> Ranking {
        Ranking::sum(vars(&["wl"]))
    }

    /// SUM over all three weights: `wo` (in `Orders`) and `wp` (in `Part`) sit
    /// in non-adjacent join-tree atoms, the intractable side of the dichotomy —
    /// only the ε-approximate and sampling paths serve this ranking.
    pub fn total_weight_ranking(&self) -> Ranking {
        Ranking::sum(vars(&["wo", "wl", "wp"]))
    }

    /// Total number of tuples the generated database will contain.
    pub fn database_size(&self) -> usize {
        self.lineitems + self.orders + self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_exec::count::count_answers;

    #[test]
    fn shape_and_determinism() {
        let config = StarSchemaConfig::with_scale(1_000);
        let inst = config.generate();
        assert_eq!(inst.query().num_atoms(), 3);
        assert_eq!(inst.database_size(), config.database_size());
        assert_eq!(config.database_size(), 1_000 + 100 + 10);
        assert_eq!(inst.database(), config.generate().database());
        let reseeded = StarSchemaConfig {
            seed: 1,
            ..config.clone()
        };
        assert_ne!(inst.database(), reseeded.generate().database());
    }

    #[test]
    fn every_lineitem_joins_exactly_once() {
        // Dimension keys cover the foreign-key domains, so the join output is
        // linear in the fact table — the property the scaling curve relies on.
        let config = StarSchemaConfig::with_scale(2_000);
        let inst = config.generate();
        assert_eq!(count_answers(&inst).unwrap(), config.lineitems as u128);
    }

    #[test]
    fn rankings_sit_on_opposite_sides_of_the_dichotomy() {
        let config = StarSchemaConfig::with_scale(500);
        let inst = config.generate();
        let lineitem = inst.query().atom(1);
        // Revenue: the single weighted variable lives in the fact atom.
        for v in config.revenue_ranking().weighted_vars() {
            assert!(lineitem.contains(v));
        }
        // Total weight: wo and wp live in atoms that share no variable, so no
        // single atom (nor adjacent pair) covers the weighted set.
        let ranking = config.total_weight_ranking();
        let weighted = ranking.weighted_vars();
        let orders = inst.query().atom(0);
        let part = inst.query().atom(2);
        assert!(orders.contains(&weighted[0]));
        assert!(part.contains(&weighted[2]));
        assert!(!orders.contains(&weighted[2]));
        assert!(!part.contains(&weighted[0]));
    }
}
