//! Per-phase tracing hooks for the divide-and-conquer solve drivers.
//!
//! Both the single-φ driver ([`crate::quantile::quantile_by_pivoting_traced`]) and
//! the batched driver ([`crate::batch::quantile_batch_by_pivoting_traced`]) accept a
//! [`SolveTracer`] and report how long each algorithmic phase took:
//!
//! * [`SolvePhase::Prepare`] — the up-front `|Q(D)|` counting pass (one event per
//!   solve);
//! * [`SolvePhase::PivotScan`] — one `c`-pivot selection (Algorithm 2; one event per
//!   pivoting round);
//! * [`SolvePhase::TrimRound`] — one round's trim-and-count work: building the
//!   less-than / greater-than partitions from the original instance and counting
//!   both (one event per pivoting round, so **round counts** fall out of counting
//!   these events);
//! * [`SolvePhase::Materialize`] — materializing a leaf's candidates and selecting
//!   the answer(s) directly.
//!
//! The trait is object-safe and every method defaults to a no-op, so the hooks cost
//! one virtual call per phase event when a tracer is installed and the untraced
//! entry points pay a [`NoopTracer`] whose calls the optimizer deletes. qjoin-core
//! deliberately does **not** depend on any metrics crate: the engine layer supplies
//! a tracer that records these durations into its own histograms.

use std::time::Duration;

/// One algorithmic phase of a pivoting solve (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolvePhase {
    /// The up-front `|Q(D)|` counting pass.
    Prepare,
    /// One `c`-pivot selection (Algorithm 2).
    PivotScan,
    /// One round of partition trimming and counting.
    TrimRound,
    /// Leaf materialization and direct selection.
    Materialize,
}

impl SolvePhase {
    /// All phases, in solve order.
    pub const ALL: [SolvePhase; 4] = [
        SolvePhase::Prepare,
        SolvePhase::PivotScan,
        SolvePhase::TrimRound,
        SolvePhase::Materialize,
    ];

    /// A stable kebab-case label, suitable as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            SolvePhase::Prepare => "prepare",
            SolvePhase::PivotScan => "pivot-scan",
            SolvePhase::TrimRound => "trim-round",
            SolvePhase::Materialize => "materialize",
        }
    }
}

/// Receives per-phase timing events from the solve drivers. All methods default to
/// no-ops; implementations record into whatever sink they like. Methods take `&self`
/// so a tracer can be shared across the recursion — use interior mutability
/// (atomics, `Cell`) to accumulate.
pub trait SolveTracer {
    /// One phase of the solve took `elapsed`. [`SolvePhase::PivotScan`] and
    /// [`SolvePhase::TrimRound`] fire once per pivoting round.
    fn phase(&self, phase: SolvePhase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// Executor time the phase accrued on the driver thread — wall time of
    /// pool-executed parallel regions only, so `parallel / phase` approximates
    /// the fraction of the phase spent inside the chunk executor.
    fn parallel(&self, phase: SolvePhase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }
}

/// The do-nothing tracer used by the untraced public entry points.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl SolveTracer for NoopTracer {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<&str> = SolvePhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["prepare", "pivot-scan", "trim-round", "materialize"]
        );
    }

    #[test]
    fn default_methods_are_no_ops_and_custom_tracers_accumulate() {
        NoopTracer.phase(SolvePhase::Prepare, Duration::from_nanos(1));

        struct Recording(RefCell<Vec<SolvePhase>>);
        impl SolveTracer for Recording {
            fn phase(&self, phase: SolvePhase, _elapsed: Duration) {
                self.0.borrow_mut().push(phase);
            }
        }
        let tracer = Recording(RefCell::new(Vec::new()));
        let dynamic: &dyn SolveTracer = &tracer;
        dynamic.phase(SolvePhase::TrimRound, Duration::ZERO);
        dynamic.phase(SolvePhase::TrimRound, Duration::ZERO);
        assert_eq!(
            *tracer.0.borrow(),
            [SolvePhase::TrimRound, SolvePhase::TrimRound]
        );
    }
}
