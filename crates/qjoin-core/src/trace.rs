//! Per-phase tracing hooks for the divide-and-conquer solve drivers.
//!
//! Both the single-φ driver ([`crate::quantile::quantile_by_pivoting_traced`]) and
//! the batched driver ([`crate::batch::quantile_batch_by_pivoting_traced`]) accept a
//! [`SolveTracer`] and report how long each algorithmic phase took:
//!
//! * [`SolvePhase::Prepare`] — the up-front `|Q(D)|` counting pass (one event per
//!   solve);
//! * [`SolvePhase::PivotScan`] — one `c`-pivot selection (Algorithm 2; one event per
//!   pivoting round);
//! * [`SolvePhase::TrimRound`] — one round's trim-and-count work: building the
//!   less-than / greater-than partitions from the original instance and counting
//!   both (one event per pivoting round, so **round counts** fall out of counting
//!   these events);
//! * [`SolvePhase::Materialize`] — materializing a leaf's candidates and selecting
//!   the answer(s) directly.
//!
//! The trait is object-safe and every method defaults to a no-op, so the hooks cost
//! one virtual call per phase event when a tracer is installed and the untraced
//! entry points pay a [`NoopTracer`] whose calls the optimizer deletes. qjoin-core
//! deliberately does **not** depend on any metrics crate: the engine layer supplies
//! a tracer that records these durations into its own histograms.

use std::time::Duration;

/// One algorithmic phase of a pivoting solve (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolvePhase {
    /// The up-front `|Q(D)|` counting pass.
    Prepare,
    /// One `c`-pivot selection (Algorithm 2).
    PivotScan,
    /// One round of partition trimming and counting.
    TrimRound,
    /// Leaf materialization and direct selection.
    Materialize,
}

impl SolvePhase {
    /// All phases, in solve order.
    pub const ALL: [SolvePhase; 4] = [
        SolvePhase::Prepare,
        SolvePhase::PivotScan,
        SolvePhase::TrimRound,
        SolvePhase::Materialize,
    ];

    /// A stable kebab-case label, suitable as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            SolvePhase::Prepare => "prepare",
            SolvePhase::PivotScan => "pivot-scan",
            SolvePhase::TrimRound => "trim-round",
            SolvePhase::Materialize => "materialize",
        }
    }
}

/// Structured context attached to a phase event — what the solve knew when the
/// phase finished, so a span-recording tracer can attribute *why* a round was
/// expensive, not just how long it took. Every field is optional: a phase
/// reports what it has (a prepare has no round index, a leaf has no trim
/// sizes). Counts larger than `u64::MAX` saturate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseContext {
    /// Zero-based pivoting-round index (the recursion depth in the batched
    /// driver). `None` for the one-shot prepare/materialize phases of the
    /// single-φ driver's straight-line prologue.
    pub round: Option<u64>,
    /// Candidate answers entering the phase (pre-trim size).
    pub candidates: Option<u64>,
    /// Candidates strictly below the pivot after a trim round.
    pub n_lt: Option<u64>,
    /// Candidates tied with the pivot after a trim round.
    pub n_eq: Option<u64>,
    /// Candidates strictly above the pivot after a trim round.
    pub n_gt: Option<u64>,
    /// Variable slots in the pivot assignment (a pivot-scan phase).
    pub pivot_slots: Option<u64>,
    /// Number of φ targets routed through this node (batched driver).
    pub targets: Option<u64>,
    /// Answers materialized at a leaf (a materialize phase).
    pub materialized: Option<u64>,
}

/// Saturates a `u128` count into the `u64` a [`PhaseContext`] field carries.
pub(crate) fn sat64(value: u128) -> u64 {
    value.min(u64::MAX as u128) as u64
}

/// Receives per-phase timing events from the solve drivers. All methods default to
/// no-ops; implementations record into whatever sink they like. Methods take `&self`
/// so a tracer can be shared across the recursion — use interior mutability
/// (atomics, `Cell`) to accumulate.
pub trait SolveTracer {
    /// One phase of the solve took `elapsed`. [`SolvePhase::PivotScan`] and
    /// [`SolvePhase::TrimRound`] fire once per pivoting round.
    fn phase(&self, phase: SolvePhase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// A phase event with structured context (round index, pre/post-trim
    /// sizes, pivot slot counts, routed-target counts). The drivers emit
    /// *this* method; the default forwards to [`SolveTracer::phase`] so
    /// duration-only tracers keep working unchanged and [`NoopTracer`] stays
    /// zero-cost.
    fn phase_event(&self, phase: SolvePhase, elapsed: Duration, ctx: &PhaseContext) {
        let _ = ctx;
        self.phase(phase, elapsed);
    }

    /// Executor time the phase accrued on the driver thread — wall time of
    /// pool-executed parallel regions only, so `parallel / phase` approximates
    /// the fraction of the phase spent inside the chunk executor.
    fn parallel(&self, phase: SolvePhase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }
}

/// The do-nothing tracer used by the untraced public entry points.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl SolveTracer for NoopTracer {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<&str> = SolvePhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["prepare", "pivot-scan", "trim-round", "materialize"]
        );
    }

    #[test]
    fn default_methods_are_no_ops_and_custom_tracers_accumulate() {
        NoopTracer.phase(SolvePhase::Prepare, Duration::from_nanos(1));

        struct Recording(RefCell<Vec<SolvePhase>>);
        impl SolveTracer for Recording {
            fn phase(&self, phase: SolvePhase, _elapsed: Duration) {
                self.0.borrow_mut().push(phase);
            }
        }
        let tracer = Recording(RefCell::new(Vec::new()));
        let dynamic: &dyn SolveTracer = &tracer;
        dynamic.phase(SolvePhase::TrimRound, Duration::ZERO);
        dynamic.phase(SolvePhase::TrimRound, Duration::ZERO);
        assert_eq!(
            *tracer.0.borrow(),
            [SolvePhase::TrimRound, SolvePhase::TrimRound]
        );
    }

    #[test]
    fn phase_event_defaults_to_forwarding_durations() {
        struct DurationOnly(RefCell<Vec<SolvePhase>>);
        impl SolveTracer for DurationOnly {
            fn phase(&self, phase: SolvePhase, _elapsed: Duration) {
                self.0.borrow_mut().push(phase);
            }
        }
        let tracer = DurationOnly(RefCell::new(Vec::new()));
        let dynamic: &dyn SolveTracer = &tracer;
        let ctx = PhaseContext {
            round: Some(3),
            n_lt: Some(10),
            ..PhaseContext::default()
        };
        dynamic.phase_event(SolvePhase::TrimRound, Duration::ZERO, &ctx);
        assert_eq!(*tracer.0.borrow(), [SolvePhase::TrimRound]);
    }
}
