//! Error types for the quantile algorithms.

use std::fmt;

/// Errors raised by the quantile-over-joins algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The requested quantile fraction is outside `[0, 1]`.
    InvalidPhi(f64),
    /// The approximation parameter is outside `(0, 1)`.
    InvalidEpsilon(f64),
    /// The query has no answers, so no quantile exists.
    NoAnswers,
    /// The query is cyclic; even answer existence is intractable (Section 2.3).
    CyclicQuery(String),
    /// Exact partial-SUM evaluation is intractable for this query/ranking combination
    /// under the 3SUM and Hyperclique hypotheses (the negative side of Theorem 5.6).
    /// The payload describes the witness; the ε-approximate algorithm still applies.
    IntractableSum(String),
    /// The ranking function is not supported by the requested algorithm.
    UnsupportedRanking(String),
    /// The trimming subroutine was invoked with a predicate shape it cannot handle
    /// (e.g. a vector bound passed to a scalar trimmer).
    UnsupportedPredicate(String),
    /// The query is too large for the exhaustive join-tree search used to find an
    /// adjacent cover of the weighted variables.
    QueryTooLarge {
        /// Number of atoms in the query.
        atoms: usize,
        /// Maximum supported by exhaustive search.
        limit: usize,
    },
    /// The encoded (dictionary-coded) execution path cannot represent this
    /// instance or construction; the caller should fall back to the row path.
    EncodedUnsupported(String),
    /// The approximate (sampling) path refuses this error/join regime: the
    /// requested guarantee would cost at least as much as solving exactly
    /// (e.g. the Hoeffding sample budget meets or exceeds the join size —
    /// the AQP-hardness regime of Liu & Wang). The payload is the witness;
    /// callers should downgrade to an exact or deterministic-ε solve.
    ApproxRefused(String),
    /// An execution-layer error.
    Exec(qjoin_exec::ExecError),
    /// A query-layer error.
    Query(qjoin_query::QueryError),
    /// A data-layer error.
    Data(qjoin_data::DataError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidPhi(phi) => write!(f, "quantile fraction {phi} is not in [0, 1]"),
            CoreError::InvalidEpsilon(eps) => {
                write!(f, "approximation parameter {eps} is not in (0, 1)")
            }
            CoreError::NoAnswers => write!(f, "the query has no answers over this database"),
            CoreError::CyclicQuery(q) => write!(f, "query is cyclic: {q}"),
            CoreError::IntractableSum(witness) => write!(
                f,
                "exact SUM quantile is not quasilinear for this query (Theorem 5.6): {witness}; \
                 consider the ε-approximate algorithm"
            ),
            CoreError::UnsupportedRanking(msg) => write!(f, "unsupported ranking function: {msg}"),
            CoreError::UnsupportedPredicate(msg) => write!(f, "unsupported predicate: {msg}"),
            CoreError::QueryTooLarge { atoms, limit } => write!(
                f,
                "query has {atoms} atoms; exhaustive join-tree search supports at most {limit}"
            ),
            CoreError::EncodedUnsupported(msg) => {
                write!(f, "encoded execution path unavailable: {msg}")
            }
            CoreError::ApproxRefused(witness) => {
                write!(f, "approximate solve refused: {witness}")
            }
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<qjoin_exec::ExecError> for CoreError {
    fn from(e: qjoin_exec::ExecError) -> Self {
        match e {
            qjoin_exec::ExecError::NoAnswers => CoreError::NoAnswers,
            qjoin_exec::ExecError::CyclicQuery(q) => CoreError::CyclicQuery(q),
            other => CoreError::Exec(other),
        }
    }
}

impl From<qjoin_query::QueryError> for CoreError {
    fn from(e: qjoin_query::QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<qjoin_data::DataError> for CoreError {
    fn from(e: qjoin_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CoreError::InvalidPhi(1.5).to_string().contains("1.5"));
        assert!(CoreError::NoAnswers.to_string().contains("no answers"));
        assert!(CoreError::IntractableSum("3 independent variables".into())
            .to_string()
            .contains("Theorem 5.6"));
    }

    #[test]
    fn exec_no_answers_maps_to_core_no_answers() {
        let e: CoreError = qjoin_exec::ExecError::NoAnswers.into();
        assert_eq!(e, CoreError::NoAnswers);
        let c: CoreError = qjoin_exec::ExecError::CyclicQuery("Q".into()).into();
        assert!(matches!(c, CoreError::CyclicQuery(_)));
    }
}
