//! Linear-time selection and weighted medians.
//!
//! The divide-and-conquer framework (Section 3) is modelled on classic linear-time
//! selection, and the pivot algorithm of Section 4 relies on the *weighted median*
//! (the element at the middle position of a multiset in which each element appears
//! with a given multiplicity). Both are implemented here with deterministic
//! median-of-medians pivoting, so the bounds are worst-case rather than expected.

use std::cmp::Ordering;

/// Selects the element with zero-based rank `k` under the comparator, in worst-case
/// linear time (median-of-medians). Ties are resolved arbitrarily but consistently.
///
/// Panics if `items` is empty or `k >= items.len()`.
pub fn select_kth_by<T: Clone>(items: &[T], k: usize, cmp: &impl Fn(&T, &T) -> Ordering) -> T {
    assert!(!items.is_empty(), "cannot select from an empty slice");
    assert!(
        k < items.len(),
        "rank {k} out of range for {} items",
        items.len()
    );
    let weighted: Vec<(T, u128)> = items.iter().map(|x| (x.clone(), 1u128)).collect();
    weighted_select_by(&weighted, k as u128, cmp)
}

/// The weighted median of a multiset given as `(element, multiplicity)` pairs: the
/// element at position `⌊(|B| − 1)/2⌋` (the *lower* median) of the expanded multiset
/// `B` under the comparator, matching the choice illustrated in Figure 2 of the paper.
///
/// Runs in worst-case linear time in the number of *distinct* elements.
/// Panics if the total multiplicity is zero.
pub fn weighted_median_by<T: Clone>(items: &[(T, u128)], cmp: &impl Fn(&T, &T) -> Ordering) -> T {
    let total: u128 = items.iter().map(|(_, m)| m).sum();
    assert!(
        total > 0,
        "cannot take the weighted median of an empty multiset"
    );
    weighted_select_by(items, (total - 1) / 2, cmp)
}

/// Weighted selection: returns the element at zero-based position `target` of the
/// multiset in which each element appears `multiplicity` times, ordered by `cmp`.
///
/// Panics if `target` is not smaller than the total multiplicity.
pub fn weighted_select_by<T: Clone>(
    items: &[(T, u128)],
    target: u128,
    cmp: &impl Fn(&T, &T) -> Ordering,
) -> T {
    let total: u128 = items.iter().map(|(_, m)| m).sum();
    assert!(
        target < total,
        "selection target {target} out of range for total multiplicity {total}"
    );
    // Entries with zero multiplicity contribute nothing; drop them up front.
    let mut current: Vec<(T, u128)> = items.iter().filter(|(_, m)| *m > 0).cloned().collect();
    let mut target = target;
    loop {
        if current.len() <= 16 {
            current.sort_by(|a, b| cmp(&a.0, &b.0));
            let mut acc = 0u128;
            for (x, m) in &current {
                acc += m;
                if target < acc {
                    return x.clone();
                }
            }
            unreachable!("target below total multiplicity");
        }
        let pivot = median_of_medians(&current, cmp);
        let mut less: Vec<(T, u128)> = Vec::new();
        let mut equal_mult = 0u128;
        let mut greater: Vec<(T, u128)> = Vec::new();
        let mut less_mult = 0u128;
        for (x, m) in current.into_iter() {
            match cmp(&x, &pivot) {
                Ordering::Less => {
                    less_mult += m;
                    less.push((x, m));
                }
                Ordering::Equal => equal_mult += m,
                Ordering::Greater => greater.push((x, m)),
            }
        }
        if target < less_mult {
            current = less;
        } else if target < less_mult + equal_mult {
            return pivot;
        } else {
            target -= less_mult + equal_mult;
            current = greater;
        }
    }
}

/// The classic median-of-medians pivot: group into fives, take each group's median,
/// recurse on the medians. Guarantees that at least ~30% of the elements fall on each
/// side, which keeps [`weighted_select_by`] linear.
fn median_of_medians<T: Clone>(items: &[(T, u128)], cmp: &impl Fn(&T, &T) -> Ordering) -> T {
    if items.len() <= 5 {
        let mut sorted: Vec<&(T, u128)> = items.iter().collect();
        sorted.sort_by(|a, b| cmp(&a.0, &b.0));
        return sorted[sorted.len() / 2].0.clone();
    }
    let medians: Vec<(T, u128)> = items
        .chunks(5)
        .map(|chunk| {
            let mut sorted: Vec<&(T, u128)> = chunk.iter().collect();
            sorted.sort_by(|a, b| cmp(&a.0, &b.0));
            (sorted[sorted.len() / 2].0.clone(), 1u128)
        })
        .collect();
    let mid = medians.iter().map(|(_, m)| m).sum::<u128>() / 2;
    weighted_select_by(&medians, mid, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp_i64(a: &i64, b: &i64) -> Ordering {
        a.cmp(b)
    }

    #[test]
    fn select_kth_matches_sorting() {
        let items: Vec<i64> = vec![5, 3, 9, 1, 7, 3, 8, 2, 6, 4, 0];
        let mut sorted = items.clone();
        sorted.sort_unstable();
        for (k, expected) in sorted.iter().enumerate() {
            assert_eq!(select_kth_by(&items, k, &cmp_i64), *expected, "k = {k}");
        }
    }

    #[test]
    fn select_kth_on_large_input_with_duplicates() {
        let items: Vec<i64> = (0..5000).map(|i| (i * 37) % 101).collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        for k in [0, 1, 2499, 2500, 4998, 4999] {
            assert_eq!(select_kth_by(&items, k, &cmp_i64), sorted[k]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_kth_rejects_out_of_range() {
        select_kth_by(&[1i64, 2], 2, &cmp_i64);
    }

    #[test]
    fn weighted_median_respects_multiplicities() {
        // Multiset: 1×1, 10×5, 100×1 → expansion [1,10,10,10,10,10,100]; position 3 = 10.
        let items = vec![(1i64, 1u128), (10, 5), (100, 1)];
        assert_eq!(weighted_median_by(&items, &cmp_i64), 10);
        // A heavy small element dominates: [1×10, 100×1] → median 1.
        assert_eq!(weighted_median_by(&[(1i64, 10u128), (100, 1)], &cmp_i64), 1);
    }

    #[test]
    fn weighted_select_matches_expanded_multiset() {
        let items = vec![(4i64, 3u128), (1, 2), (9, 4), (6, 1)];
        let mut expanded: Vec<i64> = Vec::new();
        for (x, m) in &items {
            for _ in 0..*m {
                expanded.push(*x);
            }
        }
        expanded.sort_unstable();
        for (target, expected) in expanded.iter().enumerate() {
            assert_eq!(
                weighted_select_by(&items, target as u128, &cmp_i64),
                *expected,
                "target {target}"
            );
        }
    }

    #[test]
    fn weighted_select_handles_huge_multiplicities() {
        let items = vec![(1i64, 1u128 << 90), (2, 1u128 << 90), (3, 1)];
        assert_eq!(weighted_select_by(&items, 0, &cmp_i64), 1);
        assert_eq!(weighted_select_by(&items, (1u128 << 90) + 5, &cmp_i64), 2);
        assert_eq!(weighted_select_by(&items, 1u128 << 91, &cmp_i64), 3);
    }

    #[test]
    fn weighted_select_ignores_zero_multiplicities() {
        let items = vec![(1i64, 0u128), (2, 1), (3, 0)];
        assert_eq!(weighted_select_by(&items, 0, &cmp_i64), 2);
    }

    #[test]
    #[should_panic(expected = "empty multiset")]
    fn weighted_median_of_empty_panics() {
        weighted_median_by::<i64>(&[], &cmp_i64);
    }

    #[test]
    fn weighted_median_definition_matches_paper() {
        // The lower median: for an even-sized multiset, the lower of the two middle
        // elements (Figure 2 picks U(6, 8) over U(6, 9) in the group of size 2).
        let items = vec![(1i64, 1u128), (2, 1), (3, 1), (4, 1)];
        assert_eq!(weighted_median_by(&items, &cmp_i64), 2);
        let odd = vec![(1i64, 1u128), (2, 1), (3, 1)];
        assert_eq!(weighted_median_by(&odd, &cmp_i64), 2);
    }

    #[test]
    fn select_kth_with_custom_comparator() {
        let items: Vec<(i64, &str)> = vec![(3, "c"), (1, "a"), (2, "b")];
        let by_first = |a: &(i64, &str), b: &(i64, &str)| a.0.cmp(&b.0);
        assert_eq!(select_kth_by(&items, 1, &by_first), (2, "b"));
    }
}
