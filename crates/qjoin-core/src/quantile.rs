//! The divide-and-conquer quantile driver (Section 3, Algorithm 1).
//!
//! Given an acyclic instance, a subset-monotone ranking function, a fraction `φ`, and a
//! trimming subroutine for the ranking's inequality predicates, the driver repeatedly:
//!
//! 1. selects a `c`-pivot of the current candidate instance (Section 4),
//! 2. trims the *original* instance down to the less-than and greater-than partitions
//!    around the pivot weight, intersected with the accumulated `low` / `high` bounds,
//! 3. counts both partitions in linear time and decides which one holds the target
//!    index (the equal-to partition means the pivot itself is the answer),
//!
//! until the candidate set fits within the materialization threshold, at which point it
//! falls back to materializing and selecting directly. With exact trimmings the result
//! is an exact `φ`-quantile (Lemma 3.3); with ε′-lossy trimmings it is an approximate
//! quantile whose rank error is bounded by the accumulated loss (Lemma 3.6).

use crate::pivot::{select_pivot, PivotResult};
use crate::selection::select_kth_by;
use crate::trace::{sat64, NoopTracer, PhaseContext, SolvePhase, SolveTracer};
use crate::trim::Trimmer;
use crate::{CoreError, Result};
use qjoin_data::Value;
use qjoin_exec::count::count_answers;
use qjoin_exec::yannakakis::materialize;
use qjoin_query::{Assignment, Instance, Variable};
use qjoin_ranking::{RankPredicate, Ranking, Weight, WeightBound};
use std::time::Instant;

/// Tuning knobs for the pivoting driver.
#[derive(Clone, Debug)]
pub struct PivotingOptions {
    /// Materialize and select directly once the candidate count drops to this many
    /// answers. Defaults to the original database size `n` (the paper's threshold).
    pub materialize_threshold: Option<u128>,
    /// Hard cap on the number of pivoting iterations (a safety net; the expected
    /// number is `O(log |Q(D)|)`).
    pub max_iterations: usize,
}

impl Default for PivotingOptions {
    fn default() -> Self {
        PivotingOptions {
            materialize_threshold: None,
            max_iterations: 256,
        }
    }
}

/// The result of a quantile computation.
#[derive(Clone, Debug)]
pub struct QuantileResult {
    /// The returned query answer, projected onto the original query's variables.
    pub answer: Assignment,
    /// The answer's weight under the ranking function.
    pub weight: Weight,
    /// The total number of query answers `|Q(D)|`.
    pub total_answers: u128,
    /// The zero-based rank the algorithm targeted (`⌊φ·|Q(D)|⌋`, clamped).
    pub target_index: u128,
    /// Number of pivoting iterations performed (0 when the instance was small enough
    /// to materialize immediately).
    pub iterations: usize,
}

/// Maps a fraction `φ ∈ [0, 1]` to the zero-based target rank `⌊φ·total⌋`, clamped to
/// the last rank.
///
/// The product is computed in `f64`, which needs care at rank boundaries: a fraction
/// obtained as `r / total` in floating point can land a few ULPs *below* the real
/// quotient, so a naive floor would target rank `r − 1` instead of `r`. Products
/// within a few ULPs of an integer are therefore snapped to that integer before
/// flooring; fractions genuinely between boundaries (off by ≥ one part in ~10¹⁵) are
/// unaffected.
pub fn target_rank(phi: f64, total: u128) -> u128 {
    debug_assert!(total > 0, "target_rank needs a non-empty answer set");
    let scaled = phi * total as f64;
    let rounded = scaled.round();
    let snapped = if (scaled - rounded).abs() <= scaled.abs() * 4.0 * f64::EPSILON {
        rounded
    } else {
        scaled.floor()
    };
    (snapped as u128).min(total - 1)
}

/// The operations the divide-and-conquer driver needs from an execution
/// representation. Implemented by the **row** backend (materialized
/// [`Instance`]s + a [`Trimmer`]) and by the **encoded** backend
/// (dictionary-coded views, [`crate::encoded`]). The driver logic is written once
/// and shared, so both representations take branch-for-branch identical recursions
/// — the backbone of the paths' pointwise-equality guarantee.
/// (`Sync` on the backend and `Send + Sync` on the instances lets the driver
/// rebuild the less-than and greater-than partitions as the two arms of a
/// [`qjoin_par::par_join`]; both backends are plain shared data.)
pub(crate) trait SolveBackend: Sync {
    /// The instance representation the backend recurses over.
    type Inst: Clone + Send + Sync;

    /// `|Q(D)|` of an instance (a linear-time Yannakakis counting pass).
    fn count(&self, instance: &Self::Inst) -> Result<u128>;

    /// The database size `n` (the default materialization threshold).
    fn database_size(&self, instance: &Self::Inst) -> usize;

    /// A `c`-pivot of the instance's answers (Algorithm 2).
    fn select_pivot(&self, instance: &Self::Inst) -> Result<PivotResult>;

    /// Trims the instance by a ranking predicate (Section 5).
    fn trim(&self, instance: &Self::Inst, predicate: &RankPredicate) -> Result<Self::Inst>;

    /// The leaf key a materialized answer is projected onto: the tie-break of the
    /// final direct selection. Must order **identically** to the projected
    /// `original_vars` values — the row backend uses the values themselves, the
    /// encoded backends use the projected dictionary codes (order-preserving by
    /// construction, so the two orders coincide and the selected answer is the
    /// same on every path).
    type Key: Ord + Clone + Send;

    /// Materializes the instance's answers as `(weight, key projected onto
    /// `original_vars`)` pairs for the final direct selection.
    fn keyed_answers(
        &self,
        instance: &Self::Inst,
        original_vars: &[Variable],
    ) -> Result<Vec<(Weight, Self::Key)>>;

    /// Reassembles one selected key into an [`Assignment`] over the original
    /// variables — the only point a backend has to produce row values, so the
    /// encoded backends decode exactly one answer per leaf target instead of
    /// every candidate.
    fn answer_from_key(&self, original_vars: &[Variable], key: &Self::Key) -> Assignment;
}

/// The row backend: materialized instances trimmed by a [`Trimmer`].
pub(crate) struct RowBackend<'a> {
    pub ranking: &'a Ranking,
    pub trimmer: &'a dyn Trimmer,
}

impl SolveBackend for RowBackend<'_> {
    type Inst = Instance;

    fn count(&self, instance: &Instance) -> Result<u128> {
        Ok(count_answers(instance)?)
    }

    fn database_size(&self, instance: &Instance) -> usize {
        instance.database_size()
    }

    fn select_pivot(&self, instance: &Instance) -> Result<PivotResult> {
        select_pivot(instance, self.ranking)
    }

    fn trim(&self, instance: &Instance, predicate: &RankPredicate) -> Result<Instance> {
        self.trimmer.trim(instance, self.ranking, predicate)
    }

    type Key = Vec<Value>;

    fn keyed_answers(
        &self,
        instance: &Instance,
        original_vars: &[Variable],
    ) -> Result<Vec<(Weight, Vec<Value>)>> {
        materialized_keyed_answers(instance, self.ranking, original_vars)
    }

    fn answer_from_key(&self, original_vars: &[Variable], key: &Vec<Value>) -> Assignment {
        Assignment::from_pairs(original_vars.iter().cloned().zip(key.iter().cloned()))
    }
}

/// Computes the `φ`-quantile of the instance's answers under the ranking function,
/// using the supplied trimming subroutine (Algorithm 1).
pub fn quantile_by_pivoting(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    trimmer: &dyn Trimmer,
    options: &PivotingOptions,
) -> Result<QuantileResult> {
    quantile_by_pivoting_traced(instance, ranking, phi, trimmer, options, &NoopTracer)
}

/// [`quantile_by_pivoting`] with per-phase timing reported to `tracer` (see
/// [`crate::trace`]). Results are identical to the untraced entry point.
pub fn quantile_by_pivoting_traced(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    trimmer: &dyn Trimmer,
    options: &PivotingOptions,
    tracer: &dyn SolveTracer,
) -> Result<QuantileResult> {
    let backend = RowBackend { ranking, trimmer };
    let original_vars = instance.query().variables();
    quantile_by_pivoting_backend(&backend, instance, phi, options, &original_vars, tracer)
}

/// Reports the executor time a phase accrued on this thread since `before` (a
/// [`qjoin_par::thread_parallel_nanos`] sample taken when the phase started).
/// Only pool-executed regions count, so a 1-thread solve reports nothing.
pub(crate) fn report_parallel(tracer: &dyn SolveTracer, phase: SolvePhase, before: u64) {
    let delta = qjoin_par::thread_parallel_nanos().saturating_sub(before);
    if delta > 0 {
        tracer.parallel(phase, std::time::Duration::from_nanos(delta));
    }
}

/// The generic driver behind [`quantile_by_pivoting`]: Algorithm 1 over any
/// [`SolveBackend`].
pub(crate) fn quantile_by_pivoting_backend<B: SolveBackend>(
    backend: &B,
    instance: &B::Inst,
    phi: f64,
    options: &PivotingOptions,
    original_vars: &[Variable],
    tracer: &dyn SolveTracer,
) -> Result<QuantileResult> {
    if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
        return Err(CoreError::InvalidPhi(phi));
    }
    let prepare_started = Instant::now();
    let prepare_par = qjoin_par::thread_parallel_nanos();
    let total = backend.count(instance)?;
    tracer.phase_event(
        SolvePhase::Prepare,
        prepare_started.elapsed(),
        &PhaseContext {
            candidates: Some(sat64(total)),
            ..PhaseContext::default()
        },
    );
    report_parallel(tracer, SolvePhase::Prepare, prepare_par);
    if total == 0 {
        return Err(CoreError::NoAnswers);
    }
    let target_index = target_rank(phi, total);
    let threshold = options
        .materialize_threshold
        .unwrap_or(backend.database_size(instance) as u128)
        .max(1);

    let mut current = instance.clone();
    let mut current_count = total;
    let mut k = target_index;
    let mut low = WeightBound::NegInf;
    let mut high = WeightBound::PosInf;
    let mut iterations = 0usize;

    while current_count > threshold && iterations < options.max_iterations {
        iterations += 1;
        let pivot_started = Instant::now();
        let pivot_par = qjoin_par::thread_parallel_nanos();
        let pivot = backend.select_pivot(&current)?;
        tracer.phase_event(
            SolvePhase::PivotScan,
            pivot_started.elapsed(),
            &PhaseContext {
                round: Some(iterations as u64 - 1),
                candidates: Some(sat64(current_count)),
                pivot_slots: Some(pivot.assignment.len() as u64),
                ..PhaseContext::default()
            },
        );
        report_parallel(tracer, SolvePhase::PivotScan, pivot_par);
        let pivot_weight = pivot.weight.clone();

        // Rebuild both partitions from the original instance, restricted to the
        // candidate region (low, high). The two partitions are independent, so
        // their trim+count pairs run as the two arms of a join (sequentially,
        // lt first, when the pool has one thread — the original order).
        let trim_started = Instant::now();
        let trim_par = qjoin_par::thread_parallel_nanos();
        let (lt_result, gt_result) = {
            let pw_lt = pivot_weight.clone();
            let pw_gt = pivot_weight.clone();
            let low_bound = low.clone();
            let high_bound = high.clone();
            qjoin_par::par_join(
                move || -> Result<(B::Inst, u128)> {
                    let first = backend.trim(instance, &RankPredicate::less_than(pw_lt))?;
                    let lt = backend.trim(
                        &first,
                        &RankPredicate {
                            op: qjoin_ranking::CmpOp::Gt,
                            bound: low_bound,
                        },
                    )?;
                    let n_lt = backend.count(&lt)?;
                    Ok((lt, n_lt))
                },
                move || -> Result<(B::Inst, u128)> {
                    let first = backend.trim(instance, &RankPredicate::greater_than(pw_gt))?;
                    let gt = backend.trim(
                        &first,
                        &RankPredicate {
                            op: qjoin_ranking::CmpOp::Lt,
                            bound: high_bound,
                        },
                    )?;
                    let n_gt = backend.count(&gt)?;
                    Ok((gt, n_gt))
                },
            )
        };
        let (lt, n_lt) = lt_result?;
        let (gt, n_gt) = gt_result?;
        let n_eq = current_count.saturating_sub(n_lt).saturating_sub(n_gt);
        tracer.phase_event(
            SolvePhase::TrimRound,
            trim_started.elapsed(),
            &PhaseContext {
                round: Some(iterations as u64 - 1),
                candidates: Some(sat64(current_count)),
                n_lt: Some(sat64(n_lt)),
                n_eq: Some(sat64(n_eq)),
                n_gt: Some(sat64(n_gt)),
                ..PhaseContext::default()
            },
        );
        report_parallel(tracer, SolvePhase::TrimRound, trim_par);

        if k < n_lt {
            current = lt;
            current_count = n_lt;
            high = WeightBound::Finite(pivot_weight);
        } else if k < n_lt + n_eq {
            return Ok(QuantileResult {
                answer: pivot.assignment.project(original_vars),
                weight: pivot_weight,
                total_answers: total,
                target_index,
                iterations,
            });
        } else {
            k -= n_lt + n_eq;
            current = gt;
            current_count = n_gt;
            low = WeightBound::Finite(pivot_weight);
        }
        if current_count == 0 {
            // Lossy trimmings may drop the targeted answers entirely; fall back to the
            // pivot, which is within the accumulated error budget of the target.
            return Ok(QuantileResult {
                answer: pivot.assignment.project(original_vars),
                weight: pivot.weight,
                total_answers: total,
                target_index,
                iterations,
            });
        }
    }

    // Materialize the remaining candidates and select directly.
    let materialize_started = Instant::now();
    let materialize_par = qjoin_par::thread_parallel_nanos();
    let keyed = backend.keyed_answers(&current, original_vars)?;
    if keyed.is_empty() {
        return Err(CoreError::NoAnswers);
    }
    let k = (k as usize).min(keyed.len() - 1);
    // Select by index: the selection machinery clones its working set, and
    // cloning `usize`s instead of (weight, key) pairs keeps the leaf linear in
    // practice, not just in theory. Answers with equal (weight, key) are
    // interchangeable, so index ties cannot change the returned answer.
    let indices: Vec<usize> = (0..keyed.len()).collect();
    let selected_idx = select_kth_by(&indices, k, &|&a, &b| {
        keyed_answer_cmp(&keyed[a], &keyed[b])
    });
    let selected = &keyed[selected_idx];
    let answer = backend.answer_from_key(original_vars, &selected.1);
    tracer.phase_event(
        SolvePhase::Materialize,
        materialize_started.elapsed(),
        &PhaseContext {
            round: Some(iterations as u64),
            candidates: Some(sat64(current_count)),
            materialized: Some(keyed.len() as u64),
            ..PhaseContext::default()
        },
    );
    report_parallel(tracer, SolvePhase::Materialize, materialize_par);
    Ok(QuantileResult {
        answer,
        weight: selected.0.clone(),
        total_answers: total,
        target_index,
        iterations,
    })
}

/// Materializes the instance's answers, projecting each row onto `original_vars` and
/// keying it by its ranking weight. Shared by the single-φ driver and the batched
/// multi-φ driver so both resolve leaves from the exact same (weight, values) pairs.
pub(crate) fn materialized_keyed_answers(
    instance: &Instance,
    ranking: &Ranking,
    original_vars: &[Variable],
) -> Result<Vec<(Weight, Vec<qjoin_data::Value>)>> {
    let answers = materialize(instance)?;
    let schema = answers.variables().to_vec();
    let positions: Vec<usize> = original_vars
        .iter()
        .map(|v| {
            schema
                .iter()
                .position(|s| s == v)
                .expect("trimmed queries retain the original variables")
        })
        .collect();
    Ok(answers
        .rows()
        .iter()
        .map(|row| {
            let weight = ranking.weight_of_row(&schema, row);
            let projected: Vec<qjoin_data::Value> =
                positions.iter().map(|&p| row[p].clone()).collect();
            (weight, projected)
        })
        .collect())
}

/// The total order used when selecting from materialized answers: by weight, ties
/// broken by the backend's projected key (values on the row path, dictionary
/// codes on the encoded paths — identical orders by the dictionary's
/// order-preservation invariant).
pub(crate) fn keyed_answer_cmp<K: Ord>(a: &(Weight, K), b: &(Weight, K)) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1))
}

/// Computes the exact rank window of a weight within the instance's answers:
/// `(strictly_below, equal)` counts. Used by tests and experiments to validate that a
/// returned answer really is a `φ`-quantile (or within ε of one).
pub fn rank_of_weight(
    instance: &Instance,
    ranking: &Ranking,
    weight: &Weight,
) -> Result<(u128, u128)> {
    let answers = materialize(instance)?;
    let schema = answers.variables().to_vec();
    let mut below = 0u128;
    let mut equal = 0u128;
    for row in answers.rows() {
        match ranking.weight_of_row(&schema, row).cmp(weight) {
            std::cmp::Ordering::Less => below += 1,
            std::cmp::Ordering::Equal => equal += 1,
            std::cmp::Ordering::Greater => {}
        }
    }
    Ok((below, equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trim::{AdjacentSumTrimmer, LexTrimmer, MinMaxTrimmer};
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::path_query;
    use qjoin_query::variable::vars;

    fn two_path_instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push(vec![Value::from((17 * i) % 101), Value::from(i % 4)])
                .unwrap();
            r2.push(vec![Value::from(i % 4), Value::from((13 * i) % 89)])
                .unwrap();
        }
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    fn three_path_instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 0..n {
            r1.push(vec![Value::from((7 * i) % 43), Value::from(i % 3)])
                .unwrap();
            r2.push(vec![Value::from(i % 3), Value::from((5 * i) % 37)])
                .unwrap();
            r3.push(vec![Value::from((5 * i) % 37), Value::from((3 * i) % 31)])
                .unwrap();
        }
        Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap()
    }

    /// Checks that the returned answer is a valid φ-quantile: there is an ordering of
    /// the answers in which it sits at the target index, i.e. the target index falls
    /// within the answer's weight window `[below, below + equal)`.
    fn assert_valid_quantile(instance: &Instance, ranking: &Ranking, result: &QuantileResult) {
        let (below, equal) = rank_of_weight(instance, ranking, &result.weight).unwrap();
        assert!(equal >= 1, "returned weight does not belong to any answer");
        assert!(
            result.target_index >= below && result.target_index < below + equal,
            "target {} outside window [{}, {})",
            result.target_index,
            below,
            below + equal
        );
        // The returned assignment is itself an answer of the original query.
        let weight = ranking.weight_of(&result.answer);
        assert_eq!(weight, result.weight);
    }

    #[test]
    fn sum_median_on_binary_join_is_exact() {
        let inst = two_path_instance(60);
        let ranking = Ranking::sum(inst.query().variables());
        let result = quantile_by_pivoting(
            &inst,
            &ranking,
            0.5,
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        assert!(result.iterations >= 1, "should pivot at least once");
        assert_valid_quantile(&inst, &ranking, &result);
    }

    #[test]
    fn extreme_quantiles_are_the_minimum_and_maximum() {
        let inst = two_path_instance(40);
        let ranking = Ranking::sum(inst.query().variables());
        let min = quantile_by_pivoting(
            &inst,
            &ranking,
            0.0,
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        let max = quantile_by_pivoting(
            &inst,
            &ranking,
            1.0,
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        assert_eq!(min.target_index, 0);
        assert_eq!(max.target_index, max.total_answers - 1);
        assert_valid_quantile(&inst, &ranking, &min);
        assert_valid_quantile(&inst, &ranking, &max);
        assert!(min.weight <= max.weight);
    }

    #[test]
    fn many_phis_agree_with_the_brute_force_baseline() {
        let inst = two_path_instance(30);
        let ranking = Ranking::sum(inst.query().variables());
        for phi in [0.05, 0.2, 0.37, 0.5, 0.63, 0.8, 0.99] {
            let result = quantile_by_pivoting(
                &inst,
                &ranking,
                phi,
                &AdjacentSumTrimmer,
                &PivotingOptions::default(),
            )
            .unwrap();
            assert_valid_quantile(&inst, &ranking, &result);
        }
    }

    #[test]
    fn minmax_quantiles_on_three_path() {
        let inst = three_path_instance(25);
        for ranking in [
            Ranking::min(inst.query().variables()),
            Ranking::max(inst.query().variables()),
            Ranking::max(vars(&["x1", "x4"])),
        ] {
            for phi in [0.1, 0.5, 0.9] {
                let result = quantile_by_pivoting(
                    &inst,
                    &ranking,
                    phi,
                    &MinMaxTrimmer,
                    &PivotingOptions::default(),
                )
                .unwrap();
                assert_valid_quantile(&inst, &ranking, &result);
            }
        }
    }

    #[test]
    fn lex_quantiles_on_three_path() {
        let inst = three_path_instance(20);
        let ranking = Ranking::lex(vars(&["x2", "x4", "x1"]));
        for phi in [0.25, 0.5, 0.75] {
            let result = quantile_by_pivoting(
                &inst,
                &ranking,
                phi,
                &LexTrimmer,
                &PivotingOptions::default(),
            )
            .unwrap();
            assert_valid_quantile(&inst, &ranking, &result);
        }
    }

    #[test]
    fn partial_sum_on_three_path_is_exact() {
        let inst = three_path_instance(18);
        let ranking = Ranking::sum(vars(&["x1", "x2", "x3"]));
        for phi in [0.1, 0.5, 0.9] {
            let result = quantile_by_pivoting(
                &inst,
                &ranking,
                phi,
                &AdjacentSumTrimmer,
                &PivotingOptions::default(),
            )
            .unwrap();
            assert_valid_quantile(&inst, &ranking, &result);
        }
    }

    #[test]
    fn small_instances_are_materialized_directly() {
        let inst = two_path_instance(4);
        let ranking = Ranking::sum(inst.query().variables());
        let result = quantile_by_pivoting(
            &inst,
            &ranking,
            0.5,
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        assert_eq!(result.iterations, 0);
        assert_valid_quantile(&inst, &ranking, &result);
    }

    #[test]
    fn forcing_tiny_threshold_exercises_many_iterations() {
        let inst = two_path_instance(40);
        let ranking = Ranking::sum(inst.query().variables());
        let options = PivotingOptions {
            materialize_threshold: Some(1),
            max_iterations: 256,
        };
        let result =
            quantile_by_pivoting(&inst, &ranking, 0.5, &AdjacentSumTrimmer, &options).unwrap();
        assert_valid_quantile(&inst, &ranking, &result);
        // Convergence must be logarithmic-ish: with c ≥ 1/8 and |Q(D)| ≤ 400, far
        // fewer than 100 iterations are needed.
        assert!(result.iterations < 100);
    }

    #[test]
    fn invalid_phi_and_empty_instances_error() {
        let inst = two_path_instance(5);
        let ranking = Ranking::sum(inst.query().variables());
        assert!(matches!(
            quantile_by_pivoting(
                &inst,
                &ranking,
                1.5,
                &AdjacentSumTrimmer,
                &PivotingOptions::default()
            )
            .unwrap_err(),
            CoreError::InvalidPhi(_)
        ));
        let empty = Instance::new(
            path_query(2),
            Database::from_relations([
                Relation::from_rows("R1", &[&[1, 1]]).unwrap(),
                Relation::from_rows("R2", &[&[2, 2]]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            quantile_by_pivoting(
                &empty,
                &ranking,
                0.5,
                &AdjacentSumTrimmer,
                &PivotingOptions::default()
            )
            .unwrap_err(),
            CoreError::NoAnswers
        ));
    }
}
