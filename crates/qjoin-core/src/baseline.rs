//! Brute-force baselines: materialize the join, then sort or select.
//!
//! This is the "direct way of finding the quantile" that the paper's introduction sets
//! out to beat: materialize `Q(D)`, order the answers, and read off position
//! `⌊φ·|Q(D)|⌋`. Its cost is driven by the join output size (up to `n^ℓ`), which is
//! exactly what the pivoting algorithms avoid; the experiment harness runs both and
//! compares their scaling.

use crate::quantile::{target_rank, QuantileResult};
use crate::selection::select_kth_by;
use crate::{CoreError, Result};
use qjoin_data::Value;
use qjoin_exec::yannakakis::materialize;
use qjoin_query::{Assignment, Instance};
use qjoin_ranking::{Ranking, Weight};

/// How the materialized answers are ordered to locate the quantile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineStrategy {
    /// Sort all answers by weight (O(|Q(D)| log |Q(D)|)).
    FullSort,
    /// Linear-time selection over the materialized answers (O(|Q(D)|)).
    Selection,
}

/// Computes the `φ`-quantile by materializing the full join result.
pub fn quantile_by_materialization(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    strategy: BaselineStrategy,
) -> Result<QuantileResult> {
    if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
        return Err(CoreError::InvalidPhi(phi));
    }
    let answers = materialize(instance)?;
    if answers.is_empty() {
        return Err(CoreError::NoAnswers);
    }
    let total = answers.len() as u128;
    let target_index = target_rank(phi, total) as usize;
    let schema = answers.variables().to_vec();

    let mut keyed: Vec<(Weight, &Vec<Value>)> = answers
        .rows()
        .iter()
        .map(|row| (ranking.weight_of_row(&schema, row), row))
        .collect();

    let (weight, row): (Weight, Vec<Value>) = match strategy {
        BaselineStrategy::FullSort => {
            keyed.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
            let (w, r) = &keyed[target_index];
            (w.clone(), (*r).clone())
        }
        BaselineStrategy::Selection => {
            let picked = select_kth_by(&keyed, target_index, &|a, b| {
                a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1))
            });
            (picked.0, picked.1.clone())
        }
    };

    let answer = Assignment::from_pairs(schema.iter().cloned().zip(row));
    Ok(QuantileResult {
        answer,
        weight,
        total_answers: total,
        target_index: target_index as u128,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::rank_of_weight;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::path_query;

    fn instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push(vec![Value::from((31 * i) % 57), Value::from(i % 5)])
                .unwrap();
            r2.push(vec![Value::from(i % 5), Value::from((23 * i) % 71)])
                .unwrap();
        }
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn sort_and_selection_strategies_agree_on_weight() {
        let inst = instance(40);
        let ranking = Ranking::sum(inst.query().variables());
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let a = quantile_by_materialization(&inst, &ranking, phi, BaselineStrategy::FullSort)
                .unwrap();
            let b = quantile_by_materialization(&inst, &ranking, phi, BaselineStrategy::Selection)
                .unwrap();
            assert_eq!(a.weight, b.weight, "phi = {phi}");
            assert_eq!(a.target_index, b.target_index);
        }
    }

    #[test]
    fn baseline_results_are_valid_quantiles() {
        let inst = instance(35);
        let ranking = Ranking::max(inst.query().variables());
        for phi in [0.1, 0.5, 0.9] {
            let result =
                quantile_by_materialization(&inst, &ranking, phi, BaselineStrategy::FullSort)
                    .unwrap();
            let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
            assert!(result.target_index >= below && result.target_index < below + equal);
        }
    }

    #[test]
    fn errors_match_the_pivoting_driver() {
        let inst = instance(5);
        let ranking = Ranking::sum(inst.query().variables());
        assert!(matches!(
            quantile_by_materialization(&inst, &ranking, -0.1, BaselineStrategy::FullSort)
                .unwrap_err(),
            CoreError::InvalidPhi(_)
        ));
        let empty = Instance::new(
            path_query(2),
            Database::from_relations([
                Relation::from_rows("R1", &[&[1, 1]]).unwrap(),
                Relation::from_rows("R2", &[&[2, 2]]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            quantile_by_materialization(&empty, &ranking, 0.5, BaselineStrategy::Selection)
                .unwrap_err(),
            CoreError::NoAnswers
        ));
    }
}
