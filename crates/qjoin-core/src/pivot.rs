//! Generic pivot selection (Section 4, Algorithm 2).
//!
//! Given an acyclic join query, a database, and a subset-monotone ranking function,
//! [`select_pivot`] returns a query answer that is a *c-pivot* of the answer set: at
//! least a `c` fraction of the answers is ⪯ the pivot, and at least a `c` fraction is
//! ⪰ it, where `c` depends only on the join-tree shape (never on the data).
//!
//! The algorithm is an iterated "median of medians" expressed in the message-passing
//! framework: every tuple computes a pivot of the partial answers of its subtree; a
//! join group combines its members' pivots with a *weighted median* (weights = subtree
//! answer counts); a tuple absorbs the group pivots of its children by unioning the
//! variable assignments (Lemma 4.4 guarantees consistency) and multiplying counts.

use crate::selection::weighted_median_by;
use crate::{CoreError, Result};
use qjoin_exec::message_passing::{self, MessageAlgebra};
use qjoin_exec::JoinTreeContext;
use qjoin_query::{Assignment, Instance, JoinTree};
use qjoin_ranking::{Ranking, Weight};

/// The outcome of pivot selection.
#[derive(Clone, Debug)]
pub struct PivotResult {
    /// The pivot query answer (a full answer of the instance's query).
    pub assignment: Assignment,
    /// The pivot's weight under the ranking function.
    pub weight: Weight,
    /// The guaranteed pivot quality `c`: at least `c · |Q(D)|` answers lie on each
    /// side of the pivot. Depends only on the join-tree shape.
    pub c: f64,
    /// The total number of query answers `|Q(D)|` (a by-product of the counting pass).
    pub total_answers: u128,
}

/// One message of the pivot algebra: the pivot of the partial answers of a subtree
/// together with the number of those partial answers.
#[derive(Clone, Debug)]
struct PivotMsg {
    pivot: Assignment,
    count: u128,
}

struct PivotAlgebra<'a> {
    ranking: &'a Ranking,
}

impl MessageAlgebra for PivotAlgebra<'_> {
    type Msg = PivotMsg;

    fn tuple_init(&self, ctx: &JoinTreeContext, node: usize, tuple_idx: usize) -> PivotMsg {
        PivotMsg {
            pivot: ctx.partial_assignment(node, tuple_idx),
            count: 1,
        }
    }

    fn combine_group(
        &self,
        _ctx: &JoinTreeContext,
        _node: usize,
        group: &[(usize, PivotMsg)],
    ) -> PivotMsg {
        let items: Vec<(Assignment, u128)> = group
            .iter()
            .map(|(_, m)| (m.pivot.clone(), m.count))
            .collect();
        let total: u128 = items.iter().map(|(_, c)| c).sum();
        let median = weighted_median_by(&items, &|a: &Assignment, b: &Assignment| {
            self.ranking
                .compare(&self.ranking.weight_of(a), &self.ranking.weight_of(b))
                .then_with(|| a.cmp(b))
        });
        PivotMsg {
            pivot: median,
            count: total,
        }
    }

    fn absorb(
        &self,
        _ctx: &JoinTreeContext,
        _node: usize,
        _tuple_idx: usize,
        own: PivotMsg,
        child_group_msg: &PivotMsg,
    ) -> PivotMsg {
        let pivot = own
            .pivot
            .union(&child_group_msg.pivot)
            .expect("join-tree pivots agree on shared variables (Lemma 4.4)");
        PivotMsg {
            pivot,
            count: own.count * child_group_msg.count,
        }
    }
}

/// Selects a `c`-pivot of `Q(D)` for an acyclic instance under a subset-monotone
/// ranking function, in time linear in the database (Lemma 4.1).
pub fn select_pivot(instance: &Instance, ranking: &Ranking) -> Result<PivotResult> {
    let ctx = JoinTreeContext::build(instance)?;
    select_pivot_ctx(&ctx, ranking)
}

/// [`select_pivot`] over a pre-built execution context.
pub fn select_pivot_ctx(ctx: &JoinTreeContext, ranking: &Ranking) -> Result<PivotResult> {
    if ctx.has_no_answers() {
        return Err(CoreError::NoAnswers);
    }
    let algebra = PivotAlgebra { ranking };
    let result = message_passing::run(ctx, &algebra);

    // The artificial root V_0 = ∅ joins with every root tuple: its single join group is
    // the whole root relation, so the final pivot is the weighted median of the root
    // tuples' pivots.
    let root = ctx.root();
    let root_msgs: Vec<(Assignment, u128)> = result.per_tuple[root]
        .iter()
        .map(|m| (m.pivot.clone(), m.count))
        .collect();
    let total: u128 = root_msgs.iter().map(|(_, c)| c).sum();
    let pivot = weighted_median_by(&root_msgs, &|a: &Assignment, b: &Assignment| {
        ranking
            .compare(&ranking.weight_of(a), &ranking.weight_of(b))
            .then_with(|| a.cmp(b))
    });
    let weight = ranking.weight_of(&pivot);
    let c = pivot_quality(ctx.tree());
    Ok(PivotResult {
        assignment: pivot,
        weight,
        c,
        total_answers: total,
    })
}

/// The pivot quality guaranteed by the join-tree shape (Algorithm 2, lines 7–11 and
/// the artificial-root step): leaves are 1-pivots of their singleton subtrees, an
/// internal node with children `S_1..S_r` achieves `∏ c(S_i)/2`, and the final
/// weighted median over the root relation halves the root's value once more.
pub fn pivot_quality(tree: &JoinTree) -> f64 {
    fn node_quality(tree: &JoinTree, node: usize) -> f64 {
        let children = &tree.node(node).children;
        if children.is_empty() {
            return 1.0;
        }
        children
            .iter()
            .map(|&c| node_quality(tree, c) / 2.0)
            .product()
    }
    node_quality(tree, tree.root()) / 2.0
}

/// Exhaustively verifies that `pivot` is a `c`-pivot of the instance's answers by
/// materializing them. Intended for tests and experiments (E-PIVOT), not production.
pub fn verify_pivot(
    instance: &Instance,
    ranking: &Ranking,
    pivot: &PivotResult,
) -> Result<(f64, f64)> {
    let answers = qjoin_exec::yannakakis::materialize(instance)?;
    let total = answers.len() as f64;
    if answers.is_empty() {
        return Err(CoreError::NoAnswers);
    }
    let schema = answers.variables().to_vec();
    let mut below_or_equal = 0usize;
    let mut above_or_equal = 0usize;
    for row in answers.rows() {
        let w = ranking.weight_of_row(&schema, row);
        match ranking.compare(&w, &pivot.weight) {
            std::cmp::Ordering::Less => below_or_equal += 1,
            std::cmp::Ordering::Greater => above_or_equal += 1,
            std::cmp::Ordering::Equal => {
                below_or_equal += 1;
                above_or_equal += 1;
            }
        }
    }
    Ok((below_or_equal as f64 / total, above_or_equal as f64 / total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::{figure1_query, path_query};
    use qjoin_query::variable::vars;
    use qjoin_query::Variable;

    fn figure1_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn figure2_pivot_message_for_r11() {
        // Figure 2 of the paper: with the tree rooted at R and full SUM with identity
        // weights, the pivot computed at tuple R(1,1) is
        // {x1: 1, x2: 1, x3: 4, x4: 6, x5: 8}.
        let inst = figure1_instance();
        let tree = qjoin_query::JoinTree::from_edges(4, &[(0, 1), (0, 2), (2, 3)], 0);
        let ctx = qjoin_exec::JoinTreeContext::build_with_tree(&inst, tree).unwrap();
        let ranking = Ranking::sum(inst.query().variables());
        let algebra = PivotAlgebra { ranking: &ranking };
        let result = message_passing::run(&ctx, &algebra);
        let r_node = ctx
            .nodes()
            .iter()
            .find(|n| ctx.query().atom(n.atom_index).relation() == "R")
            .unwrap();
        let r11_idx = ctx
            .node(r_node.node_id)
            .tuples
            .iter()
            .position(|t| t.values() == [Value::from(1), Value::from(1)])
            .unwrap();
        let msg = &result.per_tuple[r_node.node_id][r11_idx];
        assert_eq!(msg.count, 9);
        let expected = [("x1", 1), ("x2", 1), ("x3", 4), ("x4", 6), ("x5", 8)];
        for (name, val) in expected {
            assert_eq!(
                msg.pivot.get(&Variable::new(name)),
                Some(&Value::from(val)),
                "variable {name}"
            );
        }
    }

    #[test]
    fn pivot_is_a_real_answer_and_a_c_pivot() {
        let inst = figure1_instance();
        let ranking = Ranking::sum(inst.query().variables());
        let pivot = select_pivot(&inst, &ranking).unwrap();
        assert_eq!(pivot.total_answers, 13);
        assert!(pivot.c > 0.0 && pivot.c <= 0.5);
        let (frac_le, frac_ge) = verify_pivot(&inst, &ranking, &pivot).unwrap();
        assert!(frac_le >= pivot.c, "{frac_le} < {}", pivot.c);
        assert!(frac_ge >= pivot.c, "{frac_ge} < {}", pivot.c);
    }

    #[test]
    fn pivot_quality_depends_only_on_tree_shape() {
        // Chain of 3 nodes: leaf 1, middle 1/2, root 1/4, final /2 → 1/8.
        let chain = JoinTree::from_edges(3, &[(0, 1), (1, 2)], 0);
        assert_eq!(pivot_quality(&chain), 0.125);
        // Root with two leaf children: (1/2)·(1/2) = 1/4, final /2 → 1/8.
        let star = JoinTree::from_edges(3, &[(0, 1), (0, 2)], 0);
        assert_eq!(pivot_quality(&star), 0.125);
        // Single node: 1/2.
        assert_eq!(pivot_quality(&JoinTree::single_node()), 0.5);
    }

    #[test]
    fn pivot_works_for_all_ranking_kinds() {
        let inst = figure1_instance();
        let all_vars = inst.query().variables();
        for ranking in [
            Ranking::sum(all_vars.clone()),
            Ranking::min(all_vars.clone()),
            Ranking::max(all_vars.clone()),
            Ranking::lex(vars(&["x3", "x5"])),
            Ranking::sum(vars(&["x2", "x4"])),
        ] {
            let pivot = select_pivot(&inst, &ranking).unwrap();
            let (frac_le, frac_ge) = verify_pivot(&inst, &ranking, &pivot).unwrap();
            assert!(
                frac_le >= pivot.c && frac_ge >= pivot.c,
                "ranking {ranking}: ({frac_le}, {frac_ge}) vs c = {}",
                pivot.c
            );
        }
    }

    #[test]
    fn empty_instances_are_rejected() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 5]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let ranking = Ranking::sum(inst.query().variables());
        assert!(matches!(
            select_pivot(&inst, &ranking).unwrap_err(),
            CoreError::NoAnswers
        ));
    }

    #[test]
    fn binary_join_pivot_is_near_the_median() {
        // A skewed binary join: R1(x1, x2) with x2 ∈ {0, 1}, R2(x2, x3) with many
        // tuples per group. The pivot must still leave ≥ c on each side.
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..40i64 {
            r1.push(vec![Value::from(i), Value::from(i % 2)]).unwrap();
            r2.push(vec![Value::from(i % 2), Value::from(1000 - 7 * i)])
                .unwrap();
        }
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let ranking = Ranking::sum(inst.query().variables());
        let pivot = select_pivot(&inst, &ranking).unwrap();
        let (le, ge) = verify_pivot(&inst, &ranking, &pivot).unwrap();
        assert!(le >= pivot.c && ge >= pivot.c);
        assert_eq!(pivot.total_answers, 800);
    }
}
