//! High-level entry points: pick the right algorithm for a ranking function.
//!
//! This is the API most users of the library want: hand over an instance, a ranking
//! function and a fraction `φ`, and get the quantile back. The solver routes the
//! request through the dichotomy:
//!
//! * MIN / MAX → exact pivoting with the [`MinMaxTrimmer`] (Theorem 5.3),
//! * LEX → exact pivoting with the [`LexTrimmer`] (Section 5.2),
//! * SUM → classify under Theorem 5.6; tractable cases use the exact
//!   [`AdjacentSumTrimmer`], intractable ones report the witness and point at the
//!   deterministic ε-approximation ([`approximate_sum_quantile`], Theorem 6.2) or the
//!   randomized sampling approximation (Section 3.1).

use crate::dichotomy::classify_partial_sum;
use crate::lossy_trim::LossySumTrimmer;
use crate::pivot::pivot_quality;
use crate::quantile::{quantile_by_pivoting, PivotingOptions, QuantileResult};
use crate::trim::{AdjacentSumTrimmer, LexTrimmer, MinMaxTrimmer, Trimmer};
use crate::{CoreError, Result};
use qjoin_query::{acyclicity, Instance};
use qjoin_ranking::{AggregateKind, Ranking};

/// How the per-trim loss budget of the deterministic SUM approximation is derived from
/// the requested overall error ε.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorBudget {
    /// Follow the worst-case analysis of Lemma 3.6: divide ε by twice the bound on the
    /// number of iterations (`2·⌈ℓ·log_{1/(1-c)} n⌉`). Guaranteed, but very
    /// conservative — sketches may degenerate to exact representations on small data.
    Guaranteed,
    /// Spend ε directly on every trim invocation. The accumulated rank error is then
    /// bounded by `2·ε·I/|Q(D)|` over `I` iterations in the worst case, which the
    /// experiments measure empirically; this is the practical default.
    Direct,
}

/// Selects the exact trimming subroutine for a (query, ranking) pair according to the
/// dichotomy of Theorem 5.6. Shared by the single-φ and batched solvers. (The engine's
/// prepared plans precompute the same mapping from their stored classification instead
/// of re-running it per request; the engine test suite asserts both paths return
/// identical answers.)
pub fn select_exact_trimmer(instance: &Instance, ranking: &Ranking) -> Result<Box<dyn Trimmer>> {
    Ok(match ranking.kind() {
        AggregateKind::Min | AggregateKind::Max => Box::new(MinMaxTrimmer),
        AggregateKind::Lex => Box::new(LexTrimmer),
        AggregateKind::Sum => {
            let classification = classify_partial_sum(instance.query(), ranking.weighted_vars());
            if !classification.is_tractable() {
                return Err(CoreError::IntractableSum(format!("{classification:?}")));
            }
            Box::new(AdjacentSumTrimmer)
        }
    })
}

/// Computes an **exact** `φ`-quantile, choosing the trimming subroutine according to
/// the ranking function and the dichotomy of Theorem 5.6.
pub fn exact_quantile(instance: &Instance, ranking: &Ranking, phi: f64) -> Result<QuantileResult> {
    exact_quantile_with_options(instance, ranking, phi, &PivotingOptions::default())
}

/// [`exact_quantile`] with explicit driver options.
///
/// The solve runs on the **encoded** execution layer by default (dictionary-coded
/// join keys and selection-vector views, see [`crate::encoded`]); instances the
/// encoded representation cannot express fall back to the row path. Both paths
/// return pointwise-identical answers.
pub fn exact_quantile_with_options(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    options: &PivotingOptions,
) -> Result<QuantileResult> {
    if acyclicity::gyo_join_tree(instance.query()).is_none() {
        return Err(CoreError::CyclicQuery(instance.query().to_string()));
    }
    // The §5.6 gate must run before solving on either path: even solves that never
    // trim (instances small enough to materialize directly) must refuse intractable
    // SUM rankings with a witness rather than quietly answering.
    let trimmer = select_exact_trimmer(instance, ranking)?;
    crate::encoded::or_row_fallback(
        crate::encoded::encode_instance(instance)
            .and_then(|enc| crate::encoded::exact_quantile_encoded(&enc, ranking, phi, options)),
        || quantile_by_pivoting(instance, ranking, phi, trimmer.as_ref(), options),
    )
}

/// [`exact_quantile`] forced onto the row (materialized-tuple) path. The reference
/// implementation the encoded default is property-tested against, and the baseline
/// the `exp_solve` experiment measures speedups over.
pub fn exact_quantile_via_rows(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
) -> Result<QuantileResult> {
    if acyclicity::gyo_join_tree(instance.query()).is_none() {
        return Err(CoreError::CyclicQuery(instance.query().to_string()));
    }
    let trimmer = select_exact_trimmer(instance, ranking)?;
    quantile_by_pivoting(
        instance,
        ranking,
        phi,
        trimmer.as_ref(),
        &PivotingOptions::default(),
    )
}

/// [`exact_quantile_batch`] forced onto the row path (see
/// [`exact_quantile_via_rows`]).
pub fn exact_quantile_batch_via_rows(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
) -> Result<Vec<QuantileResult>> {
    if acyclicity::gyo_join_tree(instance.query()).is_none() {
        return Err(CoreError::CyclicQuery(instance.query().to_string()));
    }
    let trimmer = select_exact_trimmer(instance, ranking)?;
    crate::batch::quantile_batch_by_pivoting(
        instance,
        ranking,
        phis,
        trimmer.as_ref(),
        &PivotingOptions::default(),
    )
}

/// Computes **exact** `φ`-quantiles for every fraction in `phis` with one shared
/// divide-and-conquer pass (see [`crate::batch`]); results are pointwise identical to
/// independent [`exact_quantile`] calls but cost one traversal plus `O(k)` leaf
/// resolutions instead of `k` full solves.
pub fn exact_quantile_batch(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
) -> Result<Vec<QuantileResult>> {
    exact_quantile_batch_with_options(instance, ranking, phis, &PivotingOptions::default())
}

/// [`exact_quantile_batch`] with explicit driver options. Runs on the encoded
/// execution layer by default, like [`exact_quantile_with_options`].
pub fn exact_quantile_batch_with_options(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
    options: &PivotingOptions,
) -> Result<Vec<QuantileResult>> {
    if acyclicity::gyo_join_tree(instance.query()).is_none() {
        return Err(CoreError::CyclicQuery(instance.query().to_string()));
    }
    let trimmer = select_exact_trimmer(instance, ranking)?;
    crate::encoded::or_row_fallback(
        crate::encoded::encode_instance(instance).and_then(|enc| {
            crate::encoded::exact_quantile_batch_encoded(&enc, ranking, phis, options)
        }),
        || {
            crate::batch::quantile_batch_by_pivoting(
                instance,
                ranking,
                phis,
                trimmer.as_ref(),
                options,
            )
        },
    )
}

/// Validates the approximate-SUM request and derives the per-trim loss budget
/// from the requested overall ε. Shared by the encoded and row entry points so
/// both paths sketch with literally the same ε′.
fn per_trim_epsilon_for(
    instance: &Instance,
    ranking: &Ranking,
    epsilon: f64,
    budget: ErrorBudget,
) -> Result<f64> {
    if ranking.kind() != AggregateKind::Sum {
        return Err(CoreError::UnsupportedRanking(
            "the deterministic approximation targets SUM ranking functions".to_string(),
        ));
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CoreError::InvalidEpsilon(epsilon));
    }
    if acyclicity::gyo_join_tree(instance.query()).is_none() {
        return Err(CoreError::CyclicQuery(instance.query().to_string()));
    }
    Ok(match budget {
        ErrorBudget::Direct => epsilon,
        ErrorBudget::Guaranteed => {
            let n = instance.database_size().max(2) as f64;
            let ell = instance.query().num_atoms() as f64;
            let tree = acyclicity::gyo_join_tree(instance.query()).expect("checked acyclic above");
            let c = pivot_quality(&tree).clamp(1e-6, 0.5);
            let iterations = (ell * n.ln() / (1.0 / (1.0 - c)).ln()).ceil().max(1.0);
            (epsilon / (2.0 * iterations)).max(1e-6)
        }
    })
}

/// Computes a deterministic `(φ ± ε)`-approximate quantile for SUM ranking functions
/// on arbitrary acyclic queries (Theorem 6.2), including the ones that are intractable
/// exactly.
///
/// Like the exact solvers, the approximation runs on the **encoded** execution
/// layer by default (ε-sketches over per-code weight tables, trim output as
/// selection-vector views); instances the encoded representation cannot express
/// fall back to the row path. Both paths return pointwise-identical answers.
pub fn approximate_sum_quantile(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    epsilon: f64,
    budget: ErrorBudget,
) -> Result<QuantileResult> {
    let per_trim_epsilon = per_trim_epsilon_for(instance, ranking, epsilon, budget)?;
    let options = PivotingOptions::default();
    crate::encoded::or_row_fallback(
        crate::encoded::encode_instance(instance).and_then(|enc| {
            crate::encoded::approximate_sum_quantile_encoded(
                &enc,
                ranking,
                phi,
                per_trim_epsilon,
                &options,
            )
        }),
        || {
            let trimmer = LossySumTrimmer::new(per_trim_epsilon);
            quantile_by_pivoting(instance, ranking, phi, &trimmer, &options)
        },
    )
}

/// [`approximate_sum_quantile`] forced onto the row (materialized-tuple) path.
/// The reference implementation the encoded default is property-tested against,
/// and the baseline `exp_approx_sum` / `exp_scaling` measure speedups over.
pub fn approximate_sum_quantile_via_rows(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    epsilon: f64,
    budget: ErrorBudget,
) -> Result<QuantileResult> {
    let per_trim_epsilon = per_trim_epsilon_for(instance, ranking, epsilon, budget)?;
    let trimmer = LossySumTrimmer::new(per_trim_epsilon);
    quantile_by_pivoting(
        instance,
        ranking,
        phi,
        &trimmer,
        &PivotingOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::rank_of_weight;
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::{path_query, triangle_query};
    use qjoin_query::variable::vars;

    fn three_path_instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 0..n {
            r1.push(vec![Value::from((7 * i) % 43), Value::from(i % 3)])
                .unwrap();
            r2.push(vec![Value::from(i % 3), Value::from((5 * i) % 37)])
                .unwrap();
            r3.push(vec![Value::from((5 * i) % 37), Value::from((3 * i) % 31)])
                .unwrap();
        }
        Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn exact_solver_routes_by_ranking_kind() {
        let inst = three_path_instance(15);
        for ranking in [
            Ranking::max(inst.query().variables()),
            Ranking::min(vars(&["x2", "x3"])),
            Ranking::lex(vars(&["x1", "x4"])),
            Ranking::sum(vars(&["x1", "x2", "x3"])),
        ] {
            let result = exact_quantile(&inst, &ranking, 0.5).unwrap();
            let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
            assert!(
                result.target_index >= below && result.target_index < below + equal,
                "ranking {ranking}"
            );
        }
    }

    #[test]
    fn exact_solver_rejects_intractable_sums_with_a_witness() {
        let inst = three_path_instance(10);
        let ranking = Ranking::sum(inst.query().variables());
        let err = exact_quantile(&inst, &ranking, 0.5).unwrap_err();
        assert!(matches!(err, CoreError::IntractableSum(_)));
    }

    #[test]
    fn approximate_solver_handles_intractable_sums() {
        let inst = three_path_instance(12);
        let ranking = Ranking::sum(inst.query().variables());
        for phi in [0.25, 0.5, 0.75] {
            let result =
                approximate_sum_quantile(&inst, &ranking, phi, 0.1, ErrorBudget::Direct).unwrap();
            let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
            let total = result.total_answers as f64;
            // Accumulated error over O(log) iterations with ε = 0.1: allow a generous
            // rank band around φ and verify the answer's window intersects it.
            let slack = (0.1 * 2.0 * (result.iterations.max(1) as f64) * total).max(1.0);
            let lo = (result.target_index as f64) - slack;
            let hi = (result.target_index as f64) + slack;
            assert!(
                (below as f64) <= hi && (below + equal) as f64 >= lo,
                "phi {phi}: window [{below}, {}) vs [{lo}, {hi}]",
                below + equal
            );
        }
    }

    #[test]
    fn guaranteed_budget_matches_exact_on_small_instances() {
        // With the conservative budget the sketches are exact on small data, so the
        // approximation returns a true quantile.
        let inst = three_path_instance(6);
        let ranking = Ranking::sum(inst.query().variables());
        let result =
            approximate_sum_quantile(&inst, &ranking, 0.5, 0.2, ErrorBudget::Guaranteed).unwrap();
        let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
        assert!(result.target_index >= below && result.target_index < below + equal);
    }

    #[test]
    fn cyclic_queries_are_rejected_by_both_solvers() {
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.add_relation(Relation::from_rows(name, &[&[1, 1]]).unwrap())
                .unwrap();
        }
        let inst = Instance::new(triangle_query(), db).unwrap();
        let ranking = Ranking::sum(inst.query().variables());
        assert!(matches!(
            exact_quantile(&inst, &ranking, 0.5).unwrap_err(),
            CoreError::CyclicQuery(_)
        ));
        assert!(matches!(
            approximate_sum_quantile(&inst, &ranking, 0.5, 0.1, ErrorBudget::Direct).unwrap_err(),
            CoreError::CyclicQuery(_)
        ));
    }

    #[test]
    fn approximate_solver_validates_parameters() {
        let inst = three_path_instance(5);
        let sum = Ranking::sum(inst.query().variables());
        assert!(matches!(
            approximate_sum_quantile(&inst, &sum, 0.5, 0.0, ErrorBudget::Direct).unwrap_err(),
            CoreError::InvalidEpsilon(_)
        ));
        let max = Ranking::max(inst.query().variables());
        assert!(matches!(
            approximate_sum_quantile(&inst, &max, 0.5, 0.1, ErrorBudget::Direct).unwrap_err(),
            CoreError::UnsupportedRanking(_)
        ));
    }
}
