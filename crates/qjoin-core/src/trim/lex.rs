//! Exact trimming for lexicographic orders (Section 5.2, Lemma 5.4).
//!
//! A lexicographic inequality `(w_{x_1}, ..., w_{x_r}) <_LEX (λ_1, ..., λ_r)` holds iff
//! for some position `i` the first `i-1` components are equal to the bound and the
//! `i`-th is strictly smaller. These `r` cases are disjoint and each is a conjunction
//! of unary predicates, so the partition-union construction applies verbatim.

use super::{
    handle_trivial, partition_union_trim, TrimPlan, Trimmer, UnaryConjunction, UnaryWeightPred,
};
use crate::{CoreError, Result};
use qjoin_query::Instance;
use qjoin_ranking::{AggregateKind, CmpOp, RankPredicate, Ranking};

/// The exact trimmer for LEX ranking functions.
#[derive(Clone, Copy, Debug, Default)]
pub struct LexTrimmer;

impl Trimmer for LexTrimmer {
    fn trim(
        &self,
        instance: &Instance,
        ranking: &Ranking,
        predicate: &RankPredicate,
    ) -> Result<Instance> {
        if let Some(result) = handle_trivial(instance, predicate) {
            return result;
        }
        match lex_partition_plan(ranking, predicate)? {
            TrimPlan::KeepAll => Ok(instance.clone()),
            TrimPlan::DropAll => super::empty_copy(instance),
            TrimPlan::Partitions(partitions) => {
                partition_union_trim(instance, ranking, &partitions)
            }
        }
    }

    fn name(&self) -> &'static str {
        "lex"
    }
}

/// Reduces a non-degenerate LEX predicate to its disjoint unary partitions
/// (one per position at which the comparison can first differ, Lemma 5.4).
/// Shared by [`LexTrimmer`] and the encoded trim layer.
pub(crate) fn lex_partition_plan(ranking: &Ranking, predicate: &RankPredicate) -> Result<TrimPlan> {
    if ranking.kind() != AggregateKind::Lex {
        return Err(CoreError::UnsupportedRanking(format!(
            "LexTrimmer cannot trim {:?} predicates",
            ranking.kind()
        )));
    }
    let bound = predicate
        .finite_bound()
        .and_then(|w| w.as_vec())
        .ok_or_else(|| {
            CoreError::UnsupportedPredicate("LEX trimming requires a vector bound".to_string())
        })?;
    let weighted = ranking.weighted_vars();
    if bound.len() != weighted.len() {
        return Err(CoreError::UnsupportedPredicate(format!(
            "LEX bound has {} components but the ranking has {} variables",
            bound.len(),
            weighted.len()
        )));
    }
    if weighted.is_empty() {
        // Zero-length tuples are all equal; a strict comparison never holds.
        return Ok(TrimPlan::DropAll);
    }

    let partitions: Vec<UnaryConjunction> = (0..weighted.len())
        .map(|i| {
            let mut conj: UnaryConjunction = weighted[..i]
                .iter()
                .zip(bound[..i].iter())
                .map(|(v, &b)| (v.clone(), UnaryWeightPred::Eq(b)))
                .collect();
            let last = match predicate.op {
                CmpOp::Lt => UnaryWeightPred::Lt(bound[i]),
                CmpOp::Gt => UnaryWeightPred::Gt(bound[i]),
            };
            conj.push((weighted[i].clone(), last));
            conj
        })
        .collect();
    Ok(TrimPlan::Partitions(partitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation};
    use qjoin_exec::count::count_answers;
    use qjoin_exec::yannakakis::materialize;
    use qjoin_query::query::path_query;
    use qjoin_query::variable::vars;
    use qjoin_ranking::Weight;

    fn three_path_instance() -> Instance {
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[2, 1], &[3, 2], &[1, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 4], &[1, 5], &[2, 4], &[2, 6]]).unwrap();
        let r3 = Relation::from_rows("R3", &[&[4, 2], &[4, 7], &[5, 1], &[6, 3]]).unwrap();
        Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap()
    }

    fn brute_force_count(instance: &Instance, ranking: &Ranking, pred: &RankPredicate) -> u128 {
        let answers = materialize(instance).unwrap();
        let schema = answers.variables().to_vec();
        answers
            .rows()
            .iter()
            .filter(|row| pred.satisfied_by(ranking, &ranking.weight_of_row(&schema, row)))
            .count() as u128
    }

    #[test]
    fn lex_trimming_matches_brute_force_on_both_directions() {
        let inst = three_path_instance();
        let ranking = Ranking::lex(vars(&["x1", "x3", "x4"]));
        for bound in [
            vec![1.0, 4.0, 2.0],
            vec![2.0, 4.0, 7.0],
            vec![2.0, 6.0, 3.0],
            vec![0.0, 0.0, 0.0],
            vec![9.0, 9.0, 9.0],
        ] {
            for op in [CmpOp::Lt, CmpOp::Gt] {
                let pred = RankPredicate {
                    op,
                    bound: Weight::Vec(bound.clone()).into(),
                };
                let trimmed = LexTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound:?}, op {op:?}"
                );
                assert!(qjoin_query::acyclicity::is_acyclic(trimmed.query()));
            }
        }
    }

    #[test]
    fn partitioning_is_lossless_around_a_concrete_answer() {
        // For any answer weight w, the three sets {<w}, {=w}, {>w} partition Q(D).
        let inst = three_path_instance();
        let ranking = Ranking::lex(vars(&["x2", "x4"]));
        let answers = materialize(&inst).unwrap();
        let schema = answers.variables().to_vec();
        let w = ranking.weight_of_row(&schema, &answers.rows()[answers.len() / 2]);
        let lt = LexTrimmer
            .trim(&inst, &ranking, &RankPredicate::less_than(w.clone()))
            .unwrap();
        let gt = LexTrimmer
            .trim(&inst, &ranking, &RankPredicate::greater_than(w.clone()))
            .unwrap();
        let n_lt = count_answers(&lt).unwrap();
        let n_gt = count_answers(&gt).unwrap();
        let n_eq = answers
            .rows()
            .iter()
            .filter(|row| ranking.weight_of_row(&schema, row) == w)
            .count() as u128;
        assert_eq!(n_lt + n_gt + n_eq, answers.len() as u128);
        assert!(n_eq >= 1);
    }

    #[test]
    fn lex_trimming_on_single_variable_behaves_like_a_filter() {
        let inst = three_path_instance();
        let ranking = Ranking::lex(vars(&["x1"]));
        let pred = RankPredicate::less_than(Weight::Vec(vec![2.0]));
        let trimmed = LexTrimmer.trim(&inst, &ranking, &pred).unwrap();
        assert_eq!(
            count_answers(&trimmed).unwrap(),
            brute_force_count(&inst, &ranking, &pred)
        );
        // A single LEX component yields a single partition: the query is unchanged.
        assert_eq!(trimmed.query(), inst.query());
    }

    #[test]
    fn mismatched_bound_length_is_rejected() {
        let inst = three_path_instance();
        let ranking = Ranking::lex(vars(&["x1", "x2"]));
        let pred = RankPredicate::less_than(Weight::Vec(vec![1.0]));
        assert!(matches!(
            LexTrimmer.trim(&inst, &ranking, &pred).unwrap_err(),
            CoreError::UnsupportedPredicate(_)
        ));
    }

    #[test]
    fn non_lex_rankings_are_rejected() {
        let inst = three_path_instance();
        let ranking = Ranking::sum(vars(&["x1"]));
        let pred = RankPredicate::less_than(Weight::num(1.0));
        assert!(matches!(
            LexTrimmer.trim(&inst, &ranking, &pred).unwrap_err(),
            CoreError::UnsupportedRanking(_)
        ));
    }

    #[test]
    fn scalar_bounds_are_rejected_for_lex() {
        let inst = three_path_instance();
        let ranking = Ranking::lex(vars(&["x1"]));
        let pred = RankPredicate::less_than(Weight::num(1.0));
        assert!(matches!(
            LexTrimmer.trim(&inst, &ranking, &pred).unwrap_err(),
            CoreError::UnsupportedPredicate(_)
        ));
    }
}

#[cfg(test)]
mod quantile_preservation_tests {
    use super::*;
    use crate::trim::test_support::{assert_exact_partition_at_phi, small_random_instance};
    use qjoin_query::Variable;

    /// LEX trimming at the φ-quantile weight of small random acyclic instances
    /// must be exact and must preserve the quantile answer.
    #[test]
    fn lex_trim_preserves_phi_quantile_on_random_instances() {
        let mut checked = 0usize;
        for seed in 0..12u64 {
            for atoms in 2..=3usize {
                let instance = small_random_instance(seed, atoms);
                let lex_vars: Vec<Variable> =
                    instance.query().variables().into_iter().take(2).collect();
                if lex_vars.is_empty() {
                    continue;
                }
                let ranking = Ranking::lex(lex_vars);
                for phi in [0.1, 0.5, 0.9] {
                    if assert_exact_partition_at_phi(&LexTrimmer, &instance, &ranking, phi) {
                        checked += 1;
                    }
                }
            }
        }
        assert!(
            checked >= 20,
            "too few non-empty cases exercised: {checked}"
        );
    }
}
