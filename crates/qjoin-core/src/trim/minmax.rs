//! Exact trimming for MIN and MAX (Section 5.1, Lemma 5.2, Algorithm 3).
//!
//! The key observation is that MIN/MAX inequalities decompose into unary predicates:
//!
//! * `max{U_w} < λ` holds iff every weighted variable's weight is `< λ` — a pure
//!   filter;
//! * `max{U_w} > λ` holds iff *some* weighted variable's weight is `> λ`; the
//!   satisfying assignments split into the disjoint partitions
//!   `P_i = {w_{x_1} ≤ λ, ..., w_{x_{i-1}} ≤ λ, w_{x_i} > λ}` (Figure 3), each a
//!   conjunction of unary predicates.
//!
//! MIN is symmetric. Both constructions run in linear time and keep the query acyclic,
//! so combined with the generic pivot they yield Theorem 5.3.

use super::{
    handle_trivial, partition_union_trim, TrimPlan, Trimmer, UnaryConjunction, UnaryWeightPred,
};
use crate::{CoreError, Result};
use qjoin_query::Instance;
use qjoin_ranking::{AggregateKind, CmpOp, RankPredicate, Ranking};

/// The exact trimmer for the MIN and MAX ranking functions.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMaxTrimmer;

impl Trimmer for MinMaxTrimmer {
    fn trim(
        &self,
        instance: &Instance,
        ranking: &Ranking,
        predicate: &RankPredicate,
    ) -> Result<Instance> {
        if let Some(result) = handle_trivial(instance, predicate) {
            return result;
        }
        match minmax_partition_plan(ranking, predicate)? {
            TrimPlan::KeepAll => Ok(instance.clone()),
            TrimPlan::DropAll => super::empty_copy(instance),
            TrimPlan::Partitions(partitions) => {
                partition_union_trim(instance, ranking, &partitions)
            }
        }
    }

    fn name(&self) -> &'static str {
        "minmax"
    }
}

/// Reduces a non-degenerate MIN/MAX predicate to its disjoint unary partitions
/// (Lemma 5.2 / Figure 3). Shared by [`MinMaxTrimmer`] and the encoded trim layer.
pub(crate) fn minmax_partition_plan(
    ranking: &Ranking,
    predicate: &RankPredicate,
) -> Result<TrimPlan> {
    let bound = predicate
        .finite_bound()
        .and_then(|w| w.as_num())
        .ok_or_else(|| {
            CoreError::UnsupportedPredicate("MIN/MAX trimming requires a scalar bound".to_string())
        })?;
    let weighted: Vec<_> = ranking.weighted_vars().to_vec();
    if weighted.is_empty() {
        // With no weighted variables every answer has the identity weight; the
        // strict predicate either keeps everything or nothing.
        let identity = ranking.identity();
        return Ok(if predicate.satisfied_by(ranking, &identity) {
            TrimPlan::KeepAll
        } else {
            TrimPlan::DropAll
        });
    }

    let partitions: Vec<UnaryConjunction> = match (ranking.kind(), predicate.op) {
        // max < λ ⇔ all weights < λ.
        (AggregateKind::Max, CmpOp::Lt) => vec![weighted
            .iter()
            .map(|v| (v.clone(), UnaryWeightPred::Lt(bound)))
            .collect()],
        // min > λ ⇔ all weights > λ.
        (AggregateKind::Min, CmpOp::Gt) => vec![weighted
            .iter()
            .map(|v| (v.clone(), UnaryWeightPred::Gt(bound)))
            .collect()],
        // max > λ ⇔ some weight > λ: partition by the first variable exceeding λ.
        (AggregateKind::Max, CmpOp::Gt) => (0..weighted.len())
            .map(|i| {
                let mut conj: UnaryConjunction = weighted[..i]
                    .iter()
                    .map(|v| (v.clone(), UnaryWeightPred::Le(bound)))
                    .collect();
                conj.push((weighted[i].clone(), UnaryWeightPred::Gt(bound)));
                conj
            })
            .collect(),
        // min < λ ⇔ some weight < λ: partition by the first variable below λ.
        (AggregateKind::Min, CmpOp::Lt) => (0..weighted.len())
            .map(|i| {
                let mut conj: UnaryConjunction = weighted[..i]
                    .iter()
                    .map(|v| (v.clone(), UnaryWeightPred::Ge(bound)))
                    .collect();
                conj.push((weighted[i].clone(), UnaryWeightPred::Lt(bound)));
                conj
            })
            .collect(),
        (other, _) => {
            return Err(CoreError::UnsupportedRanking(format!(
                "MinMaxTrimmer cannot trim {other:?} predicates"
            )))
        }
    };
    Ok(TrimPlan::Partitions(partitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation};
    use qjoin_exec::count::count_answers;
    use qjoin_exec::yannakakis::materialize;
    use qjoin_query::query::path_query;
    use qjoin_query::variable::vars;
    use qjoin_query::JoinQuery;
    use qjoin_ranking::Weight;

    /// Example 5.1 of the paper: three unary relations and MAX over all of them.
    fn example_5_1_instance() -> Instance {
        let q = JoinQuery::new(vec![
            qjoin_query::Atom::from_names("A", &["x1"]),
            qjoin_query::Atom::from_names("B", &["x2"]),
            qjoin_query::Atom::from_names("C", &["x3"]),
        ]);
        let a = Relation::from_rows("A", &[&[2], &[8], &[12]]).unwrap();
        let b = Relation::from_rows("B", &[&[5], &[11]]).unwrap();
        let c = Relation::from_rows("C", &[&[1], &[9], &[15]]).unwrap();
        Instance::new(q, Database::from_relations([a, b, c]).unwrap()).unwrap()
    }

    /// Counts answers of `instance` whose ranking weight satisfies `pred` by brute
    /// force.
    fn brute_force_count(instance: &Instance, ranking: &Ranking, pred: &RankPredicate) -> u128 {
        let answers = materialize(instance).unwrap();
        let schema = answers.variables().to_vec();
        answers
            .rows()
            .iter()
            .filter(|row| pred.satisfied_by(ranking, &ranking.weight_of_row(&schema, row)))
            .count() as u128
    }

    #[test]
    fn example_5_1_max_less_than_ten() {
        let inst = example_5_1_instance();
        let ranking = Ranking::max(vars(&["x1", "x2", "x3"]));
        let pred = RankPredicate::less_than(Weight::num(10.0));
        let trimmed = MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap();
        // max < 10 keeps A ∈ {2,8}, B ∈ {5}, C ∈ {1,9}: 2·1·2 = 4 answers.
        assert_eq!(count_answers(&trimmed).unwrap(), 4);
        assert_eq!(
            count_answers(&trimmed).unwrap(),
            brute_force_count(&inst, &ranking, &pred)
        );
        // The less-than case is a pure filter: no new variable.
        assert_eq!(trimmed.query(), inst.query());
    }

    #[test]
    fn example_5_1_max_greater_than_ten() {
        let inst = example_5_1_instance();
        let ranking = Ranking::max(vars(&["x1", "x2", "x3"]));
        let pred = RankPredicate::greater_than(Weight::num(10.0));
        let trimmed = MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap();
        // Total answers 3·2·3 = 18; those with max < 10 are 4; max = 10 impossible.
        assert_eq!(count_answers(&trimmed).unwrap(), 14);
        assert_eq!(
            count_answers(&trimmed).unwrap(),
            brute_force_count(&inst, &ranking, &pred)
        );
        // The greater-than case introduces the partition variable on every atom.
        assert!(trimmed.query().atoms().iter().all(|a| a.arity() == 2));
        assert!(qjoin_query::acyclicity::is_acyclic(trimmed.query()));
    }

    #[test]
    fn min_trimmings_are_symmetric() {
        let inst = example_5_1_instance();
        let ranking = Ranking::min(vars(&["x1", "x2", "x3"]));
        for bound in [1.0, 5.0, 9.0, 100.0] {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound}, pred {pred}"
                );
                assert!(qjoin_query::acyclicity::is_acyclic(trimmed.query()));
            }
        }
    }

    #[test]
    fn max_trimming_on_a_join_with_shared_variables() {
        // 3-path query, MAX over {x1, x3}: weighted variables in non-adjacent atoms.
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[12, 1], &[3, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 4], &[2, 4], &[2, 6]]).unwrap();
        let r3 = Relation::from_rows("R3", &[&[4, 2], &[4, 20], &[6, 7]]).unwrap();
        let inst = Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap();
        let ranking = Ranking::max(vars(&["x1", "x4"]));
        for bound in [2.0, 5.0, 7.0, 12.0, 25.0] {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound}, pred {pred}"
                );
            }
        }
    }

    #[test]
    fn trimmed_answers_project_back_to_original_answers() {
        let inst = example_5_1_instance();
        let ranking = Ranking::max(vars(&["x1", "x2", "x3"]));
        let pred = RankPredicate::greater_than(Weight::num(10.0));
        let trimmed = MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap();
        let original_rows: std::collections::HashSet<Vec<qjoin_data::Value>> =
            materialize(&inst).unwrap().rows().iter().cloned().collect();
        let original_vars = inst.query().variables();
        let trimmed_answers = materialize(&trimmed).unwrap();
        for asg in trimmed_answers.iter_assignments() {
            let projected: Vec<qjoin_data::Value> = original_vars
                .iter()
                .map(|v| asg.get(v).unwrap().clone())
                .collect();
            assert!(original_rows.contains(&projected));
            assert!(pred.satisfied_by(&ranking, &ranking.weight_of(&asg.project(&original_vars))));
        }
    }

    #[test]
    fn wrong_ranking_kind_is_rejected() {
        let inst = example_5_1_instance();
        let ranking = Ranking::sum(vars(&["x1"]));
        let pred = RankPredicate::less_than(Weight::num(1.0));
        assert!(matches!(
            MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap_err(),
            CoreError::UnsupportedRanking(_)
        ));
    }

    #[test]
    fn vector_bounds_are_rejected() {
        let inst = example_5_1_instance();
        let ranking = Ranking::max(vars(&["x1"]));
        let pred = RankPredicate::less_than(Weight::Vec(vec![1.0]));
        assert!(matches!(
            MinMaxTrimmer.trim(&inst, &ranking, &pred).unwrap_err(),
            CoreError::UnsupportedPredicate(_)
        ));
    }

    #[test]
    fn empty_weighted_variable_set_degenerates() {
        let inst = example_5_1_instance();
        let ranking = Ranking::max(vec![]);
        // identity of MAX is -∞, so "< 0" keeps everything, "> 0" keeps nothing.
        let keep = MinMaxTrimmer
            .trim(&inst, &ranking, &RankPredicate::less_than(Weight::num(0.0)))
            .unwrap();
        assert_eq!(count_answers(&keep).unwrap(), count_answers(&inst).unwrap());
        let drop = MinMaxTrimmer
            .trim(
                &inst,
                &ranking,
                &RankPredicate::greater_than(Weight::num(0.0)),
            )
            .unwrap();
        assert_eq!(count_answers(&drop).unwrap(), 0);
    }
}

#[cfg(test)]
mod quantile_preservation_tests {
    use super::*;
    use crate::trim::test_support::{assert_exact_partition_at_phi, small_random_instance};

    /// MIN/MAX trimming at the φ-quantile weight of small random acyclic
    /// instances must be exact and must preserve the quantile answer.
    #[test]
    fn minmax_trim_preserves_phi_quantile_on_random_instances() {
        let mut checked = 0usize;
        for seed in 0..12u64 {
            for atoms in 1..=3usize {
                let instance = small_random_instance(seed, atoms);
                let vars = instance.query().variables();
                for ranking in [Ranking::min(vars.clone()), Ranking::max(vars.clone())] {
                    for phi in [0.1, 0.5, 0.9] {
                        if assert_exact_partition_at_phi(&MinMaxTrimmer, &instance, &ranking, phi) {
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(
            checked >= 40,
            "too few non-empty cases exercised: {checked}"
        );
    }
}
