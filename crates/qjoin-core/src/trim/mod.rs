//! Trimming subroutines (Section 5 and Definition 3.2).
//!
//! A *trimming* of a predicate `P` from a query `Q` rewrites `(Q, D)` into `(Q', D')`
//! such that the answers of `Q'(D')` are in bijection with the answers of `Q(D)` that
//! satisfy `P`, with the bijection simply dropping the freshly introduced variables.
//! The quantile driver uses trimmings to materialize the "less-than" and
//! "greater-than" partitions around a pivot weight without listing them.
//!
//! This module defines the [`Trimmer`] trait and the shared *partition-union*
//! construction (Algorithm 3's skeleton): express the predicate as a constant number
//! of disjoint conjunctions of unary predicates, build one filtered database copy per
//! conjunction, tag every copy with a partition-identifier column `x_p`, and union the
//! copies. Concrete trimmers for MIN/MAX, LEX, and SUM live in the submodules.

pub(crate) mod lex;
pub(crate) mod minmax;
pub(crate) mod sum;

pub use lex::LexTrimmer;
pub use minmax::MinMaxTrimmer;
pub use sum::{AdjacentSumTrimmer, SingleAtomSumTrimmer};

use crate::Result;
use qjoin_data::{Database, Relation, Value};
use qjoin_query::{self_join, Instance, Variable};
use qjoin_ranking::{RankPredicate, Ranking};

/// A trimming subroutine for one family of ranking predicates.
///
/// Implementations must preserve acyclicity and must return an instance whose answers
/// (projected onto the original query's variables) are answers of the original
/// instance satisfying the predicate. *Exact* trimmers retain all such answers;
/// *lossy* trimmers (Definition 3.5) may drop up to an `ε` fraction of them.
///
/// `Sync` because the solve driver rebuilds the two sides of a partition through
/// the same trimmer concurrently (`qjoin_par::par_join`); all implementations are
/// stateless.
pub trait Trimmer: Sync {
    /// Rewrites the instance so that its answers are (a 1-ε fraction of) the original
    /// answers satisfying `predicate`.
    fn trim(
        &self,
        instance: &Instance,
        ranking: &Ranking,
        predicate: &RankPredicate,
    ) -> Result<Instance>;

    /// True if this trimmer may lose a bounded fraction of qualifying answers.
    fn is_lossy(&self) -> bool {
        false
    }

    /// A short human-readable name for logs and experiment reports.
    fn name(&self) -> &'static str;
}

/// Handles the two degenerate predicates every trimmer shares: trivially-true
/// predicates return the instance unchanged, unsatisfiable ones return an empty
/// instance. Returns `None` when the predicate is non-degenerate and the trimmer must
/// do real work.
pub(crate) fn handle_trivial(
    instance: &Instance,
    predicate: &RankPredicate,
) -> Option<Result<Instance>> {
    if predicate.is_trivial() {
        return Some(Ok(instance.clone()));
    }
    if predicate.is_unsatisfiable() {
        return Some(empty_copy(instance));
    }
    None
}

/// An instance with the same query whose answer set is empty (every relation cleared).
pub(crate) fn empty_copy(instance: &Instance) -> Result<Instance> {
    let mut db = Database::new();
    for rel in instance.database().relations() {
        db.add_relation(Relation::new(rel.name(), rel.arity()))?;
    }
    Ok(Instance::new(instance.query().clone(), db)?)
}

/// A unary predicate on the *weight* of a single variable, used as a building block of
/// the partition-union construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnaryWeightPred {
    /// `w_x(x) < λ`
    Lt(f64),
    /// `w_x(x) ≤ λ`
    Le(f64),
    /// `w_x(x) > λ`
    Gt(f64),
    /// `w_x(x) ≥ λ`
    Ge(f64),
    /// `w_x(x) = λ`
    Eq(f64),
}

impl UnaryWeightPred {
    /// Evaluates the predicate on a concrete weight.
    pub fn holds(&self, w: f64) -> bool {
        match *self {
            UnaryWeightPred::Lt(b) => w < b,
            UnaryWeightPred::Le(b) => w <= b,
            UnaryWeightPred::Gt(b) => w > b,
            UnaryWeightPred::Ge(b) => w >= b,
            UnaryWeightPred::Eq(b) => w == b,
        }
    }
}

/// One partition of the partition-union construction: a conjunction of unary weight
/// predicates over distinct variables.
pub type UnaryConjunction = Vec<(Variable, UnaryWeightPred)>;

/// The outcome of reducing a (non-degenerate) ranking predicate to unary-predicate
/// partitions. Shared by the row trimmers and the encoded trim layer, so both paths
/// partition answers identically by construction.
#[derive(Clone, Debug)]
pub(crate) enum TrimPlan {
    /// The predicate holds for every answer (degenerate, e.g. MAX over no weighted
    /// variables compared against a bound above the identity).
    KeepAll,
    /// The predicate holds for no answer.
    DropAll,
    /// The disjoint unary-conjunction partitions whose union is the predicate.
    Partitions(Vec<UnaryConjunction>),
}

/// The partition-union trimming construction shared by the MIN/MAX and LEX trimmers
/// (Algorithm 3 and Lemma 5.4).
///
/// `partitions` must describe **disjoint** conditions whose union is exactly the
/// predicate being trimmed. The construction:
///
/// 1. eliminates self-joins, so that filtering a relation affects exactly one atom;
/// 2. for each partition, copies the database and filters every relation by the unary
///    predicates applying to its atom's variables;
/// 3. if there is more than one partition, appends a fresh partition-identifier
///    variable `x_p` to every atom and a matching constant column to every relation
///    copy, then unions the copies.
///
/// With a single partition no new variable is needed and the query is returned
/// unchanged (pure filtering). Acyclicity is preserved in both cases: adding the same
/// variable to every hyperedge keeps every join tree valid.
pub(crate) fn partition_union_trim(
    instance: &Instance,
    ranking: &Ranking,
    partitions: &[UnaryConjunction],
) -> Result<Instance> {
    if partitions.is_empty() {
        return empty_copy(instance);
    }
    let instance = self_join::eliminate_self_joins(instance)?;
    let query = instance.query().clone();

    if partitions.len() == 1 {
        let db = filtered_database(&instance, ranking, &partitions[0])?;
        return Ok(Instance::new(query, db)?);
    }

    let query_vars = query.variable_set();
    let partition_var = Variable::fresh("x_p", query_vars.iter());
    let new_query = query.with_variable_everywhere(&partition_var);

    // Filter once per partition (untouched relations are shared, not copied), then
    // assemble each union relation in a single pre-sized pass: every tuple is built
    // exactly once, directly in its final storage, with its partition tag appended.
    let filtered: Vec<Database> = partitions
        .iter()
        .map(|conjunction| filtered_database(&instance, ranking, conjunction))
        .collect::<Result<_>>()?;
    let mut union_db = Database::new();
    for atom in query.atoms() {
        let base = instance.database().relation(atom.relation())?;
        let total: usize = filtered
            .iter()
            .map(|db| db.relation(base.name()).expect("same schema").len())
            .sum();
        let mut tuples = Vec::with_capacity(total);
        for (partition_idx, db) in filtered.iter().enumerate() {
            let tag = Value::from(partition_idx as i64);
            tuples.extend(
                db.relation(base.name())
                    .expect("same schema")
                    .iter()
                    .map(|t| t.extended(tag.clone())),
            );
        }
        let mut union_rel = Relation::new(base.name(), base.arity() + 1);
        union_rel.set_tuples(tuples)?;
        union_db.add_relation(union_rel)?;
    }
    Ok(Instance::new(new_query, union_db)?)
}

/// A derived database in which every relation is filtered by the unary predicates
/// that mention variables of its atom. A variable occurring in several atoms is
/// filtered in each of them, which is sound (the predicate is a property of the
/// answer's value for that variable) and keeps the copies small.
///
/// Relations whose atom mentions no predicate variable are **shared by handle** with
/// the input database (no tuple copy), so each §3 trimming round materializes only
/// the relations the predicate actually touches.
fn filtered_database(
    instance: &Instance,
    ranking: &Ranking,
    conjunction: &UnaryConjunction,
) -> Result<Database> {
    let query = instance.query();
    let mut db = Database::new();
    for (atom_idx, atom) in query.atoms().iter().enumerate() {
        let rel = instance.relation_of_atom(atom_idx);
        let relevant: Vec<(usize, UnaryWeightPred, &Variable)> = conjunction
            .iter()
            .filter(|(var, _)| atom.contains(var))
            .map(|(var, pred)| (atom.positions_of(var)[0], *pred, var))
            .collect();
        let filtered = if relevant.is_empty() {
            rel.clone()
        } else {
            rel.filtered(|t| {
                relevant
                    .iter()
                    .all(|(pos, pred, var)| pred.holds(ranking.var_weight(var, &t[*pos])))
            })
        };
        db.add_relation(filtered)?;
    }
    Ok(db)
}

/// Shared harness for the per-trimmer quantile-preservation tests: materializes
/// both the original and the trimmed instances and checks the bijection of
/// Definition 3.2 at the weight level, plus preservation of the φ-quantile.
#[cfg(test)]
pub(crate) mod test_support {
    use super::Trimmer;
    use crate::baseline::{quantile_by_materialization, BaselineStrategy};
    use qjoin_exec::yannakakis::materialize;
    use qjoin_query::Instance;
    use qjoin_ranking::{RankPredicate, Ranking, Weight};
    use qjoin_workload::random_acyclic::RandomAcyclicConfig;

    /// A small random acyclic instance; the standard input of these tests.
    pub(crate) fn small_random_instance(seed: u64, atoms: usize) -> Instance {
        RandomAcyclicConfig {
            atoms,
            max_arity: 3,
            tuples_per_relation: 10,
            domain: 4,
            seed,
        }
        .generate()
    }

    /// All answer weights of the instance under `ranking`, sorted ascending.
    pub(crate) fn sorted_weights(instance: &Instance, ranking: &Ranking) -> Vec<Weight> {
        let answers = materialize(instance).expect("materialization must succeed");
        let schema = answers.variables().to_vec();
        let mut weights: Vec<Weight> = answers
            .rows()
            .iter()
            .map(|row| ranking.weight_of_row(&schema, row))
            .collect();
        weights.sort();
        weights
    }

    /// Asserts that trimming `instance` at its φ-quantile weight λ is *exact*:
    ///
    /// * the `< λ` / `> λ` trimmed instances reproduce, weight for weight, the
    ///   corresponding slices of the materialized answer list (the bijection of
    ///   Definition 3.2, checked on the weight multiset), and
    /// * the φ-quantile answer itself is preserved — its target index lands in
    ///   the `= λ` block that the two trimmings leave out.
    ///
    /// Returns `false` (skipping the seed) when the instance has no answers.
    pub(crate) fn assert_exact_partition_at_phi(
        trimmer: &impl Trimmer,
        instance: &Instance,
        ranking: &Ranking,
        phi: f64,
    ) -> bool {
        let all = sorted_weights(instance, ranking);
        if all.is_empty() {
            return false;
        }
        let quantile =
            quantile_by_materialization(instance, ranking, phi, BaselineStrategy::FullSort)
                .expect("non-empty instance must have a quantile");
        let lambda = quantile.weight.clone();

        let lt = trimmer
            .trim(instance, ranking, &RankPredicate::less_than(lambda.clone()))
            .expect("less-than trimming must succeed");
        let gt = trimmer
            .trim(
                instance,
                ranking,
                &RankPredicate::greater_than(lambda.clone()),
            )
            .expect("greater-than trimming must succeed");

        let expected_lt: Vec<Weight> = all.iter().filter(|w| **w < lambda).cloned().collect();
        let expected_gt: Vec<Weight> = all.iter().filter(|w| **w > lambda).cloned().collect();
        assert_eq!(
            sorted_weights(&lt, ranking),
            expected_lt,
            "{}: `< λ` partition differs from materialized slice (λ = {lambda:?}, φ = {phi})",
            trimmer.name()
        );
        assert_eq!(
            sorted_weights(&gt, ranking),
            expected_gt,
            "{}: `> λ` partition differs from materialized slice (λ = {lambda:?}, φ = {phi})",
            trimmer.name()
        );

        // φ-quantile preservation: the target index must sit in the `= λ` block
        // bounded by the two partitions, so recursing into neither loses it.
        let below = expected_lt.len() as u128;
        let above = expected_gt.len() as u128;
        assert!(
            quantile.target_index >= below && quantile.target_index < all.len() as u128 - above,
            "{}: φ-quantile (index {}) escaped the untrimmed `= λ` block [{below}, {})",
            trimmer.name(),
            quantile.target_index,
            all.len() as u128 - above
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation};
    use qjoin_query::query::path_query;
    use qjoin_query::variable::vars;
    use qjoin_ranking::Weight;

    fn two_path_instance() -> Instance {
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[2, 1], &[8, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 5], &[1, 9], &[2, 3]]).unwrap();
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn trivial_predicates_return_instance_unchanged() {
        let inst = two_path_instance();
        let pred = RankPredicate::greater_than(qjoin_ranking::WeightBound::NegInf);
        let out = handle_trivial(&inst, &pred).unwrap().unwrap();
        assert_eq!(
            out.database().total_tuples(),
            inst.database().total_tuples()
        );
    }

    #[test]
    fn unsatisfiable_predicates_return_empty_instance() {
        let inst = two_path_instance();
        let pred = RankPredicate::less_than(qjoin_ranking::WeightBound::NegInf);
        let out = handle_trivial(&inst, &pred).unwrap().unwrap();
        assert_eq!(out.database().total_tuples(), 0);
        assert_eq!(out.query(), inst.query());
    }

    #[test]
    fn non_degenerate_predicates_are_not_short_circuited() {
        let inst = two_path_instance();
        let pred = RankPredicate::less_than(Weight::num(3.0));
        assert!(handle_trivial(&inst, &pred).is_none());
    }

    #[test]
    fn single_partition_filters_in_place() {
        let inst = two_path_instance();
        let ranking = Ranking::sum(inst.query().variables());
        // Keep only x1 < 3.
        let partitions = vec![vec![(Variable::new("x1"), UnaryWeightPred::Lt(3.0))]];
        let out = partition_union_trim(&inst, &ranking, &partitions).unwrap();
        assert_eq!(out.query(), inst.query());
        assert_eq!(out.database().relation("R1").unwrap().len(), 2);
        assert_eq!(out.database().relation("R2").unwrap().len(), 3);
    }

    #[test]
    fn multi_partition_union_adds_partition_variable() {
        let inst = two_path_instance();
        let ranking = Ranking::sum(inst.query().variables());
        // x1 < 3 (partition 0) or x1 ≥ 3 (partition 1) — together everything.
        let partitions = vec![
            vec![(Variable::new("x1"), UnaryWeightPred::Lt(3.0))],
            vec![(Variable::new("x1"), UnaryWeightPred::Ge(3.0))],
        ];
        let out = partition_union_trim(&inst, &ranking, &partitions).unwrap();
        assert_eq!(out.query().atom(0).arity(), 3);
        assert!(out
            .query()
            .variables()
            .iter()
            .any(|v| v.name().starts_with("x_p")));
        // Answers are preserved: x1 appears only in R1, so the partitioning splits R1
        // into 2 + 1 tuples while R2 is copied into both partitions.
        let count = qjoin_exec::count::count_answers(&out).unwrap();
        let original = qjoin_exec::count::count_answers(&inst).unwrap();
        assert_eq!(count, original);
    }

    #[test]
    fn predicates_on_shared_variables_filter_all_atoms() {
        let inst = two_path_instance();
        let ranking = Ranking::sum(inst.query().variables());
        // x2 appears in both relations; keep x2 > 1.
        let partitions = vec![vec![(Variable::new("x2"), UnaryWeightPred::Gt(1.0))]];
        let out = partition_union_trim(&inst, &ranking, &partitions).unwrap();
        assert_eq!(out.database().relation("R1").unwrap().len(), 1);
        assert_eq!(out.database().relation("R2").unwrap().len(), 1);
        assert_eq!(qjoin_exec::count::count_answers(&out).unwrap(), 1);
    }

    #[test]
    fn empty_partition_list_gives_empty_instance() {
        let inst = two_path_instance();
        let ranking = Ranking::sum(vars(&["x1"]));
        let out = partition_union_trim(&inst, &ranking, &[]).unwrap();
        assert_eq!(qjoin_exec::count::count_answers(&out).unwrap(), 0);
    }

    #[test]
    fn unary_weight_predicates_evaluate_correctly() {
        assert!(UnaryWeightPred::Lt(3.0).holds(2.9));
        assert!(!UnaryWeightPred::Lt(3.0).holds(3.0));
        assert!(UnaryWeightPred::Le(3.0).holds(3.0));
        assert!(UnaryWeightPred::Gt(3.0).holds(3.1));
        assert!(!UnaryWeightPred::Ge(3.0).holds(2.9));
        assert!(UnaryWeightPred::Eq(3.0).holds(3.0));
        assert!(!UnaryWeightPred::Eq(3.0).holds(3.1));
    }
}
