//! Exact trimmings for (partial) SUM (Section 5.3).
//!
//! Two constructions cover the tractable side of Theorem 5.6:
//!
//! * **Single atom** — when one atom contains all weighted variables, an additive
//!   inequality is a property of that atom's tuple alone, so trimming is a linear-time
//!   filter of one relation ([`SingleAtomSumTrimmer`]).
//! * **Adjacent pair** — when the weighted variables are covered by two atoms that are
//!   adjacent in some join tree, the inequality `w_A(t_A) + w_B(t_B) < λ` is trimmed
//!   with the factorized construction of Lemma 5.5 (from Tziavelis et al.,
//!   "Beyond Equi-joins"): per join group, sort the `B` tuples by their partial sums,
//!   and connect every `A` tuple to the *prefix* of qualifying `B` tuples through
//!   `O(log n)` dyadic-interval identifiers carried by a fresh shared variable `v`.
//!   Each qualifying `(t_A, t_B)` pair matches through exactly one identifier, so the
//!   rewriting is a bijection; the database grows by a logarithmic factor and the
//!   query stays acyclic (and stays inside the tractable class, so the construction
//!   can be applied again in later iterations).
//!
//! [`AdjacentSumTrimmer`] dispatches between the two cases per call and reports the
//! dichotomy witness when neither applies.

use super::{handle_trivial, Trimmer};
use crate::dichotomy::{classify_partial_sum, find_adjacent_cover, SumClassification};
use crate::{CoreError, Result};
use qjoin_data::{Database, Relation, Tuple, Value};
use qjoin_query::{self_join, Instance, Variable};
use qjoin_ranking::{AggregateKind, CmpOp, RankPredicate, Ranking, SumTupleWeights};
use std::collections::HashMap;

/// Exact trimmer for additive inequalities whose weighted variables all live in a
/// single atom.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleAtomSumTrimmer;

impl Trimmer for SingleAtomSumTrimmer {
    fn trim(
        &self,
        instance: &Instance,
        ranking: &Ranking,
        predicate: &RankPredicate,
    ) -> Result<Instance> {
        if let Some(result) = handle_trivial(instance, predicate) {
            return result;
        }
        check_sum_ranking(ranking)?;
        let bound = scalar_bound(predicate)?;
        let instance = self_join::eliminate_self_joins(instance)?;
        let cover = find_adjacent_cover(instance.query(), ranking.weighted_vars())
            .filter(|c| c.is_single_atom())
            .ok_or_else(|| {
                CoreError::IntractableSum(
                    "no single atom contains all weighted variables".to_string(),
                )
            })?;
        trim_single_atom(&instance, ranking, predicate.op, bound, cover.atoms.0)
    }

    fn name(&self) -> &'static str {
        "sum-single-atom"
    }
}

/// Exact trimmer for additive inequalities on the tractable side of Theorem 5.6:
/// single-atom covers are filtered, adjacent-pair covers use the dyadic construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdjacentSumTrimmer;

impl Trimmer for AdjacentSumTrimmer {
    fn trim(
        &self,
        instance: &Instance,
        ranking: &Ranking,
        predicate: &RankPredicate,
    ) -> Result<Instance> {
        if let Some(result) = handle_trivial(instance, predicate) {
            return result;
        }
        check_sum_ranking(ranking)?;
        let bound = scalar_bound(predicate)?;
        let instance = self_join::eliminate_self_joins(instance)?;
        match find_adjacent_cover(instance.query(), ranking.weighted_vars()) {
            Some(cover) if cover.is_single_atom() => {
                trim_single_atom(&instance, ranking, predicate.op, bound, cover.atoms.0)
            }
            Some(cover) => trim_adjacent_pair(&instance, ranking, predicate.op, bound, cover.atoms),
            None => {
                let witness = classify_partial_sum(instance.query(), ranking.weighted_vars());
                Err(match witness {
                    SumClassification::UnknownTooLarge => CoreError::QueryTooLarge {
                        atoms: instance.query().num_atoms(),
                        limit: qjoin_query::join_tree::MAX_ENUMERATION_ATOMS,
                    },
                    other => CoreError::IntractableSum(format!("{other:?}")),
                })
            }
        }
    }

    fn name(&self) -> &'static str {
        "sum-adjacent"
    }
}

pub(crate) fn check_sum_ranking(ranking: &Ranking) -> Result<()> {
    if ranking.kind() != AggregateKind::Sum {
        return Err(CoreError::UnsupportedRanking(format!(
            "SUM trimmers cannot trim {:?} predicates",
            ranking.kind()
        )));
    }
    Ok(())
}

pub(crate) fn scalar_bound(predicate: &RankPredicate) -> Result<f64> {
    predicate
        .finite_bound()
        .and_then(|w| w.as_num())
        .ok_or_else(|| {
            CoreError::UnsupportedPredicate("SUM trimming requires a scalar bound".to_string())
        })
}

/// Filters the relation of the covering atom by the tuple's partial sum.
fn trim_single_atom(
    instance: &Instance,
    ranking: &Ranking,
    op: CmpOp,
    bound: f64,
    atom_idx: usize,
) -> Result<Instance> {
    let tw = SumTupleWeights::with_preferred_atoms(instance.query(), ranking, &[atom_idx]);
    let relation = instance.relation_of_atom(atom_idx);
    let filtered = relation.filtered(|t| {
        let s = tw.tuple_sum(ranking, atom_idx, t);
        match op {
            CmpOp::Lt => s < bound,
            CmpOp::Gt => s > bound,
        }
    });
    let mut db = instance.database().clone();
    db.insert_relation(filtered);
    Ok(Instance::new(instance.query().clone(), db)?)
}

/// The dyadic prefix/suffix construction for an adjacent pair of atoms.
fn trim_adjacent_pair(
    instance: &Instance,
    ranking: &Ranking,
    op: CmpOp,
    bound: f64,
    (atom_a, atom_b): (usize, usize),
) -> Result<Instance> {
    let query = instance.query();
    let tw = SumTupleWeights::with_preferred_atoms(query, ranking, &[atom_a, atom_b]);

    // Join-key positions: the variables shared between the two atoms.
    let a_vars = query.atom(atom_a).variable_set();
    let b_vars = query.atom(atom_b).variable_set();
    let shared: Vec<Variable> = a_vars.intersection(&b_vars).cloned().collect();
    let key_pos_a: Vec<usize> = shared
        .iter()
        .map(|v| query.atom(atom_a).positions_of(v)[0])
        .collect();
    let key_pos_b: Vec<usize> = shared
        .iter()
        .map(|v| query.atom(atom_b).positions_of(v)[0])
        .collect();

    // Group B's tuples by the join key and sort each group by its partial sums.
    let rel_b = instance.relation_of_atom(atom_b);
    let mut groups: HashMap<Vec<Value>, Vec<(f64, usize)>> = HashMap::new();
    for (idx, t) in rel_b.iter().enumerate() {
        let key: Vec<Value> = key_pos_b.iter().map(|&p| t[p].clone()).collect();
        let sum = tw.tuple_sum(ranking, atom_b, t);
        groups.entry(key).or_default().push((sum, idx));
    }
    for members in groups.values_mut() {
        members.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    // Stable per-group identifiers so that interval ids are unique across groups.
    let mut group_ids: HashMap<Vec<Value>, i64> = HashMap::new();
    let mut ordered_keys: Vec<&Vec<Value>> = groups.keys().collect();
    ordered_keys.sort();
    for (gid, key) in ordered_keys.into_iter().enumerate() {
        group_ids.insert(key.clone(), gid as i64);
    }

    // New variable v shared by the two atoms; its values are dyadic-interval ids.
    let query_vars = query.variable_set();
    let v = Variable::fresh("v_sum", query_vars.iter());
    let new_atom_a = query.atom(atom_a).with_extra_variable(v.clone());
    let new_atom_b = query.atom(atom_b).with_extra_variable(v.clone());
    let new_query = query
        .with_replaced_atom(atom_a, new_atom_a)
        .with_replaced_atom(atom_b, new_atom_b);

    // A-side: connect every A tuple to the dyadic cover of its qualifying range.
    let rel_a = instance.relation_of_atom(atom_a);
    let mut new_a = Relation::new(rel_a.name(), rel_a.arity() + 1);
    for t in rel_a.iter() {
        let key: Vec<Value> = key_pos_a.iter().map(|&p| t[p].clone()).collect();
        let Some(members) = groups.get(&key) else {
            continue;
        };
        let gid = group_ids[&key];
        let wa = tw.tuple_sum(ranking, atom_a, t);
        let threshold = bound - wa;
        let (lo, hi) = match op {
            // w_A + w_B < λ ⇔ w_B < λ - w_A: the prefix of strictly smaller sums.
            CmpOp::Lt => (0, members.partition_point(|(s, _)| *s < threshold)),
            // w_A + w_B > λ ⇔ w_B > λ - w_A: the suffix of strictly larger sums.
            CmpOp::Gt => (
                members.partition_point(|(s, _)| *s <= threshold),
                members.len(),
            ),
        };
        for (level, index) in dyadic_cover(lo, hi) {
            new_a.push_tuple(t.extended(interval_id(gid, level, index)))?;
        }
    }

    // B-side: every B tuple joins the dyadic interval containing its position, one
    // copy per level. Groups are walked in gid (sorted-key) order, not hash-map
    // order: the output row order feeds the *next* trim round's in-group sort, so
    // it must be deterministic — and identical to the encoded path's — for repeated
    // trims to break partial-sum ties the same way on every run and on both paths.
    let mut sorted_groups: Vec<_> = groups.iter().collect();
    sorted_groups.sort_by_key(|(key, _)| group_ids[*key]);
    let mut new_b = Relation::new(rel_b.name(), rel_b.arity() + 1);
    for (key, members) in sorted_groups {
        let gid = group_ids[key];
        let levels = levels_for(members.len());
        for (pos, (_, idx)) in members.iter().enumerate() {
            let tuple: &Tuple = &rel_b.tuples()[*idx];
            for level in 0..=levels {
                new_b.push_tuple(tuple.extended(interval_id(gid, level, pos >> level)))?;
            }
        }
    }

    let mut db: Database = instance.database().clone();
    db.insert_relation(new_a);
    db.insert_relation(new_b);
    Ok(Instance::new(new_query, db)?)
}

/// The dyadic-interval identifier value carried by the fresh variable `v`.
fn interval_id(group: i64, level: u32, index: usize) -> Value {
    Value::pair(
        Value::Int(group),
        Value::pair(Value::Int(level as i64), Value::Int(index as i64)),
    )
}

/// The number of levels needed to cover positions `0..len`.
pub(crate) fn levels_for(len: usize) -> u32 {
    if len <= 1 {
        0
    } else {
        usize::BITS - (len - 1).leading_zeros()
    }
}

/// The canonical decomposition of the half-open range `[lo, hi)` into aligned dyadic
/// intervals `[index · 2^level, (index + 1) · 2^level)`. Every position of the range is
/// covered by exactly one interval of the decomposition.
pub(crate) fn dyadic_cover(mut lo: usize, hi: usize) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    while lo < hi {
        let align = if lo == 0 {
            u32::MAX
        } else {
            lo.trailing_zeros()
        };
        let mut level = align.min(63);
        while level > 0 && (1usize << level) > hi - lo {
            level -= 1;
        }
        out.push((level, lo >> level));
        lo += 1usize << level;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation};
    use qjoin_exec::count::count_answers;
    use qjoin_exec::yannakakis::materialize;
    use qjoin_query::query::{path_query, social_network_query};
    use qjoin_query::variable::vars;
    use qjoin_ranking::Weight;
    use std::collections::HashSet;

    fn brute_force_count(instance: &Instance, ranking: &Ranking, pred: &RankPredicate) -> u128 {
        let answers = materialize(instance).unwrap();
        let schema = answers.variables().to_vec();
        answers
            .rows()
            .iter()
            .filter(|row| pred.satisfied_by(ranking, &ranking.weight_of_row(&schema, row)))
            .count() as u128
    }

    fn two_path_instance(n: i64) -> Instance {
        // R1(x1, x2), R2(x2, x3): x2 ∈ {0, 1}, values spread out so sums vary.
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push(vec![Value::from(3 * i + (i % 7)), Value::from(i % 2)])
                .unwrap();
            r2.push(vec![Value::from(i % 2), Value::from(5 * i - 2 * (i % 3))])
                .unwrap();
        }
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn dyadic_cover_is_a_partition_of_the_range() {
        for (lo, hi) in [
            (0, 0),
            (0, 1),
            (0, 13),
            (3, 17),
            (5, 6),
            (0, 64),
            (7, 64),
            (31, 33),
        ] {
            let cover = dyadic_cover(lo, hi);
            let mut covered: Vec<usize> = Vec::new();
            for (level, index) in &cover {
                let start = index << level;
                let end = start + (1usize << level);
                assert!(
                    start >= lo && end <= hi,
                    "interval [{start},{end}) escapes [{lo},{hi})"
                );
                covered.extend(start..end);
            }
            covered.sort_unstable();
            let expected: Vec<usize> = (lo..hi).collect();
            assert_eq!(covered, expected, "range [{lo}, {hi})");
            assert!(cover.len() <= 2 * (usize::BITS as usize), "cover too large");
        }
    }

    #[test]
    fn single_atom_trimmer_filters_the_covering_relation() {
        let inst = two_path_instance(20);
        let ranking = Ranking::sum(vars(&["x1", "x2"]));
        for bound in [5.0, 20.0, 43.0] {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = SingleAtomSumTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound}, {pred}"
                );
                assert_eq!(trimmed.query(), inst.query());
            }
        }
    }

    #[test]
    fn single_atom_trimmer_rejects_spread_out_sums() {
        let inst = two_path_instance(5);
        let ranking = Ranking::sum(inst.query().variables());
        let pred = RankPredicate::less_than(Weight::num(10.0));
        assert!(matches!(
            SingleAtomSumTrimmer
                .trim(&inst, &ranking, &pred)
                .unwrap_err(),
            CoreError::IntractableSum(_)
        ));
    }

    #[test]
    fn adjacent_trimmer_matches_brute_force_on_full_sum_binary_join() {
        let inst = two_path_instance(30);
        let ranking = Ranking::sum(inst.query().variables());
        let answers = materialize(&inst).unwrap();
        let schema = answers.variables().to_vec();
        // Use actual answer weights as bounds so both sides are non-trivial.
        let mut bounds: Vec<f64> = answers
            .rows()
            .iter()
            .map(|r| ranking.weight_of_row(&schema, r).as_num().unwrap())
            .collect();
        bounds.sort_by(f64::total_cmp);
        for &bound in [
            bounds[0],
            bounds[bounds.len() / 3],
            bounds[bounds.len() / 2],
            *bounds.last().unwrap(),
        ]
        .iter()
        {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = AdjacentSumTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound}, {pred}"
                );
                assert!(qjoin_query::acyclicity::is_acyclic(trimmed.query()));
            }
        }
    }

    #[test]
    fn trimmed_answers_are_exactly_the_qualifying_answers() {
        let inst = two_path_instance(15);
        let ranking = Ranking::sum(inst.query().variables());
        let pred = RankPredicate::less_than(Weight::num(40.0));
        let trimmed = AdjacentSumTrimmer.trim(&inst, &ranking, &pred).unwrap();
        let original_vars = inst.query().variables();

        let expected: HashSet<Vec<Value>> = {
            let answers = materialize(&inst).unwrap();
            let schema = answers.variables().to_vec();
            answers
                .rows()
                .iter()
                .filter(|row| pred.satisfied_by(&ranking, &ranking.weight_of_row(&schema, row)))
                .cloned()
                .collect()
        };
        let got: Vec<Vec<Value>> = materialize(&trimmed)
            .unwrap()
            .iter_assignments()
            .map(|asg| {
                original_vars
                    .iter()
                    .map(|v| asg.get(v).unwrap().clone())
                    .collect()
            })
            .collect();
        // The projection is a bijection: same multiset, no duplicates.
        let got_set: HashSet<Vec<Value>> = got.iter().cloned().collect();
        assert_eq!(got.len(), got_set.len(), "projection must be injective");
        assert_eq!(got_set, expected);
    }

    #[test]
    fn partial_sum_on_three_path_is_supported() {
        // The Section 5.3 example: 3-path with U_w = {x1, x2, x3}.
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[7, 1], &[3, 2], &[10, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 4], &[1, 9], &[2, 4], &[2, 11]]).unwrap();
        let r3 = Relation::from_rows("R3", &[&[4, 0], &[4, 5], &[9, 1], &[11, 2]]).unwrap();
        let inst = Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap();
        let ranking = Ranking::sum(vars(&["x1", "x2", "x3"]));
        for bound in [3.0, 10.0, 15.0, 21.0] {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = AdjacentSumTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound}, {pred}"
                );
            }
        }
    }

    #[test]
    fn social_network_like_sum_is_supported() {
        let admin = Relation::from_rows("Admin", &[&[1, 10], &[2, 10], &[3, 20]]).unwrap();
        let share = Relation::from_rows("Share", &[&[4, 10, 5], &[5, 10, 8], &[6, 20, 2]]).unwrap();
        let attend =
            Relation::from_rows("Attend", &[&[7, 10, 1], &[8, 10, 9], &[9, 20, 4]]).unwrap();
        let inst = Instance::new(
            social_network_query(),
            Database::from_relations([admin, share, attend]).unwrap(),
        )
        .unwrap();
        let ranking = Ranking::sum(vars(&["l2", "l3"]));
        for bound in [4.0, 8.0, 13.0] {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = AdjacentSumTrimmer.trim(&inst, &ranking, &pred).unwrap();
                assert_eq!(
                    count_answers(&trimmed).unwrap(),
                    brute_force_count(&inst, &ranking, &pred),
                    "bound {bound}, {pred}"
                );
            }
        }
    }

    #[test]
    fn repeated_trimming_stays_in_the_tractable_class() {
        // Trim twice, as the quantile driver does (pivot bound + accumulated bound).
        let inst = two_path_instance(25);
        let ranking = Ranking::sum(inst.query().variables());
        let first = AdjacentSumTrimmer
            .trim(
                &inst,
                &ranking,
                &RankPredicate::less_than(Weight::num(80.0)),
            )
            .unwrap();
        let second = AdjacentSumTrimmer
            .trim(
                &first,
                &ranking,
                &RankPredicate::greater_than(Weight::num(20.0)),
            )
            .unwrap();
        let expected = {
            let answers = materialize(&inst).unwrap();
            let schema = answers.variables().to_vec();
            answers
                .rows()
                .iter()
                .filter(|row| {
                    let w = ranking.weight_of_row(&schema, row).as_num().unwrap();
                    w < 80.0 && w > 20.0
                })
                .count() as u128
        };
        assert_eq!(count_answers(&second).unwrap(), expected);
        assert!(qjoin_query::acyclicity::is_acyclic(second.query()));
    }

    #[test]
    fn intractable_queries_report_a_witness() {
        let r1 = Relation::from_rows("R1", &[&[1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 1]]).unwrap();
        let r3 = Relation::from_rows("R3", &[&[1, 1]]).unwrap();
        let inst = Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap();
        let ranking = Ranking::sum(inst.query().variables());
        let pred = RankPredicate::less_than(Weight::num(10.0));
        assert!(matches!(
            AdjacentSumTrimmer.trim(&inst, &ranking, &pred).unwrap_err(),
            CoreError::IntractableSum(_)
        ));
    }

    #[test]
    fn levels_for_covers_group_sizes() {
        assert_eq!(levels_for(0), 0);
        assert_eq!(levels_for(1), 0);
        assert_eq!(levels_for(2), 1);
        assert_eq!(levels_for(3), 2);
        assert_eq!(levels_for(8), 3);
        assert_eq!(levels_for(9), 4);
    }
}

#[cfg(test)]
mod quantile_preservation_tests {
    use super::*;
    use crate::dichotomy::classify_partial_sum;
    use crate::trim::test_support::{assert_exact_partition_at_phi, small_random_instance};
    use qjoin_query::Variable;

    /// Partial-SUM trimming at the φ-quantile weight of small random acyclic
    /// instances must be exact and must preserve the quantile answer, whenever
    /// the dichotomy puts the (query, U_w) pair on the tractable side.
    #[test]
    fn adjacent_sum_trim_preserves_phi_quantile_on_random_instances() {
        let mut checked = 0usize;
        for seed in 0..16u64 {
            for atoms in 1..=3usize {
                let instance = small_random_instance(seed, atoms);
                let weighted: Vec<Variable> =
                    instance.query().variables().into_iter().take(3).collect();
                if !classify_partial_sum(instance.query(), &weighted).is_tractable() {
                    continue;
                }
                let ranking = Ranking::sum(weighted);
                for phi in [0.1, 0.5, 0.9] {
                    if assert_exact_partition_at_phi(&AdjacentSumTrimmer, &instance, &ranking, phi)
                    {
                        checked += 1;
                    }
                }
            }
        }
        assert!(
            checked >= 20,
            "too few tractable non-empty cases exercised: {checked}"
        );
    }
}
