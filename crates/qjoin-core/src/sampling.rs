//! Randomized ε-approximate quantiles by uniform sampling (Section 3.1).
//!
//! With a direct-access structure over the answers of an acyclic JQ (built in linear
//! time, O(log n) per access), answers can be sampled uniformly; the `φ`-quantile of a
//! sample of `O(ε⁻² log(1/δ))` answers is a `(φ ± ε)`-quantile of the full answer set
//! with probability `1 − δ` (Hoeffding's inequality). This is the randomized baseline
//! against which the paper's *deterministic* approximation (Theorem 6.2) is positioned.

use crate::quantile::{target_rank, QuantileResult};
use crate::{CoreError, Result};
use qjoin_exec::DirectAccess;
use qjoin_query::Instance;
use qjoin_ranking::Ranking;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the sampling-based approximation.
#[derive(Clone, Copy, Debug)]
pub struct SamplingOptions {
    /// The rank-error tolerance ε ∈ (0, 1).
    pub epsilon: f64,
    /// The failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for SamplingOptions {
    fn default() -> Self {
        SamplingOptions {
            epsilon: 0.05,
            delta: 0.01,
            seed: 0x5eed,
        }
    }
}

impl SamplingOptions {
    /// The number of samples prescribed by Hoeffding's inequality:
    /// `⌈ln(2/δ) / (2ε²)⌉`.
    pub fn sample_count(&self) -> usize {
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
    }
}

/// Computes a randomized `(φ ± ε)`-approximate quantile by uniform sampling.
pub fn quantile_by_sampling(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    options: &SamplingOptions,
) -> Result<QuantileResult> {
    if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
        return Err(CoreError::InvalidPhi(phi));
    }
    if !(options.epsilon > 0.0 && options.epsilon < 1.0) {
        return Err(CoreError::InvalidEpsilon(options.epsilon));
    }
    let access = DirectAccess::new(instance)?;
    let total = access.total();
    if total == 0 {
        return Err(CoreError::NoAnswers);
    }
    let target_index = target_rank(phi, total);

    let mut rng = StdRng::seed_from_u64(options.seed);
    let m = options.sample_count().max(1);
    let mut sampled: Vec<(qjoin_ranking::Weight, qjoin_query::Assignment)> = Vec::with_capacity(m);
    for _ in 0..m {
        let answer = access.sample(&mut rng)?;
        sampled.push((ranking.weight_of(&answer), answer));
    }
    sampled.sort_by(|a, b| a.0.cmp(&b.0));
    let pick = (target_rank(phi, m as u128) as usize).min(m - 1);
    let (weight, answer) = sampled.swap_remove(pick);

    Ok(QuantileResult {
        answer,
        weight,
        total_answers: total,
        target_index,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::rank_of_weight;
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::path_query;

    fn instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push(vec![Value::from(i), Value::from(i % 3)]).unwrap();
            r2.push(vec![Value::from(i % 3), Value::from(2 * i)])
                .unwrap();
        }
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn hoeffding_sample_count_grows_with_precision() {
        let loose = SamplingOptions {
            epsilon: 0.2,
            delta: 0.1,
            seed: 1,
        };
        let tight = SamplingOptions {
            epsilon: 0.02,
            delta: 0.1,
            seed: 1,
        };
        assert!(tight.sample_count() > 50 * loose.sample_count());
    }

    #[test]
    fn sampled_quantile_is_within_epsilon_rank_error() {
        let inst = instance(60);
        let ranking = Ranking::sum(inst.query().variables());
        let options = SamplingOptions {
            epsilon: 0.05,
            delta: 0.01,
            seed: 7,
        };
        for phi in [0.25, 0.5, 0.75] {
            let result = quantile_by_sampling(&inst, &ranking, phi, &options).unwrap();
            let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
            let total = result.total_answers as f64;
            let lo = (phi - 3.0 * options.epsilon) * total;
            let hi = (phi + 3.0 * options.epsilon) * total;
            // The answer's rank window must overlap the tolerated band.
            assert!(
                (below as f64) <= hi && (below + equal) as f64 >= lo,
                "phi {phi}: window [{below}, {}) outside [{lo}, {hi}]",
                below + equal
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let inst = instance(5);
        let ranking = Ranking::sum(inst.query().variables());
        assert!(matches!(
            quantile_by_sampling(&inst, &ranking, 2.0, &SamplingOptions::default()).unwrap_err(),
            CoreError::InvalidPhi(_)
        ));
        let bad_eps = SamplingOptions {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            quantile_by_sampling(&inst, &ranking, 0.5, &bad_eps).unwrap_err(),
            CoreError::InvalidEpsilon(_)
        ));
    }

    #[test]
    fn deterministic_given_a_seed() {
        let inst = instance(30);
        let ranking = Ranking::sum(inst.query().variables());
        let options = SamplingOptions::default();
        let a = quantile_by_sampling(&inst, &ranking, 0.5, &options).unwrap();
        let b = quantile_by_sampling(&inst, &ranking, 0.5, &options).unwrap();
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.answer, b.answer);
    }
}
