//! Randomized ε-approximate quantiles by uniform sampling (Section 3.1).
//!
//! With a direct-access structure over the answers of an acyclic JQ (built in linear
//! time, O(log n) per access), answers can be sampled uniformly; the `φ`-quantile of a
//! sample of `O(ε⁻² log(1/δ))` answers is a `(φ ± ε)`-quantile of the full answer set
//! with probability `1 − δ` (Hoeffding's inequality). This is the randomized baseline
//! against which the paper's *deterministic* approximation (Theorem 6.2) is positioned.
//!
//! The sampler runs on the **encoded** substrate by default
//! ([`EncodedDirectAccess`](qjoin_exec::EncodedDirectAccess) walks dictionary codes
//! and decodes only sampled answers), falling back to the row path when the instance
//! cannot be encoded. Both paths consume the RNG identically and enumerate answers in
//! the same fixed order, so a seed fully determines the result regardless of backend.
//!
//! When the Hoeffding budget `m` meets or exceeds the answer count — the regime where
//! approximate query processing provably cannot beat exact evaluation (cf. Liu & Wang's
//! AQP hardness results) — the sampler **refuses** with
//! [`CoreError::ApproxRefused`] rather than burning more work than an exact solve;
//! callers should downgrade to an exact or deterministic-ε solve.

use crate::quantile::{target_rank, QuantileResult};
use crate::{CoreError, Result};
use qjoin_exec::{DirectAccess, EncodedDirectAccess};
use qjoin_query::{Assignment, EncodedInstance, Instance};
use qjoin_ranking::Ranking;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the sampling-based approximation.
#[derive(Clone, Copy, Debug)]
pub struct SamplingOptions {
    /// The rank-error tolerance ε ∈ (0, 1).
    pub epsilon: f64,
    /// The failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for SamplingOptions {
    fn default() -> Self {
        SamplingOptions {
            epsilon: 0.05,
            delta: 0.01,
            seed: 0x5eed,
        }
    }
}

impl SamplingOptions {
    /// The number of samples prescribed by Hoeffding's inequality:
    /// `⌈ln(2/δ) / (2ε²)⌉`.
    pub fn sample_count(&self) -> usize {
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as usize
    }
}

/// Computes a randomized `(φ ± ε)`-approximate quantile by uniform sampling, on the
/// encoded path when the instance encodes and on the row path otherwise.
pub fn quantile_by_sampling(
    instance: &Instance,
    ranking: &Ranking,
    phi: f64,
    options: &SamplingOptions,
) -> Result<QuantileResult> {
    Ok(
        quantile_by_sampling_batch(instance, ranking, &[phi], options)?
            .pop()
            .expect("one phi in, one result out"),
    )
}

/// Batched multi-φ sampling: the Hoeffding sample is drawn and sorted **once** (it
/// does not depend on φ), then each fraction picks its rank from the shared sorted
/// sample. Results are pointwise identical to independent single-φ calls with the
/// same seed.
pub fn quantile_by_sampling_batch(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
    options: &SamplingOptions,
) -> Result<Vec<QuantileResult>> {
    validate(phis, options)?;
    crate::encoded::or_row_fallback(
        crate::encoded::encode_instance(instance)
            .and_then(|enc| quantile_by_sampling_batch_encoded(&enc, ranking, phis, options)),
        || quantile_by_sampling_batch_via_rows(instance, ranking, phis, options),
    )
}

/// [`quantile_by_sampling_batch`] forced onto the row path (the benchmark and
/// equivalence-test baseline).
pub fn quantile_by_sampling_batch_via_rows(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
    options: &SamplingOptions,
) -> Result<Vec<QuantileResult>> {
    validate(phis, options)?;
    let access = DirectAccess::new(instance)?;
    sampled_quantiles(access.total(), ranking, phis, options, |rng| {
        Ok(access.sample(rng)?)
    })
}

/// Computes a randomized `(φ ± ε)`-approximate quantile over an already-encoded
/// instance (the engine's prepared-plan path). Seed-identical to the row sampler.
pub fn quantile_by_sampling_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phi: f64,
    options: &SamplingOptions,
) -> Result<QuantileResult> {
    Ok(
        quantile_by_sampling_batch_encoded(instance, ranking, &[phi], options)?
            .pop()
            .expect("one phi in, one result out"),
    )
}

/// Batched multi-φ variant of [`quantile_by_sampling_encoded`].
pub fn quantile_by_sampling_batch_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    options: &SamplingOptions,
) -> Result<Vec<QuantileResult>> {
    validate(phis, options)?;
    let access = EncodedDirectAccess::new(instance)?;
    sampled_quantiles(access.total(), ranking, phis, options, |rng| {
        Ok(access.sample(rng)?)
    })
}

fn validate(phis: &[f64], options: &SamplingOptions) -> Result<()> {
    for &phi in phis {
        if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
            return Err(CoreError::InvalidPhi(phi));
        }
    }
    if !(options.epsilon > 0.0 && options.epsilon < 1.0) {
        return Err(CoreError::InvalidEpsilon(options.epsilon));
    }
    Ok(())
}

/// The shared sampling core: draws the φ-independent Hoeffding sample, sorts it once
/// by weight, and answers every fraction from the shared order. Refuses outright when
/// the sample budget is no smaller than the answer set.
fn sampled_quantiles(
    total: u128,
    ranking: &Ranking,
    phis: &[f64],
    options: &SamplingOptions,
    mut sample: impl FnMut(&mut StdRng) -> Result<Assignment>,
) -> Result<Vec<QuantileResult>> {
    if total == 0 {
        return Err(CoreError::NoAnswers);
    }
    let m = options.sample_count().max(1);
    if m as u128 >= total {
        return Err(CoreError::ApproxRefused(format!(
            "Hoeffding budget m = {m} (epsilon = {}, delta = {}) >= |Q(D)| = {total}; \
             sampling cannot beat an exact solve in this regime",
            options.epsilon, options.delta
        )));
    }

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut sampled: Vec<(qjoin_ranking::Weight, Assignment)> = Vec::with_capacity(m);
    for _ in 0..m {
        let answer = sample(&mut rng)?;
        sampled.push((ranking.weight_of(&answer), answer));
    }
    sampled.sort_by(|a, b| a.0.cmp(&b.0));

    Ok(phis
        .iter()
        .map(|&phi| {
            let pick = (target_rank(phi, m as u128) as usize).min(m - 1);
            let (weight, answer) = sampled[pick].clone();
            QuantileResult {
                answer,
                weight,
                total_answers: total,
                target_index: target_rank(phi, total),
                iterations: 0,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::rank_of_weight;
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::path_query;

    fn instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push(vec![Value::from(i), Value::from(i % 3)]).unwrap();
            r2.push(vec![Value::from(i % 3), Value::from(2 * i)])
                .unwrap();
        }
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn hoeffding_sample_count_grows_with_precision() {
        let loose = SamplingOptions {
            epsilon: 0.2,
            delta: 0.1,
            seed: 1,
        };
        let tight = SamplingOptions {
            epsilon: 0.02,
            delta: 0.1,
            seed: 1,
        };
        assert!(tight.sample_count() > 50 * loose.sample_count());
    }

    #[test]
    fn sampled_quantile_is_within_epsilon_rank_error() {
        let inst = instance(60);
        let ranking = Ranking::sum(inst.query().variables());
        let options = SamplingOptions {
            epsilon: 0.05,
            delta: 0.01,
            seed: 7,
        };
        for phi in [0.25, 0.5, 0.75] {
            let result = quantile_by_sampling(&inst, &ranking, phi, &options).unwrap();
            let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
            let total = result.total_answers as f64;
            let lo = (phi - 3.0 * options.epsilon) * total;
            let hi = (phi + 3.0 * options.epsilon) * total;
            // The answer's rank window must overlap the tolerated band.
            assert!(
                (below as f64) <= hi && (below + equal) as f64 >= lo,
                "phi {phi}: window [{below}, {}) outside [{lo}, {hi}]",
                below + equal
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let inst = instance(5);
        let ranking = Ranking::sum(inst.query().variables());
        assert!(matches!(
            quantile_by_sampling(&inst, &ranking, 2.0, &SamplingOptions::default()).unwrap_err(),
            CoreError::InvalidPhi(_)
        ));
        let bad_eps = SamplingOptions {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            quantile_by_sampling(&inst, &ranking, 0.5, &bad_eps).unwrap_err(),
            CoreError::InvalidEpsilon(_)
        ));
    }

    #[test]
    fn deterministic_given_a_seed() {
        let inst = instance(30);
        let ranking = Ranking::sum(inst.query().variables());
        // ~300 answers; a loose ε keeps the Hoeffding budget below the answer count.
        let options = SamplingOptions {
            epsilon: 0.2,
            delta: 0.1,
            seed: 0x5eed,
        };
        let a = quantile_by_sampling(&inst, &ranking, 0.5, &options).unwrap();
        let b = quantile_by_sampling(&inst, &ranking, 0.5, &options).unwrap();
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.answer, b.answer);
    }

    #[test]
    fn encoded_and_row_samplers_are_seed_identical() {
        let inst = instance(40);
        let ranking = Ranking::sum(inst.query().variables());
        let options = SamplingOptions {
            epsilon: 0.15,
            delta: 0.1,
            seed: 42,
        };
        let phis = [0.0, 0.25, 0.5, 0.9, 1.0];
        let row = quantile_by_sampling_batch_via_rows(&inst, &ranking, &phis, &options).unwrap();
        let enc_inst = EncodedInstance::from_instance(&inst).unwrap();
        let enc = quantile_by_sampling_batch_encoded(&enc_inst, &ranking, &phis, &options).unwrap();
        assert_eq!(row.len(), enc.len());
        for (r, e) in row.iter().zip(&enc) {
            assert_eq!(r.answer, e.answer);
            assert_eq!(r.weight, e.weight);
            assert_eq!(r.total_answers, e.total_answers);
            assert_eq!(r.target_index, e.target_index);
        }
    }

    #[test]
    fn batch_matches_independent_single_phi_solves() {
        let inst = instance(40);
        let ranking = Ranking::sum(inst.query().variables());
        let options = SamplingOptions {
            epsilon: 0.15,
            delta: 0.1,
            seed: 11,
        };
        let phis = [0.1, 0.5, 0.99];
        let batch = quantile_by_sampling_batch(&inst, &ranking, &phis, &options).unwrap();
        for (i, &phi) in phis.iter().enumerate() {
            let single = quantile_by_sampling(&inst, &ranking, phi, &options).unwrap();
            assert_eq!(batch[i].answer, single.answer, "phi {phi}");
            assert_eq!(batch[i].weight, single.weight, "phi {phi}");
        }
    }

    #[test]
    fn hopeless_regimes_are_refused_with_a_witness() {
        // instance(5): ~8 answers, far below the default Hoeffding budget (~1060).
        let inst = instance(5);
        let ranking = Ranking::sum(inst.query().variables());
        let err =
            quantile_by_sampling(&inst, &ranking, 0.5, &SamplingOptions::default()).unwrap_err();
        match err {
            CoreError::ApproxRefused(witness) => {
                assert!(witness.contains("Hoeffding"), "witness: {witness}");
                assert!(witness.contains("exact solve"), "witness: {witness}");
            }
            other => panic!("expected ApproxRefused, got {other:?}"),
        }
    }
}
