//! # qjoin-core
//!
//! The quantile-over-joins algorithms of *"Efficient Computation of Quantiles over
//! Joins"* (Tziavelis, Carmeli, Gatterbauer, Kimelfeld, Riedewald — PODS 2023),
//! implemented on top of the `qjoin-data` / `qjoin-query` / `qjoin-exec` /
//! `qjoin-ranking` substrate crates.
//!
//! ## What's inside
//!
//! | Paper section | Module |
//! |---|---|
//! | §3 divide-and-conquer framework (Algorithm 1) | [`quantile`] |
//! | §4 generic pivot selection (Algorithm 2) | [`pivot`], [`selection`] |
//! | §5.1 MIN/MAX trimming (Algorithm 3, Theorem 5.3) | [`trim::MinMaxTrimmer`] |
//! | §5.2 LEX trimming | [`trim::LexTrimmer`] |
//! | §5.3 partial SUM trimming + dichotomy (Theorem 5.6) | [`trim::AdjacentSumTrimmer`], [`dichotomy`] |
//! | §6 ε-sketches and lossy trimming (Algorithm 4, Theorem 6.2) | [`sketch`], [`lossy_trim`] |
//! | §3.1 randomized sampling approximation | [`sampling`] |
//! | §1 "direct way" baseline | [`baseline`] |
//! | high-level routing | [`solver`] |
//! | batched multi-φ solving (shared recursion tree) | [`batch`] |
//! | per-phase solve tracing hooks | [`trace`] |
//!
//! ## Quick example
//!
//! ```
//! use qjoin_core::solver::exact_quantile;
//! use qjoin_data::{Database, Relation};
//! use qjoin_query::{query::path_query, Instance};
//! use qjoin_ranking::Ranking;
//!
//! // R1(x1, x2) ⋈ R2(x2, x3), median by MAX(x1, x3).
//! let r1 = Relation::from_rows("R1", &[&[1, 0], &[5, 0], &[9, 1]]).unwrap();
//! let r2 = Relation::from_rows("R2", &[&[0, 2], &[0, 7], &[1, 4]]).unwrap();
//! let instance = Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
//! let ranking = Ranking::max(qjoin_query::variable::vars(&["x1", "x3"]));
//! let median = exact_quantile(&instance, &ranking, 0.5).unwrap();
//! assert_eq!(median.total_answers, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod dichotomy;
pub mod encoded;
mod error;
pub mod lossy_trim;
pub mod pivot;
pub mod quantile;
pub mod sampling;
pub mod selection;
pub mod sketch;
pub mod solver;
pub mod trace;
pub mod trim;

pub use batch::{quantile_batch_by_pivoting, quantile_batch_by_pivoting_traced};
pub use error::CoreError;
pub use quantile::{PivotingOptions, QuantileResult};
pub use trace::{NoopTracer, PhaseContext, SolvePhase, SolveTracer};

/// Convenient `Result` alias for the quantile algorithms.
pub type Result<T> = std::result::Result<T, CoreError>;
