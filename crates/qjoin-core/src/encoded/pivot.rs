//! Encoded pivot selection: Algorithm 2 over code rows instead of assignments.
//!
//! The row implementation ([`crate::pivot`]) carries a `BTreeMap`-backed
//! [`Assignment`](qjoin_query::Assignment) per message and re-derives ranking
//! weights inside every comparison. Here a message is a flat slot array of `u64`
//! codes (one slot per query variable, in sorted variable order, `u64::MAX` for
//! unbound) plus its canonically-folded [`Weight`]. Comparisons are a weight
//! comparison followed by a slice comparison — and because dictionary codes are
//! assigned in value order (and synthesized code spaces are order-compatible), the
//! slice comparison equals the row path's assignment comparison, so both paths pick
//! the *same* pivot at every iteration.

use super::weights::{contribution, CodeWeights};
use crate::pivot::{pivot_quality, PivotResult};
use crate::selection::weighted_median_by;
use crate::{CoreError, Result};
use qjoin_data::Value;
use qjoin_exec::encoded::Key;
use qjoin_query::{Assignment, EncodedInstance, Variable};
use qjoin_ranking::{Ranking, Weight};
use std::collections::HashMap;
use std::sync::Arc;

/// The unbound-slot sentinel. Dictionary codes are dense (far below this) and the
/// packed interval codes of the SUM construction are capped strictly below it.
const UNBOUND: u64 = u64::MAX;

/// A pivot candidate: the codes of a partial answer and its canonical weight.
type Candidate = (Arc<Vec<u64>>, Weight);

/// One pivot message: a candidate plus the subtree's partial-answer count.
type Msg = (Arc<Vec<u64>>, Weight, u128);

/// Selects a `c`-pivot of an encoded instance's answers (Lemma 4.1), equal to the
/// row path's [`select_pivot`](crate::pivot::select_pivot) result.
pub(crate) fn select_pivot_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    weights: &CodeWeights,
) -> Result<PivotResult> {
    let ctx = qjoin_exec::encoded::shared_context(instance)?;
    if ctx.has_no_answers() {
        return Err(CoreError::NoAnswers);
    }
    let query = ctx.query();
    let sorted_vars: Vec<Variable> = query.variable_set().into_iter().collect();
    let slot_of: HashMap<&Variable, usize> = sorted_vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let n_slots = sorted_vars.len();
    // Weighted variables present in the query, in weighted-variable order — the
    // order `Ranking::weight_of` folds contributions in.
    let weighted_slots: Vec<(usize, &Variable)> = ranking
        .weighted_vars()
        .iter()
        .filter_map(|v| slot_of.get(v).map(|&s| (s, v)))
        .collect();
    let copy_plan: Vec<Vec<(usize, usize)>> = ctx
        .nodes()
        .iter()
        .map(|n| {
            query
                .atom(n.atom_index)
                .distinct_variable_positions()
                .into_iter()
                .map(|(v, pos)| (pos, slot_of[&v]))
                .collect()
        })
        .collect();

    let weight_of = |codes: &[u64]| -> Weight {
        let mut acc = ranking.identity();
        for &(slot, var) in &weighted_slots {
            let code = codes[slot];
            if code != UNBOUND {
                acc = ranking.combine(
                    &acc,
                    &contribution(ranking, var, weights.code_weight(var, code)),
                );
            }
        }
        acc
    };
    // Weight order first, then code order — equal to the row comparator's
    // `weight_of(a).cmp(weight_of(b)).then(a.cmp(b))` because code order equals
    // value order and compared messages always bind the same variable set.
    let cmp =
        |a: &Candidate, b: &Candidate| ranking.compare(&a.1, &b.1).then_with(|| a.0.cmp(&b.0));

    let n_nodes = ctx.nodes().len();
    let mut per_tuple: Vec<Vec<Msg>> = vec![Vec::new(); n_nodes];
    let mut per_group: Vec<HashMap<Key, Msg>> = vec![HashMap::new(); n_nodes];

    for &node_id in &ctx.tree().bottom_up_order() {
        let children = ctx.tree().node(node_id).children.clone();
        let n_rows = ctx.node(node_id).rows.len();
        // Algorithm-2 scan: every row's message (code gather, child merge,
        // weight fold, count product) is independent of every other row's, so
        // the scan is chunked over the executor pool. Each message's weight is
        // still folded in weighted-variable order on its own row, and chunk
        // partials concatenate in canonical order — the message vector is
        // bit-identical to the sequential scan at any thread count.
        let chunks: Vec<Vec<Msg>> =
            qjoin_par::par_map_chunks(n_rows, qjoin_par::DEFAULT_CHUNK, |_, range| {
                range
                    .map(|i| {
                        let mut codes = vec![UNBOUND; n_slots];
                        for &(pos, slot) in &copy_plan[node_id] {
                            codes[slot] = ctx.code(node_id, i, pos);
                        }
                        let mut count: u128 = 1;
                        for &child in &children {
                            let key = ctx.key_from_parent(child, i);
                            let (child_codes, _, child_count) = per_group[child]
                                .get(&key)
                                .expect("full reducer guarantees a matching child group");
                            for slot in 0..n_slots {
                                if child_codes[slot] != UNBOUND {
                                    codes[slot] = child_codes[slot];
                                }
                            }
                            count *= child_count;
                        }
                        let weight = weight_of(&codes);
                        (Arc::new(codes), weight, count)
                    })
                    .collect()
            });
        let mut msgs: Vec<Msg> = Vec::with_capacity(n_rows);
        for chunk in chunks {
            msgs.extend(chunk);
        }

        if node_id != ctx.root() {
            // Independent per-group weighted medians, fanned out in chunks;
            // each median folds its group's members in ascending row order.
            let entries: Vec<(&Key, &Vec<u32>)> = ctx.node(node_id).groups.iter().collect();
            let medians: Vec<Vec<Msg>> =
                qjoin_par::par_map_chunks(entries.len(), qjoin_par::DEFAULT_CHUNK, |_, range| {
                    range
                        .map(|g| {
                            let items: Vec<(Candidate, u128)> = entries[g]
                                .1
                                .iter()
                                .map(|&i| {
                                    let (codes, weight, count) = &msgs[i as usize];
                                    ((Arc::clone(codes), weight.clone()), *count)
                                })
                                .collect();
                            let total: u128 = items.iter().map(|(_, c)| c).sum();
                            let median = weighted_median_by(&items, &cmp);
                            (median.0, median.1, total)
                        })
                        .collect()
                });
            let mut groups: HashMap<Key, Msg> = HashMap::with_capacity(entries.len());
            let mut flat = medians.into_iter().flatten();
            for (key, _) in entries {
                groups.insert(key.clone(), flat.next().expect("one median per group"));
            }
            per_group[node_id] = groups;
        }
        per_tuple[node_id] = msgs;
    }

    // The artificial root V_0 = ∅: the final pivot is the weighted median of the
    // root rows' pivots.
    let root = ctx.root();
    let items: Vec<(Candidate, u128)> = per_tuple[root]
        .iter()
        .map(|(codes, weight, count)| ((Arc::clone(codes), weight.clone()), *count))
        .collect();
    let total: u128 = items.iter().map(|(_, c)| c).sum();
    let median = weighted_median_by(&items, &cmp);
    let weight = median.1;

    // Decode the pivot at the boundary. Synthesized variables decode to their raw
    // code (they are dropped by the projection onto the original variables anyway);
    // base variables decode through the dictionary.
    let dict_space = dictionary_space_mask(instance, &sorted_vars);
    let assignment = Assignment::from_pairs(
        sorted_vars
            .iter()
            .enumerate()
            .filter(|&(slot, _)| median.0[slot] != UNBOUND)
            .map(|(slot, var)| {
                let code = median.0[slot];
                let value = if dict_space[slot] {
                    instance.dictionary().decode(code).clone()
                } else {
                    Value::Int(code as i64)
                };
                (var.clone(), value)
            }),
    );
    Ok(PivotResult {
        assignment,
        weight,
        c: pivot_quality(ctx.tree()),
        total_answers: total,
    })
}

/// For each variable (in `sorted_vars` order): true when its codes live in the
/// dictionary space, i.e. it occurs at a *base* column position of some atom.
/// Synthesized variables only ever occur at synthesized (appended) positions.
fn dictionary_space_mask(instance: &EncodedInstance, sorted_vars: &[Variable]) -> Vec<bool> {
    sorted_vars
        .iter()
        .map(|var| {
            instance
                .query()
                .atoms()
                .iter()
                .enumerate()
                .find_map(|(atom_idx, atom)| {
                    atom.positions_of(var)
                        .first()
                        .map(|&pos| pos < instance.relation_of_atom(atom_idx).base_arity())
                })
                .unwrap_or(true)
        })
        .collect()
}
