//! Per-code weight tables: `w_x(decode(code))` precomputed per weighted variable.
//!
//! The row path re-evaluates `ranking.var_weight(var, value)` per tuple per trim
//! round. On the encoded path every weighted variable's weight function is applied
//! **once per dictionary code** at solve start; the hot loops then index a flat
//! `Vec<f64>`. The tables produce bit-identical `f64`s to the row path (same weight
//! function applied to the same decoded value), which is what keeps the two paths'
//! pivots and partition counts pointwise equal.

use qjoin_data::Dictionary;
use qjoin_query::Variable;
use qjoin_ranking::{AggregateKind, Ranking, Weight};
use std::collections::HashMap;

/// Precomputed `code → weight` tables for every weighted variable of a ranking.
#[derive(Clone, Debug)]
pub(crate) struct CodeWeights {
    tables: HashMap<Variable, Vec<f64>>,
}

impl CodeWeights {
    /// Applies each weighted variable's weight function to every dictionary value.
    /// The per-code fold is chunked over the executor pool; each code's weight is
    /// computed independently and the chunks concatenate in canonical order, so
    /// the tables are bit-identical at any thread count.
    pub(crate) fn build(dictionary: &Dictionary, ranking: &Ranking) -> CodeWeights {
        let values = dictionary.values();
        let mut tables = HashMap::with_capacity(ranking.weighted_vars().len());
        for var in ranking.weighted_vars() {
            if tables.contains_key(var) {
                continue;
            }
            let chunks: Vec<Vec<f64>> =
                qjoin_par::par_map_chunks(values.len(), qjoin_par::DEFAULT_CHUNK, |_, range| {
                    range
                        .map(|code| ranking.var_weight(var, &values[code]))
                        .collect()
                });
            let mut table: Vec<f64> = Vec::with_capacity(values.len());
            for chunk in chunks {
                table.extend(chunk);
            }
            tables.insert(var.clone(), table);
        }
        CodeWeights { tables }
    }

    /// The weight `w_var(decode(code))`. Only valid for dictionary codes of weighted
    /// variables (synthesized variables are never weighted).
    #[inline]
    pub(crate) fn code_weight(&self, var: &Variable, code: u64) -> f64 {
        self.tables[var][code as usize]
    }

    /// One variable's whole per-code table. Hot loops resolve the table once and
    /// index it directly instead of re-hashing the variable per answer.
    pub(crate) fn table(&self, var: &Variable) -> &[f64] {
        &self.tables[var]
    }
}

/// The contribution of binding one weighted variable to a value of weight `w` —
/// mirrors [`Ranking::contribution`] with the weight already computed, so the
/// encoded path's canonical weight folds equal the row path's bit for bit.
pub(crate) fn contribution(ranking: &Ranking, var: &Variable, w: f64) -> Weight {
    match ranking.kind() {
        AggregateKind::Sum | AggregateKind::Min | AggregateKind::Max => Weight::Num(w),
        AggregateKind::Lex => {
            let mut vec = vec![0.0; ranking.weighted_vars().len()];
            if let Some(pos) = ranking.weighted_vars().iter().position(|v| v == var) {
                vec[pos] = w;
            }
            Weight::Vec(vec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::variable::vars;
    use qjoin_ranking::WeightFn;

    #[test]
    fn tables_match_direct_weighting() {
        let r = Relation::from_rows("R", &[&[3, 10], &[5, 20]]).unwrap();
        let db = Database::from_relations([r]).unwrap();
        let dict = Dictionary::from_database(&db);
        let ranking = Ranking::sum(vars(&["x", "y"])).with_weight_fn(
            Variable::new("y"),
            WeightFn::Affine {
                scale: 2.0,
                offset: 1.0,
            },
        );
        let weights = CodeWeights::build(&dict, &ranking);
        for value in dict.values() {
            let code = dict.encode(value).unwrap();
            for var in ranking.weighted_vars() {
                assert_eq!(
                    weights.code_weight(var, code).to_bits(),
                    ranking.var_weight(var, value).to_bits()
                );
            }
        }
    }

    #[test]
    fn contribution_mirrors_ranking() {
        let ranking = Ranking::lex(vars(&["a", "b"]));
        let got = contribution(&ranking, &Variable::new("b"), 7.0);
        assert_eq!(
            got,
            ranking.contribution(&Variable::new("b"), &Value::from(7))
        );
    }
}
