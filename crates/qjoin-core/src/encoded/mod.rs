//! The encoded execution layer: the §3 recursion over dictionary codes and
//! selection-vector views.
//!
//! This module wires the encoded substrate into the quantile driver:
//!
//! * `weights` precomputes per-code weight tables for the ranking;
//! * `trim` rebuilds the Section 5 trimmings as view rewrites (selection vectors,
//!   tagged segments, packed dyadic-interval columns);
//! * `pivot` runs Algorithm 2 over flat code rows;
//! * this file provides the solve-backend implementation plus the public entry
//!   points [`exact_quantile_encoded`] and [`exact_quantile_batch_encoded`].
//!
//! The encoded path is the **default** for exact solves (see [`crate::solver`]);
//! its answers are pointwise identical to the row path's — same pivots, same
//! partition counts, same final answer — which the cross-crate equivalence suite
//! asserts over random instances, all ranking families, and boundary φ values.
//! Constructions the encoded representation cannot express (e.g. more dyadic join
//! groups than the packed interval code holds) surface as
//! [`CoreError::EncodedUnsupported`], and callers fall back to the row path.

pub(crate) mod pivot;
pub(crate) mod trim;
pub(crate) mod weights;

pub use trim::ExactStrategy;

use crate::pivot::PivotResult;
use crate::quantile::{
    quantile_by_pivoting_backend, PivotingOptions, QuantileResult, SolveBackend,
};
use crate::{CoreError, Result};
use qjoin_data::Value;
use qjoin_exec::encoded::{self as exec_encoded, EncodedContext};
use qjoin_query::{EncodedInstance, Variable};
use qjoin_ranking::{RankPredicate, Ranking, Weight};
use weights::{contribution, CodeWeights};

/// The encoded solve backend: counts, pivots, trims, and materializes over an
/// [`EncodedInstance`], decoding only at the answer boundary.
pub(crate) struct EncodedBackend<'a> {
    ranking: &'a Ranking,
    strategy: ExactStrategy,
    weights: CodeWeights,
}

impl<'a> EncodedBackend<'a> {
    /// Builds the backend for one solve: derives the strategy from the ranking kind
    /// and precomputes the per-code weight tables.
    pub(crate) fn new(instance: &EncodedInstance, ranking: &'a Ranking) -> EncodedBackend<'a> {
        EncodedBackend {
            ranking,
            strategy: ExactStrategy::for_ranking(ranking),
            weights: CodeWeights::build(instance.dictionary(), ranking),
        }
    }
}

impl SolveBackend for EncodedBackend<'_> {
    type Inst = EncodedInstance;

    fn count(&self, instance: &EncodedInstance) -> Result<u128> {
        Ok(exec_encoded::count_answers(instance)?)
    }

    fn database_size(&self, instance: &EncodedInstance) -> usize {
        instance.total_rows()
    }

    fn select_pivot(&self, instance: &EncodedInstance) -> Result<PivotResult> {
        pivot::select_pivot_encoded(instance, self.ranking, &self.weights)
    }

    fn trim(
        &self,
        instance: &EncodedInstance,
        predicate: &RankPredicate,
    ) -> Result<EncodedInstance> {
        trim::exact_trim_encoded(
            instance,
            self.ranking,
            predicate,
            self.strategy,
            &self.weights,
        )
    }

    fn keyed_answers(
        &self,
        instance: &EncodedInstance,
        original_vars: &[Variable],
    ) -> Result<Vec<(Weight, Vec<Value>)>> {
        keyed_answers_encoded(instance, self.ranking, &self.weights, original_vars)
    }
}

/// Enumerates an encoded instance's answers as `(weight, projected values)` pairs:
/// the encoded twin of the row path's `materialized_keyed_answers`. Weights fold in
/// the ranking's canonical order; only the original variables are decoded.
fn keyed_answers_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    weights: &CodeWeights,
    original_vars: &[Variable],
) -> Result<Vec<(Weight, Vec<Value>)>> {
    let ctx = EncodedContext::build(instance)?;
    let schema = ctx.query().variables();
    let weighted_positions: Vec<(usize, &Variable)> = ranking
        .weighted_vars()
        .iter()
        .filter_map(|v| schema.iter().position(|s| s == v).map(|p| (p, v)))
        .collect();
    let projected_positions: Vec<usize> = original_vars
        .iter()
        .map(|v| {
            schema
                .iter()
                .position(|s| s == v)
                .expect("trimmed queries retain the original variables")
        })
        .collect();
    let dictionary = instance.dictionary();
    let mut out = Vec::new();
    exec_encoded::for_each_answer_codes(&ctx, |codes| {
        let mut weight = ranking.identity();
        for &(pos, var) in &weighted_positions {
            weight = ranking.combine(
                &weight,
                &contribution(ranking, var, weights.code_weight(var, codes[pos])),
            );
        }
        let projected: Vec<Value> = projected_positions
            .iter()
            .map(|&p| dictionary.decode(codes[p]).clone())
            .collect();
        out.push((weight, projected));
    });
    Ok(out)
}

/// Computes an exact `φ`-quantile over an already-encoded instance (the engine's
/// prepared-plan path: encode once per catalog generation, solve many times).
///
/// Results are pointwise identical to
/// [`quantile_by_pivoting`](crate::quantile::quantile_by_pivoting) with the
/// corresponding exact trimmer. Returns [`CoreError::EncodedUnsupported`] when the
/// instance exceeds the encoded representation; callers fall back to the row path.
pub fn exact_quantile_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phi: f64,
    options: &PivotingOptions,
) -> Result<QuantileResult> {
    let backend = EncodedBackend::new(instance, ranking);
    let original_vars = instance.query().variables();
    quantile_by_pivoting_backend(
        &backend,
        instance,
        phi,
        options,
        &original_vars,
        &crate::trace::NoopTracer,
    )
}

/// Batched multi-φ variant of [`exact_quantile_encoded`]: one shared recursion for
/// all fractions, pointwise identical to independent encoded solves (and to the row
/// path's batch solver).
pub fn exact_quantile_batch_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    options: &PivotingOptions,
) -> Result<Vec<QuantileResult>> {
    exact_quantile_batch_encoded_traced(instance, ranking, phis, options, &crate::trace::NoopTracer)
}

/// [`exact_quantile_batch_encoded`] with per-phase timing reported to `tracer` (see
/// [`crate::trace`]). Results are identical to the untraced entry point.
pub fn exact_quantile_batch_encoded_traced(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    options: &PivotingOptions,
    tracer: &dyn crate::trace::SolveTracer,
) -> Result<Vec<QuantileResult>> {
    let backend = EncodedBackend::new(instance, ranking);
    let original_vars = instance.query().variables();
    crate::batch::quantile_batch_backend(&backend, instance, phis, options, &original_vars, tracer)
}

/// Convenience: encode a row instance and solve on the encoded path, surfacing any
/// encoding failure as [`CoreError::EncodedUnsupported`].
pub fn encode_instance(instance: &qjoin_query::Instance) -> Result<EncodedInstance> {
    EncodedInstance::from_instance(instance)
        .map_err(|e| CoreError::EncodedUnsupported(e.to_string()))
}

/// The encoded-default dispatch policy, stated once for every caller (solver and
/// engine, single-φ and batch): keep the encoded result unless the encoded
/// representation was [unsupported](CoreError::EncodedUnsupported), in which case
/// run the row fallback; every other error propagates.
pub fn or_row_fallback<T>(encoded: Result<T>, row: impl FnOnce() -> Result<T>) -> Result<T> {
    match encoded {
        Err(CoreError::EncodedUnsupported(_)) => row(),
        other => other,
    }
}
