//! The encoded execution layer: the §3 recursion over dictionary codes and
//! selection-vector views.
//!
//! This module wires the encoded substrate into the quantile driver:
//!
//! * `weights` precomputes per-code weight tables for the ranking;
//! * `trim` rebuilds the Section 5 trimmings as view rewrites (selection vectors,
//!   tagged segments, packed dyadic-interval columns);
//! * `pivot` runs Algorithm 2 over flat code rows;
//! * this file provides the solve-backend implementation plus the public entry
//!   points [`exact_quantile_encoded`] and [`exact_quantile_batch_encoded`].
//!
//! The encoded path is the **default** for exact solves (see [`crate::solver`]);
//! its answers are pointwise identical to the row path's — same pivots, same
//! partition counts, same final answer — which the cross-crate equivalence suite
//! asserts over random instances, all ranking families, and boundary φ values.
//! Constructions the encoded representation cannot express (e.g. more dyadic join
//! groups than the packed interval code holds) surface as
//! [`CoreError::EncodedUnsupported`], and callers fall back to the row path.

pub(crate) mod lossy;
pub(crate) mod pivot;
pub(crate) mod trim;
pub(crate) mod weights;

pub use trim::ExactStrategy;

use crate::pivot::PivotResult;
use crate::quantile::{
    quantile_by_pivoting_backend, PivotingOptions, QuantileResult, SolveBackend,
};
use crate::{CoreError, Result};
use qjoin_exec::encoded::{self as exec_encoded};
use qjoin_query::{Assignment, EncodedInstance, Variable};
use qjoin_ranking::{AggregateKind, RankPredicate, Ranking, Weight};
use weights::{contribution, CodeWeights};

/// How many projected codes a [`CodeKey`] stores without a heap allocation.
/// Sized for the workloads' widest projections (the star schema projects five
/// variables); wider queries spill to a `Vec`.
const CODE_KEY_INLINE: usize = 6;

/// A leaf answer key: the answer's projected dictionary codes. Keys up to
/// [`CODE_KEY_INLINE`] codes wide live inline — at a million answers per leaf,
/// a heap allocation per key is the difference between a compare walking a
/// contiguous buffer and one chasing a pointer per candidate.
///
/// Ordering (and equality) is the lexicographic order of the code slice,
/// regardless of representation; codes are order-preserving, so this equals the
/// row path's projected-value order.
#[derive(Clone, Debug)]
pub(crate) enum CodeKey {
    Inline {
        len: u8,
        buf: [u64; CODE_KEY_INLINE],
    },
    Heap(Vec<u64>),
}

impl CodeKey {
    fn from_iter_of_len(len: usize, codes: impl Iterator<Item = u64>) -> CodeKey {
        if len <= CODE_KEY_INLINE {
            let mut buf = [0u64; CODE_KEY_INLINE];
            for (slot, code) in buf.iter_mut().zip(codes) {
                *slot = code;
            }
            CodeKey::Inline {
                len: len as u8,
                buf,
            }
        } else {
            CodeKey::Heap(codes.collect())
        }
    }

    pub(crate) fn as_slice(&self) -> &[u64] {
        match self {
            CodeKey::Inline { len, buf } => &buf[..*len as usize],
            CodeKey::Heap(v) => v,
        }
    }
}

impl PartialEq for CodeKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for CodeKey {}

impl PartialOrd for CodeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CodeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// The encoded solve backend: counts, pivots, trims, and materializes over an
/// [`EncodedInstance`], decoding only at the answer boundary.
pub(crate) struct EncodedBackend<'a> {
    ranking: &'a Ranking,
    strategy: ExactStrategy,
    weights: CodeWeights,
    dictionary: std::sync::Arc<qjoin_data::Dictionary>,
}

impl<'a> EncodedBackend<'a> {
    /// Builds the backend for one solve: derives the strategy from the ranking kind
    /// and precomputes the per-code weight tables.
    pub(crate) fn new(instance: &EncodedInstance, ranking: &'a Ranking) -> EncodedBackend<'a> {
        EncodedBackend {
            ranking,
            strategy: ExactStrategy::for_ranking(ranking),
            weights: CodeWeights::build(instance.dictionary(), ranking),
            dictionary: std::sync::Arc::clone(instance.dictionary()),
        }
    }
}

impl SolveBackend for EncodedBackend<'_> {
    type Inst = EncodedInstance;

    fn count(&self, instance: &EncodedInstance) -> Result<u128> {
        Ok(exec_encoded::count_answers(instance)?)
    }

    fn database_size(&self, instance: &EncodedInstance) -> usize {
        instance.total_rows()
    }

    fn select_pivot(&self, instance: &EncodedInstance) -> Result<PivotResult> {
        pivot::select_pivot_encoded(instance, self.ranking, &self.weights)
    }

    fn trim(
        &self,
        instance: &EncodedInstance,
        predicate: &RankPredicate,
    ) -> Result<EncodedInstance> {
        trim::exact_trim_encoded(
            instance,
            self.ranking,
            predicate,
            self.strategy,
            &self.weights,
        )
    }

    type Key = CodeKey;

    fn keyed_answers(
        &self,
        instance: &EncodedInstance,
        original_vars: &[Variable],
    ) -> Result<Vec<(Weight, CodeKey)>> {
        keyed_answers_encoded(instance, self.ranking, &self.weights, original_vars)
    }

    fn answer_from_key(&self, original_vars: &[Variable], key: &CodeKey) -> Assignment {
        decode_answer_key(&self.dictionary, original_vars, key.as_slice())
    }
}

/// Enumerates an encoded instance's answers as `(weight, projected codes)` pairs:
/// the encoded twin of the row path's `materialized_keyed_answers`. Weights fold
/// in the ranking's canonical order. Nothing is decoded here: the dictionary's
/// codes are order-preserving, so the projected code vectors sort exactly like
/// the projected value vectors would — the leaf selection runs entirely in code
/// space and only the answers actually selected are decoded
/// (via [`decode_answer_key`]).
fn keyed_answers_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    weights: &CodeWeights,
    original_vars: &[Variable],
) -> Result<Vec<(Weight, CodeKey)>> {
    let ctx = exec_encoded::shared_context(instance)?;
    let schema = ctx.query().variables();
    let weighted_positions: Vec<(usize, &Variable, &[f64])> = ranking
        .weighted_vars()
        .iter()
        .filter_map(|v| {
            schema
                .iter()
                .position(|s| s == v)
                .map(|p| (p, v, weights.table(v)))
        })
        .collect();
    let projected_positions: Vec<usize> = original_vars
        .iter()
        .map(|v| {
            schema
                .iter()
                .position(|s| s == v)
                .expect("trimmed queries retain the original variables")
        })
        .collect();
    // The per-answer weight fold, with a direct-`f64` fast path for SUM (by far
    // the hottest ranking at this leaf): `0.0 + w_1 + ... + w_m` in weighted-var
    // order is exactly the generic `identity`/`combine` fold, bit for bit.
    let sum_fold = matches!(ranking.kind(), AggregateKind::Sum);
    let fold = |codes: &[u64]| -> Weight {
        if sum_fold {
            let mut s = 0.0f64;
            for &(pos, _, table) in &weighted_positions {
                s += table[codes[pos] as usize];
            }
            Weight::Num(s)
        } else {
            let mut weight = ranking.identity();
            for &(pos, var, table) in &weighted_positions {
                weight = ranking.combine(
                    &weight,
                    &contribution(ranking, var, table[codes[pos] as usize]),
                );
            }
            weight
        }
    };
    // Enumerate in root-row chunks over the executor pool: each chunk's answers
    // accumulate locally and the chunks concatenate in canonical order, so the
    // result is the exact sequence the sequential walk produces (and therefore
    // the leaf selection sees identical candidates at any thread count).
    let key_width = projected_positions.len();
    let chunks = exec_encoded::map_answer_code_chunks(
        &ctx,
        qjoin_par::DEFAULT_CHUNK,
        Vec::new,
        |out: &mut Vec<(Weight, CodeKey)>, codes| {
            let key =
                CodeKey::from_iter_of_len(key_width, projected_positions.iter().map(|&p| codes[p]));
            out.push((fold(codes), key));
        },
    );
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for chunk in chunks {
        out.extend(chunk);
    }
    Ok(out)
}

/// Decodes one selected leaf key back to an [`Assignment`] over the original
/// variables — the encoded paths' single decode point per leaf target.
pub(crate) fn decode_answer_key(
    dictionary: &qjoin_data::Dictionary,
    original_vars: &[Variable],
    key: &[u64],
) -> Assignment {
    Assignment::from_pairs(
        original_vars
            .iter()
            .cloned()
            .zip(key.iter().map(|&code| dictionary.decode(code).clone())),
    )
}

/// Computes an exact `φ`-quantile over an already-encoded instance (the engine's
/// prepared-plan path: encode once per catalog generation, solve many times).
///
/// Results are pointwise identical to
/// [`quantile_by_pivoting`](crate::quantile::quantile_by_pivoting) with the
/// corresponding exact trimmer. Returns [`CoreError::EncodedUnsupported`] when the
/// instance exceeds the encoded representation; callers fall back to the row path.
pub fn exact_quantile_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phi: f64,
    options: &PivotingOptions,
) -> Result<QuantileResult> {
    let backend = EncodedBackend::new(instance, ranking);
    let original_vars = instance.query().variables();
    quantile_by_pivoting_backend(
        &backend,
        instance,
        phi,
        options,
        &original_vars,
        &crate::trace::NoopTracer,
    )
}

/// Batched multi-φ variant of [`exact_quantile_encoded`]: one shared recursion for
/// all fractions, pointwise identical to independent encoded solves (and to the row
/// path's batch solver).
pub fn exact_quantile_batch_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    options: &PivotingOptions,
) -> Result<Vec<QuantileResult>> {
    exact_quantile_batch_encoded_traced(instance, ranking, phis, options, &crate::trace::NoopTracer)
}

/// [`exact_quantile_batch_encoded`] with per-phase timing reported to `tracer` (see
/// [`crate::trace`]). Results are identical to the untraced entry point.
pub fn exact_quantile_batch_encoded_traced(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    options: &PivotingOptions,
    tracer: &dyn crate::trace::SolveTracer,
) -> Result<Vec<QuantileResult>> {
    let backend = EncodedBackend::new(instance, ranking);
    let original_vars = instance.query().variables();
    crate::batch::quantile_batch_backend(&backend, instance, phis, options, &original_vars, tracer)
}

/// Computes an ε-approximate SUM `φ`-quantile over an encoded instance: the same
/// pivoting driver as [`exact_quantile_encoded`], but every trim runs the encoded
/// ε-lossy construction (Algorithm 4 over selection-vector views).
///
/// `per_trim_epsilon` is the *per-invocation* loss budget — callers (see
/// [`crate::solver::approximate_sum_quantile`]) divide the end-to-end ε across
/// the expected trim count. Answers are pointwise identical to the row path's
/// [`LossySumTrimmer`](crate::lossy_trim::LossySumTrimmer) solve.
pub fn approximate_sum_quantile_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phi: f64,
    per_trim_epsilon: f64,
    options: &PivotingOptions,
) -> Result<QuantileResult> {
    let backend = lossy::ApproxSumBackend::new(instance, ranking, per_trim_epsilon);
    let original_vars = instance.query().variables();
    quantile_by_pivoting_backend(
        &backend,
        instance,
        phi,
        options,
        &original_vars,
        &crate::trace::NoopTracer,
    )
}

/// Batched multi-φ variant of [`approximate_sum_quantile_encoded`]: one shared
/// recursion for all fractions.
pub fn approximate_sum_quantile_batch_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    per_trim_epsilon: f64,
    options: &PivotingOptions,
) -> Result<Vec<QuantileResult>> {
    approximate_sum_quantile_batch_encoded_traced(
        instance,
        ranking,
        phis,
        per_trim_epsilon,
        options,
        &crate::trace::NoopTracer,
    )
}

/// [`approximate_sum_quantile_batch_encoded`] with per-phase timing reported to
/// `tracer`. Results are identical to the untraced entry point.
pub fn approximate_sum_quantile_batch_encoded_traced(
    instance: &EncodedInstance,
    ranking: &Ranking,
    phis: &[f64],
    per_trim_epsilon: f64,
    options: &PivotingOptions,
    tracer: &dyn crate::trace::SolveTracer,
) -> Result<Vec<QuantileResult>> {
    let backend = lossy::ApproxSumBackend::new(instance, ranking, per_trim_epsilon);
    let original_vars = instance.query().variables();
    crate::batch::quantile_batch_backend(&backend, instance, phis, options, &original_vars, tracer)
}

/// Convenience: encode a row instance and solve on the encoded path, surfacing any
/// encoding failure as [`CoreError::EncodedUnsupported`].
pub fn encode_instance(instance: &qjoin_query::Instance) -> Result<EncodedInstance> {
    EncodedInstance::from_instance(instance)
        .map_err(|e| CoreError::EncodedUnsupported(e.to_string()))
}

/// The encoded-default dispatch policy, stated once for every caller (solver and
/// engine, single-φ and batch): keep the encoded result unless the encoded
/// representation was [unsupported](CoreError::EncodedUnsupported), in which case
/// run the row fallback; every other error propagates.
pub fn or_row_fallback<T>(encoded: Result<T>, row: impl FnOnce() -> Result<T>) -> Result<T> {
    match encoded {
        Err(CoreError::EncodedUnsupported(_)) => row(),
        other => other,
    }
}
