//! Encoded trimming: the Section 5 constructions producing selection-vector views.
//!
//! Each trimmer here is the encoded twin of a row trimmer in [`crate::trim`]: it
//! reduces the predicate with the *same* shared partition plan (or the same adjacent
//! cover for SUM), then rewrites the encoded instance by building views instead of
//! materialized relations:
//!
//! * a unary filter becomes a **selection vector** over the shared base columns;
//! * the partition union becomes one **tagged segment per partition** (the tag is a
//!   constant synthesized column — no tuple is extended, let alone copied);
//! * the dyadic SUM construction becomes a selection vector **with repeats** plus a
//!   per-row synthesized column of packed `(group, level, index)` interval codes,
//!   bit-packed so that code order equals the row path's composite-value order.
//!
//! Because both paths share the partition plans and the cover search, they partition
//! the answer set identically; the equivalence suite asserts the resulting quantile
//! answers are pointwise equal.

use super::weights::CodeWeights;
use crate::dichotomy::{classify_partial_sum, find_adjacent_cover, SumClassification};
use crate::trim::lex::lex_partition_plan;
use crate::trim::minmax::minmax_partition_plan;
use crate::trim::sum::{check_sum_ranking, dyadic_cover, levels_for, scalar_bound};
use crate::trim::{TrimPlan, UnaryConjunction, UnaryWeightPred};
use crate::{CoreError, Result};
use qjoin_data::{EncodedRelation, Segment, SynthCol};
use qjoin_exec::Key;
use qjoin_query::{Atom, EncodedInstance, Variable};
use qjoin_ranking::{CmpOp, RankPredicate, Ranking, SumTupleWeights};
use std::collections::HashMap;
use std::sync::Arc;

/// The exact trimming family a prepared encoded solve uses (the encoded analogue of
/// selecting a concrete [`Trimmer`](crate::trim::Trimmer) implementation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactStrategy {
    /// MIN/MAX partition-union trimming (Theorem 5.3).
    MinMax,
    /// LEX partition-union trimming (Section 5.2).
    Lex,
    /// Tractable partial-SUM trimming (single atom or adjacent pair, Theorem 5.6).
    Sum,
}

impl ExactStrategy {
    /// The strategy serving a ranking kind (SUM tractability is re-checked per trim
    /// call against the current rewritten query, exactly like the row trimmer).
    pub fn for_ranking(ranking: &Ranking) -> ExactStrategy {
        match ranking.kind() {
            qjoin_ranking::AggregateKind::Min | qjoin_ranking::AggregateKind::Max => {
                ExactStrategy::MinMax
            }
            qjoin_ranking::AggregateKind::Lex => ExactStrategy::Lex,
            qjoin_ranking::AggregateKind::Sum => ExactStrategy::Sum,
        }
    }
}

/// Trims an encoded instance by the given predicate, producing a new encoded
/// instance whose answers are exactly the original answers satisfying it.
pub(crate) fn exact_trim_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    predicate: &RankPredicate,
    strategy: ExactStrategy,
    weights: &CodeWeights,
) -> Result<EncodedInstance> {
    if predicate.is_trivial() {
        return Ok(instance.clone());
    }
    if predicate.is_unsatisfiable() {
        return Ok(instance.empty_copy());
    }
    match strategy {
        ExactStrategy::MinMax => match minmax_partition_plan(ranking, predicate)? {
            TrimPlan::KeepAll => Ok(instance.clone()),
            TrimPlan::DropAll => Ok(instance.empty_copy()),
            TrimPlan::Partitions(partitions) => {
                partition_union_trim_encoded(instance, weights, &partitions)
            }
        },
        ExactStrategy::Lex => match lex_partition_plan(ranking, predicate)? {
            TrimPlan::KeepAll => Ok(instance.clone()),
            TrimPlan::DropAll => Ok(instance.empty_copy()),
            TrimPlan::Partitions(partitions) => {
                partition_union_trim_encoded(instance, weights, &partitions)
            }
        },
        ExactStrategy::Sum => sum_trim_encoded(instance, ranking, predicate, weights),
    }
}

/// The unary predicates of a conjunction that mention variables of `atom`, resolved
/// to the variable's first position (mirrors the row path's `filtered_database`).
fn relevant_predicates<'a>(
    atom: &Atom,
    conjunction: &'a UnaryConjunction,
) -> Vec<(usize, UnaryWeightPred, &'a Variable)> {
    conjunction
        .iter()
        .filter(|(var, _)| atom.contains(var))
        .map(|(var, pred)| (atom.positions_of(var)[0], *pred, var))
        .collect()
}

/// Filters a view by a conjunction of unary weight predicates (weights looked up
/// through the per-code tables).
fn filter_view(
    rel: &EncodedRelation,
    weights: &CodeWeights,
    relevant: &[(usize, UnaryWeightPred, &Variable)],
) -> EncodedRelation {
    rel.filtered(|seg, row| {
        relevant
            .iter()
            .all(|(pos, pred, var)| pred.holds(weights.code_weight(var, rel.code(seg, row, *pos))))
    })
}

/// The encoded partition-union construction (Algorithm 3's skeleton): one tagged
/// segment list per partition over shared base columns. Mirrors
/// [`crate::trim::partition_union_trim`] segment for segment.
fn partition_union_trim_encoded(
    instance: &EncodedInstance,
    weights: &CodeWeights,
    partitions: &[UnaryConjunction],
) -> Result<EncodedInstance> {
    if partitions.is_empty() {
        return Ok(instance.empty_copy());
    }
    let instance = instance.eliminate_self_joins()?;
    let query = instance.query().clone();

    if partitions.len() == 1 {
        // Independent per-atom filters (each itself chunk-parallel inside
        // `EncodedRelation::filtered`), gathered in atom order.
        let n_atoms = query.atoms().len();
        let filtered: Vec<Option<EncodedRelation>> = qjoin_par::par_map(n_atoms, |atom_idx| {
            let atom = &query.atoms()[atom_idx];
            let rel = instance.relation_of_atom(atom_idx);
            let relevant = relevant_predicates(atom, &partitions[0]);
            if relevant.is_empty() {
                None // untouched: shared by handle
            } else {
                Some(filter_view(rel, weights, &relevant))
            }
        });
        let replaced: Vec<EncodedRelation> = filtered.into_iter().flatten().collect();
        return Ok(instance.with_rewritten(query, replaced)?);
    }

    let query_vars = query.variable_set();
    let partition_var = Variable::fresh("x_p", query_vars.iter());
    let new_query = query.with_variable_everywhere(&partition_var);

    // Each atom's tagged segment list is built independently; results are
    // gathered in atom order (and segments within an atom in partition order),
    // so the rewritten views match the sequential construction exactly.
    let n_atoms = query.atoms().len();
    let rewritten: Vec<Result<EncodedRelation>> = qjoin_par::par_map(n_atoms, |atom_idx| {
        let atom = &query.atoms()[atom_idx];
        let rel = instance.relation_of_atom(atom_idx);
        let mut segments: Vec<Segment> = Vec::new();
        for (partition_idx, conjunction) in partitions.iter().enumerate() {
            let relevant = relevant_predicates(atom, conjunction);
            let filtered = if relevant.is_empty() {
                rel.clone()
            } else {
                filter_view(rel, weights, &relevant)
            };
            for seg in filtered.segments() {
                let mut synth = seg.synth.clone();
                synth.push(SynthCol::Const(partition_idx as u64));
                segments.push(Segment {
                    sel: seg.sel.clone(),
                    synth,
                });
            }
        }
        Ok(EncodedRelation::from_segments(
            rel.name(),
            Arc::clone(rel.base()),
            rel.synth_arity() + 1,
            segments,
        )?)
    });
    let mut replaced = Vec::with_capacity(n_atoms);
    for view in rewritten {
        replaced.push(view?);
    }
    Ok(instance.with_rewritten(new_query, replaced)?)
}

/// Encoded partial-SUM trimming: single-atom filter or the dyadic adjacent-pair
/// construction, selected per call by the same cover search as the row trimmer.
fn sum_trim_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    predicate: &RankPredicate,
    weights: &CodeWeights,
) -> Result<EncodedInstance> {
    check_sum_ranking(ranking)?;
    let bound = scalar_bound(predicate)?;
    let instance = instance.eliminate_self_joins()?;
    match find_adjacent_cover(instance.query(), ranking.weighted_vars()) {
        Some(cover) if cover.is_single_atom() => trim_single_atom_encoded(
            &instance,
            ranking,
            weights,
            predicate.op,
            bound,
            cover.atoms.0,
        ),
        Some(cover) => trim_adjacent_pair_encoded(
            &instance,
            ranking,
            weights,
            predicate.op,
            bound,
            cover.atoms,
        ),
        None => {
            let witness = classify_partial_sum(instance.query(), ranking.weighted_vars());
            Err(match witness {
                SumClassification::UnknownTooLarge => CoreError::QueryTooLarge {
                    atoms: instance.query().num_atoms(),
                    limit: qjoin_query::join_tree::MAX_ENUMERATION_ATOMS,
                },
                other => CoreError::IntractableSum(format!("{other:?}")),
            })
        }
    }
}

/// The weighted variables assigned to `atom_idx` by the tuple-weight mapping `μ`,
/// with their first positions — the same pairs, in the same order, as the row path's
/// [`SumTupleWeights`] evaluator.
fn weighted_pairs(
    query: &qjoin_query::JoinQuery,
    ranking: &Ranking,
    preferred: &[usize],
    atom_idx: usize,
) -> Vec<(Variable, usize)> {
    let tw = SumTupleWeights::with_preferred_atoms(query, ranking, preferred);
    tw.vars_of_atom(atom_idx)
        .map(|v| (v.clone(), query.atom(atom_idx).positions_of(v)[0]))
        .collect()
}

/// Prefix row offsets of a view's segments (`offsets[s]` is the global index of
/// segment `s`'s first row; the last entry is the total row count). Turns a
/// global row index into `(segment, row)` coordinates for chunked scans.
pub(super) fn segment_offsets(rel: &EncodedRelation) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(rel.segments().len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for seg in rel.segments() {
        total += seg.len();
        offsets.push(total);
    }
    offsets
}

/// The partial sum carried by one view row (mirrors `SumTupleWeights::tuple_sum`,
/// including the fold order).
#[inline]
pub(super) fn row_sum(
    rel: &EncodedRelation,
    weights: &CodeWeights,
    pairs: &[(Variable, usize)],
    seg: usize,
    row: usize,
) -> f64 {
    pairs
        .iter()
        .map(|(var, pos)| weights.code_weight(var, rel.code(seg, row, *pos)))
        .sum()
}

/// Filters the covering atom's view by its rows' partial sums.
fn trim_single_atom_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    weights: &CodeWeights,
    op: CmpOp,
    bound: f64,
    atom_idx: usize,
) -> Result<EncodedInstance> {
    let query = instance.query().clone();
    let pairs = weighted_pairs(&query, ranking, &[atom_idx], atom_idx);
    let rel = instance.relation_of_atom(atom_idx);
    let filtered = rel.filtered(|seg, row| {
        let s = row_sum(rel, weights, &pairs, seg, row);
        match op {
            CmpOp::Lt => s < bound,
            CmpOp::Gt => s > bound,
        }
    });
    Ok(instance.with_rewritten(query, [filtered])?)
}

/// Bit widths of the packed dyadic-interval code: `gid(26) | level(6) | index(32)`.
/// The field order makes packed-code order equal the row path's lexicographic
/// `(group, (level, index))` composite order; the gid cap keeps the maximum packed
/// value strictly below `u64::MAX` (the pivot layer's unbound sentinel).
const INTERVAL_GID_SHIFT: u64 = 38;
const INTERVAL_LEVEL_SHIFT: u64 = 32;
const INTERVAL_MAX_GID: u64 = (1 << 26) - 2;

fn pack_interval(gid: u64, level: u32, index: usize) -> Result<u64> {
    if gid > INTERVAL_MAX_GID {
        return Err(CoreError::EncodedUnsupported(format!(
            "dyadic SUM construction needs {gid} join groups; the packed interval \
             code supports at most {INTERVAL_MAX_GID}"
        )));
    }
    debug_assert!(level < 64);
    debug_assert!(index < (1usize << 32));
    Ok((gid << INTERVAL_GID_SHIFT) | (u64::from(level) << INTERVAL_LEVEL_SHIFT) | index as u64)
}

/// One B-side row of the dyadic construction: its partial sum, its global position
/// in the view (the row path's tuple index, used for the stable in-group sort), and
/// its `(segment, row)` coordinates for gathering.
struct BMember {
    sum: f64,
    global: u32,
    seg: u32,
    row: u32,
}

/// Accumulates the output rows of one rewritten view: base-row selections, gathered
/// pre-existing synthesized columns, and the fresh packed-interval column.
pub(super) struct ViewBuilder {
    sel: Vec<u32>,
    old_synth: Vec<Vec<u64>>,
    interval: Vec<u64>,
}

impl ViewBuilder {
    pub(super) fn new(synth_arity: usize) -> ViewBuilder {
        ViewBuilder {
            sel: Vec::new(),
            old_synth: vec![Vec::new(); synth_arity],
            interval: Vec::new(),
        }
    }

    pub(super) fn push(
        &mut self,
        rel: &EncodedRelation,
        seg: usize,
        row: usize,
        interval_code: u64,
    ) {
        let segment = &rel.segments()[seg];
        self.sel.push(segment.sel.get(row));
        for (k, col) in segment.synth.iter().enumerate() {
            self.old_synth[k].push(col.get(row));
        }
        self.interval.push(interval_code);
    }

    /// Appends another builder's rows (used to concatenate chunk-local partials
    /// in canonical chunk order).
    pub(super) fn append(&mut self, mut other: ViewBuilder) {
        self.sel.append(&mut other.sel);
        for (dst, mut src) in self.old_synth.iter_mut().zip(other.old_synth) {
            dst.append(&mut src);
        }
        self.interval.append(&mut other.interval);
    }

    pub(super) fn build(self, rel: &EncodedRelation) -> Result<EncodedRelation> {
        let mut synth: Vec<SynthCol> = self
            .old_synth
            .into_iter()
            .map(|codes| SynthCol::PerRow(Arc::new(codes)))
            .collect();
        synth.push(SynthCol::PerRow(Arc::new(self.interval)));
        let segment = Segment {
            sel: qjoin_data::SelVec::Rows(Arc::new(self.sel)),
            synth,
        };
        Ok(EncodedRelation::from_segments(
            rel.name(),
            Arc::clone(rel.base()),
            rel.synth_arity() + 1,
            vec![segment],
        )?)
    }
}

/// The dyadic prefix/suffix construction for an adjacent pair of atoms — the
/// encoded twin of the row path's `trim_adjacent_pair` (Lemma 5.5).
fn trim_adjacent_pair_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    weights: &CodeWeights,
    op: CmpOp,
    bound: f64,
    (atom_a, atom_b): (usize, usize),
) -> Result<EncodedInstance> {
    let query = instance.query().clone();
    let preferred = [atom_a, atom_b];
    let pairs_a = weighted_pairs(&query, ranking, &preferred, atom_a);
    let pairs_b = weighted_pairs(&query, ranking, &preferred, atom_b);

    // Join-key positions: the variables shared between the two atoms.
    let a_vars = query.atom(atom_a).variable_set();
    let b_vars = query.atom(atom_b).variable_set();
    let shared: Vec<Variable> = a_vars.intersection(&b_vars).cloned().collect();
    let key_pos_a: Vec<usize> = shared
        .iter()
        .map(|v| query.atom(atom_a).positions_of(v)[0])
        .collect();
    let key_pos_b: Vec<usize> = shared
        .iter()
        .map(|v| query.atom(atom_b).positions_of(v)[0])
        .collect();

    // Group B's rows by the join key and sort each group by partial sum (ties by
    // global row position, matching the row path's tuple-index tie-break). The
    // grouping pass is chunked over the executor pool; chunk-local maps merge in
    // canonical chunk order, keeping each group's members in global-row order
    // before the (total-ordered, hence order-insensitive) sort.
    let rel_b = instance.relation_of_atom(atom_b);
    let offsets_b = segment_offsets(rel_b);
    let total_b = *offsets_b.last().expect("offsets include the empty prefix");
    let chunk_maps: Vec<HashMap<Key, Vec<BMember>>> =
        qjoin_par::par_map_chunks(total_b, qjoin_par::DEFAULT_CHUNK, |_, range| {
            let mut local: HashMap<Key, Vec<BMember>> = HashMap::new();
            let mut key_buf: Vec<u64> = Vec::with_capacity(key_pos_b.len());
            let mut seg = offsets_b.partition_point(|&o| o <= range.start) - 1;
            for global in range {
                while global >= offsets_b[seg + 1] {
                    seg += 1;
                }
                let row = global - offsets_b[seg];
                key_buf.clear();
                key_buf.extend(key_pos_b.iter().map(|&p| rel_b.code(seg, row, p)));
                local
                    .entry(Key::from_codes(&key_buf))
                    .or_default()
                    .push(BMember {
                        sum: row_sum(rel_b, weights, &pairs_b, seg, row),
                        global: global as u32,
                        seg: seg as u32,
                        row: row as u32,
                    });
            }
            local
        });
    let mut groups: HashMap<Key, Vec<BMember>> = HashMap::new();
    for local in chunk_maps {
        for (key, members) in local {
            groups.entry(key).or_default().extend(members);
        }
    }
    for members in groups.values_mut() {
        members.sort_by(|a, b| a.sum.total_cmp(&b.sum).then(a.global.cmp(&b.global)));
    }
    // Stable per-group identifiers in sorted key order: the dictionary assigns codes
    // in value order, so this matches the row path's sorted `Vec<Value>` keys.
    let mut ordered_keys: Vec<&Key> = groups.keys().collect();
    ordered_keys.sort();
    let group_ids: HashMap<Key, u64> = ordered_keys
        .into_iter()
        .enumerate()
        .map(|(gid, key)| (key.clone(), gid as u64))
        .collect();

    // New variable v shared by the two atoms; its codes are packed interval ids.
    let query_vars = query.variable_set();
    let v = Variable::fresh("v_sum", query_vars.iter());
    let new_atom_a = query.atom(atom_a).with_extra_variable(v.clone());
    let new_atom_b = query.atom(atom_b).with_extra_variable(v.clone());
    let new_query = query
        .with_replaced_atom(atom_a, new_atom_a)
        .with_replaced_atom(atom_b, new_atom_b);

    // A-side: connect every A row to the dyadic cover of its qualifying range.
    // Rows are independent, so the scan is chunked; chunk-local builders are
    // appended in canonical chunk order (and the first packing error in scan
    // order wins), reproducing the sequential output exactly.
    let rel_a = instance.relation_of_atom(atom_a);
    let offsets_a = segment_offsets(rel_a);
    let total_a = *offsets_a.last().expect("offsets include the empty prefix");
    let a_parts: Vec<Result<ViewBuilder>> =
        qjoin_par::par_map_chunks(total_a, qjoin_par::DEFAULT_CHUNK, |_, range| {
            let mut part = ViewBuilder::new(rel_a.synth_arity());
            let mut key_buf: Vec<u64> = Vec::with_capacity(key_pos_a.len());
            let mut seg = offsets_a.partition_point(|&o| o <= range.start) - 1;
            for global in range {
                while global >= offsets_a[seg + 1] {
                    seg += 1;
                }
                let row = global - offsets_a[seg];
                key_buf.clear();
                key_buf.extend(key_pos_a.iter().map(|&p| rel_a.code(seg, row, p)));
                let key = Key::from_codes(&key_buf);
                let Some(members) = groups.get(&key) else {
                    continue;
                };
                let gid = group_ids[&key];
                let wa = row_sum(rel_a, weights, &pairs_a, seg, row);
                let threshold = bound - wa;
                let (lo, hi) = match op {
                    // w_A + w_B < λ ⇔ w_B < λ - w_A: the prefix of strictly smaller sums.
                    CmpOp::Lt => (0, members.partition_point(|m| m.sum < threshold)),
                    // w_A + w_B > λ ⇔ w_B > λ - w_A: the suffix of strictly larger sums.
                    CmpOp::Gt => (
                        members.partition_point(|m| m.sum <= threshold),
                        members.len(),
                    ),
                };
                for (level, index) in dyadic_cover(lo, hi) {
                    part.push(rel_a, seg, row, pack_interval(gid, level, index)?);
                }
            }
            Ok(part)
        });
    let mut new_a = ViewBuilder::new(rel_a.synth_arity());
    for part in a_parts {
        new_a.append(part?);
    }

    // B-side: every B row joins the interval containing its position, one copy per
    // level. Groups are walked in gid order, which is deterministic (the row path
    // walks its hash map in arbitrary order; the answer set is identical); the
    // per-group expansions are independent and chunked, appended in gid order.
    let mut sorted_groups: Vec<(&Key, &Vec<BMember>)> = groups.iter().collect();
    sorted_groups.sort_by_key(|(key, _)| group_ids[*key]);
    let b_parts: Vec<Result<ViewBuilder>> =
        qjoin_par::par_map_chunks(sorted_groups.len(), qjoin_par::DEFAULT_CHUNK, |_, range| {
            let mut part = ViewBuilder::new(rel_b.synth_arity());
            for g in range {
                let (key, members) = sorted_groups[g];
                let gid = group_ids[key];
                let levels = levels_for(members.len());
                for (pos, member) in members.iter().enumerate() {
                    for level in 0..=levels {
                        let code = pack_interval(gid, level, pos >> level)?;
                        part.push(rel_b, member.seg as usize, member.row as usize, code);
                    }
                }
            }
            Ok(part)
        });
    let mut new_b = ViewBuilder::new(rel_b.synth_arity());
    for part in b_parts {
        new_b.append(part?);
    }

    let new_a = new_a.build(rel_a)?;
    let new_b = new_b.build(rel_b)?;
    Ok(instance.with_rewritten(new_query, [new_a, new_b])?)
}
