//! Encoded ε-lossy trimming: Algorithm 4 over selection-vector views.
//!
//! This is the encoded twin of [`crate::lossy_trim::LossySumTrimmer`]. The
//! construction is step-for-step the same — binarize the join tree, push
//! ε′-sketches of partial-sum multisets through every edge, rewire children to
//! their sketch bucket via a fresh `v_RS` variable, drop root rows violating the
//! inequality — but every rewritten relation is a selection-vector view over the
//! shared code columns (the bucket id rides in a synthesized per-row column)
//! instead of a materialized copy.
//!
//! **Pointwise identity with the row path.** Both paths produce literally the
//! same rewritten query and the same answer multiset, because every source of
//! ordering is deterministic and shared:
//!
//! * join groups are processed in sorted key order on both sides, and the
//!   dictionary's codes are order-preserving, so sorted code keys enumerate the
//!   same groups in the same order as sorted value keys (synthesized `v_RS`
//!   codes are nonnegative counters on both sides, so mixed keys agree too);
//! * within a group, members are fed to the sketch in ascending row order, and
//!   the sketch's stable sort makes tie-breaks identical;
//! * bucket ids come from one shared counter walked in that same order.
//!
//! The equivalence suite asserts the resulting quantile answers are pointwise
//! equal across paths, thread counts, and boundary φ values.

use super::trim::{row_sum, segment_offsets, ViewBuilder};
use super::weights::CodeWeights;
use crate::sketch::{sketch, RoundDirection, SketchEntry};
use crate::{CoreError, Result};
use qjoin_data::EncodedRelation;
use qjoin_exec::Key;
use qjoin_query::{binary, Atom, EncodedInstance, JoinQuery, Variable};
use qjoin_ranking::{AggregateKind, CmpOp, RankPredicate, Ranking, SumTupleWeights};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Per-node state during the bottom-up pass: the (growing) atom, its view, and
/// the per-row annotations `σ_s` / `σ_m` in view scan order.
struct NodeState {
    atom: Atom,
    view: EncodedRelation,
    sums: Vec<f64>,
    mults: Vec<u128>,
}

/// The weighted `(variable, position)` pairs the mapping `μ` assigns to `atom_idx`
/// — the same pairs, in the same fold order, as the row path's
/// [`SumTupleWeights::tuple_sum`].
fn leaf_pairs(
    query: &JoinQuery,
    tuple_weights: &SumTupleWeights,
    atom_idx: usize,
) -> Vec<(Variable, usize)> {
    tuple_weights
        .vars_of_atom(atom_idx)
        .map(|v| (v.clone(), query.atom(atom_idx).positions_of(v)[0]))
        .collect()
}

/// Trims an encoded instance with the ε-lossy SUM construction (Algorithm 4),
/// producing a new encoded instance. Mirrors
/// [`LossySumTrimmer::trim`](crate::lossy_trim::LossySumTrimmer) exactly; see the
/// module docs for why the outputs are pointwise identical.
pub(crate) fn lossy_sum_trim_encoded(
    instance: &EncodedInstance,
    ranking: &Ranking,
    predicate: &RankPredicate,
    epsilon: f64,
    weights: &CodeWeights,
) -> Result<EncodedInstance> {
    if predicate.is_trivial() {
        return Ok(instance.clone());
    }
    if predicate.is_unsatisfiable() {
        return Ok(instance.empty_copy());
    }
    if ranking.kind() != AggregateKind::Sum {
        return Err(CoreError::UnsupportedRanking(format!(
            "LossySumTrimmer cannot trim {:?} predicates",
            ranking.kind()
        )));
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CoreError::InvalidEpsilon(epsilon));
    }
    let bound = predicate
        .finite_bound()
        .and_then(|w| w.as_num())
        .ok_or_else(|| {
            CoreError::UnsupportedPredicate("SUM trimming requires a scalar bound".to_string())
        })?;

    let instance = instance.eliminate_self_joins()?;
    let binarized = binary::binarize_encoded(&instance)?;
    let query = binarized.instance.query().clone();
    let tree = binarized.tree;
    let ell = query.num_atoms().max(1);
    let eps_prime = (epsilon / (4.0 * ell as f64)).clamp(1e-9, 0.999_999);
    let direction = match predicate.op {
        CmpOp::Lt => RoundDirection::Up,
        CmpOp::Gt => RoundDirection::Down,
    };

    let tuple_weights = SumTupleWeights::new(&query, ranking);

    // Leaf annotations: per-row partial sums (chunked over the pool, gathered in
    // canonical chunk order) and unit multiplicities.
    let mut states: Vec<NodeState> = (0..tree.num_nodes())
        .map(|node| {
            let atom_idx = tree.node(node).atom_index;
            let atom = query.atom(atom_idx).clone();
            let view = binarized.instance.relation_of_atom(atom_idx).clone();
            let pairs = leaf_pairs(&query, &tuple_weights, atom_idx);
            let offsets = segment_offsets(&view);
            let total = *offsets.last().expect("offsets include the empty prefix");
            let chunks: Vec<Vec<f64>> =
                qjoin_par::par_map_chunks(total, qjoin_par::DEFAULT_CHUNK, |_, range| {
                    let mut local = Vec::with_capacity(range.len());
                    let mut seg = offsets.partition_point(|&o| o <= range.start) - 1;
                    for global in range {
                        while global >= offsets[seg + 1] {
                            seg += 1;
                        }
                        let row = global - offsets[seg];
                        local.push(row_sum(&view, weights, &pairs, seg, row));
                    }
                    local
                });
            let sums: Vec<f64> = chunks.into_iter().flatten().collect();
            let mults = vec![1u128; total];
            NodeState {
                atom,
                view,
                sums,
                mults,
            }
        })
        .collect();

    let mut all_vars: Vec<Variable> = query.variables();
    // Shared with the row path: ids are assigned in the same (sorted-group,
    // bucket) order, so `v_RS` code order equals the row path's `Value::Int` order.
    let mut bucket_counter: u64 = 0;

    for &node in &tree.bottom_up_order() {
        let children = tree.node(node).children.clone();
        for child in children {
            // Join columns between parent and child (original shared variables
            // only; previously added v-columns are never shared across edges).
            let parent_vars = states[node].atom.variable_set();
            let child_vars = states[child].atom.variable_set();
            let shared: Vec<Variable> = parent_vars.intersection(&child_vars).cloned().collect();
            let parent_pos: Vec<usize> = shared
                .iter()
                .map(|v| states[node].atom.positions_of(v)[0])
                .collect();
            let child_pos: Vec<usize> = shared
                .iter()
                .map(|v| states[child].atom.positions_of(v)[0])
                .collect();

            // Group the child's rows by join key. Chunk-local maps merge in
            // canonical chunk order, so each group's members stay in ascending
            // row order — the order the row path enumerates tuples in.
            let child_offsets = segment_offsets(&states[child].view);
            let child_total = *child_offsets
                .last()
                .expect("offsets include the empty prefix");
            let chunk_maps: Vec<HashMap<Key, Vec<u32>>> = {
                let view = &states[child].view;
                qjoin_par::par_map_chunks(child_total, qjoin_par::DEFAULT_CHUNK, |_, range| {
                    let mut local: HashMap<Key, Vec<u32>> = HashMap::new();
                    let mut key_buf: Vec<u64> = Vec::with_capacity(child_pos.len());
                    let mut seg = child_offsets.partition_point(|&o| o <= range.start) - 1;
                    for global in range {
                        while global >= child_offsets[seg + 1] {
                            seg += 1;
                        }
                        let row = global - child_offsets[seg];
                        key_buf.clear();
                        key_buf.extend(child_pos.iter().map(|&p| view.code(seg, row, p)));
                        local
                            .entry(Key::from_codes(&key_buf))
                            .or_default()
                            .push(global as u32);
                    }
                    local
                })
            };
            let mut group_members: HashMap<Key, Vec<u32>> = HashMap::new();
            for local in chunk_maps {
                for (key, mut members) in local {
                    group_members.entry(key).or_default().append(&mut members);
                }
            }

            // Sketch each group's sum multiset, in sorted key order (identical
            // to the row path's sorted value keys — order-preserving codes).
            let mut group_buckets: HashMap<Key, Vec<(u64, f64, u128)>> = HashMap::new();
            let mut child_bucket: Vec<u64> = vec![0; child_total];
            let mut sorted_keys: Vec<&Key> = group_members.keys().collect();
            sorted_keys.sort();
            for key in sorted_keys {
                let members = &group_members[key];
                let entries: Vec<SketchEntry<usize>> = members
                    .iter()
                    .map(|&g| SketchEntry {
                        value: states[child].sums[g as usize],
                        multiplicity: states[child].mults[g as usize],
                        source: g as usize,
                    })
                    .collect();
                let buckets = sketch(entries, eps_prime, direction);
                let mut summaries = Vec::with_capacity(buckets.len());
                for bucket in buckets {
                    let id = bucket_counter;
                    bucket_counter += 1;
                    for &src in &bucket.sources {
                        child_bucket[src] = id;
                    }
                    summaries.push((id, bucket.rounded_value, bucket.multiplicity));
                }
                group_buckets.insert(key.clone(), summaries);
            }

            // Extend the child: the same rows in the same order, plus one
            // synthesized per-row column carrying the bucket id.
            let v = Variable::fresh("v_rs", all_vars.iter());
            all_vars.push(v.clone());
            let rebuilt_child = {
                let view = &states[child].view;
                let parts: Vec<ViewBuilder> =
                    qjoin_par::par_map_chunks(child_total, qjoin_par::DEFAULT_CHUNK, |_, range| {
                        let mut part = ViewBuilder::new(view.synth_arity());
                        let mut seg = child_offsets.partition_point(|&o| o <= range.start) - 1;
                        for global in range {
                            while global >= child_offsets[seg + 1] {
                                seg += 1;
                            }
                            let row = global - child_offsets[seg];
                            part.push(view, seg, row, child_bucket[global]);
                        }
                        part
                    });
                let mut builder = ViewBuilder::new(view.synth_arity());
                for part in parts {
                    builder.append(part);
                }
                builder.build(view)?
            };
            states[child].atom = states[child].atom.with_extra_variable(v.clone());
            states[child].view = rebuilt_child;
            // sums/mults are untouched: the rebuild is row-for-row.

            // Extend the parent: one copy per bucket of the matching group,
            // absorbing the bucket's rounded sum and multiplicity. Old rows are
            // walked in order (chunked), exactly like the row path's loop.
            states[node].atom = states[node].atom.with_extra_variable(v);
            let (new_view, new_sums, new_mults) = {
                let view = &states[node].view;
                let old_sums = &states[node].sums;
                let old_mults = &states[node].mults;
                let offsets = segment_offsets(view);
                let total = *offsets.last().expect("offsets include the empty prefix");
                type Part = (ViewBuilder, Vec<f64>, Vec<u128>);
                let parts: Vec<Part> =
                    qjoin_par::par_map_chunks(total, qjoin_par::DEFAULT_CHUNK, |_, range| {
                        let mut part = ViewBuilder::new(view.synth_arity());
                        let mut sums = Vec::new();
                        let mut mults = Vec::new();
                        let mut key_buf: Vec<u64> = Vec::with_capacity(parent_pos.len());
                        let mut seg = offsets.partition_point(|&o| o <= range.start) - 1;
                        for global in range {
                            while global >= offsets[seg + 1] {
                                seg += 1;
                            }
                            let row = global - offsets[seg];
                            key_buf.clear();
                            key_buf.extend(parent_pos.iter().map(|&p| view.code(seg, row, p)));
                            let Some(buckets) = group_buckets.get(&Key::from_codes(&key_buf))
                            else {
                                continue;
                            };
                            for &(id, rounded, multiplicity) in buckets {
                                part.push(view, seg, row, id);
                                sums.push(old_sums[global] + rounded);
                                mults.push(old_mults[global].saturating_mul(multiplicity));
                            }
                        }
                        (part, sums, mults)
                    });
                let mut builder = ViewBuilder::new(view.synth_arity());
                let mut sums = Vec::new();
                let mut mults = Vec::new();
                for (part, s, m) in parts {
                    builder.append(part);
                    sums.extend(s);
                    mults.extend(m);
                }
                (builder.build(view)?, sums, mults)
            };
            states[node].view = new_view;
            states[node].sums = new_sums;
            states[node].mults = new_mults;
        }
    }

    // Remove root rows violating the inequality.
    let root = tree.root();
    let filtered_root = {
        let view = &states[root].view;
        let offsets = segment_offsets(view);
        let sums = &states[root].sums;
        view.filtered(|seg, row| {
            let s = sums[offsets[seg] + row];
            match predicate.op {
                CmpOp::Lt => s < bound,
                CmpOp::Gt => s > bound,
            }
        })
    };
    states[root].view = filtered_root;

    // Assemble the rewritten instance: only the tree's node relations survive,
    // mirroring the row path's fresh database (this keeps fresh-name choices in
    // later re-trims identical across paths).
    let mut atoms: Vec<Atom> = vec![Atom::new("", vec![]); tree.num_nodes()];
    let mut relations: BTreeMap<String, EncodedRelation> = BTreeMap::new();
    for (node, state) in states.into_iter().enumerate() {
        let atom_idx = tree.node(node).atom_index;
        relations.insert(state.atom.relation().to_string(), state.view);
        atoms[atom_idx] = state.atom;
    }
    Ok(EncodedInstance::new(
        JoinQuery::new(atoms),
        Arc::clone(binarized.instance.dictionary()),
        relations,
    )?)
}

/// The approximate solve backend: identical to the exact
/// [`EncodedBackend`](super::EncodedBackend) except that trimming runs the
/// ε-lossy construction above. Used by
/// [`approximate_sum_quantile_encoded`](super::approximate_sum_quantile_encoded).
pub(crate) struct ApproxSumBackend<'a> {
    pub(crate) ranking: &'a Ranking,
    pub(crate) weights: CodeWeights,
    pub(crate) epsilon: f64,
    pub(crate) dictionary: std::sync::Arc<qjoin_data::Dictionary>,
}

impl<'a> ApproxSumBackend<'a> {
    /// Builds the backend for one approximate solve: precomputes the per-code
    /// weight tables and captures the per-trim loss budget.
    pub(crate) fn new(
        instance: &EncodedInstance,
        ranking: &'a Ranking,
        epsilon: f64,
    ) -> ApproxSumBackend<'a> {
        ApproxSumBackend {
            ranking,
            weights: CodeWeights::build(instance.dictionary(), ranking),
            epsilon,
            dictionary: std::sync::Arc::clone(instance.dictionary()),
        }
    }
}

impl crate::quantile::SolveBackend for ApproxSumBackend<'_> {
    type Inst = EncodedInstance;

    fn count(&self, instance: &EncodedInstance) -> Result<u128> {
        Ok(qjoin_exec::encoded::count_answers(instance)?)
    }

    fn database_size(&self, instance: &EncodedInstance) -> usize {
        instance.total_rows()
    }

    fn select_pivot(&self, instance: &EncodedInstance) -> Result<crate::pivot::PivotResult> {
        super::pivot::select_pivot_encoded(instance, self.ranking, &self.weights)
    }

    fn trim(
        &self,
        instance: &EncodedInstance,
        predicate: &RankPredicate,
    ) -> Result<EncodedInstance> {
        lossy_sum_trim_encoded(
            instance,
            self.ranking,
            predicate,
            self.epsilon,
            &self.weights,
        )
    }

    type Key = super::CodeKey;

    fn keyed_answers(
        &self,
        instance: &EncodedInstance,
        original_vars: &[Variable],
    ) -> Result<Vec<(qjoin_ranking::Weight, super::CodeKey)>> {
        super::keyed_answers_encoded(instance, self.ranking, &self.weights, original_vars)
    }

    fn answer_from_key(
        &self,
        original_vars: &[Variable],
        key: &super::CodeKey,
    ) -> qjoin_query::Assignment {
        super::decode_answer_key(&self.dictionary, original_vars, key.as_slice())
    }
}
