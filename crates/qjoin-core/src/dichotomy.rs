//! The partial-SUM dichotomy of Theorem 5.6, and the search for join trees in which
//! the weighted variables sit on at most two adjacent nodes (Lemma D.1).
//!
//! For a self-join-free JQ `Q` with SUM over the variables `U_w`, the %JQ problem is
//! quasilinear iff
//!
//! 1. `H(Q)` is acyclic,
//! 2. every independent subset of `U_w` has size at most 2, and
//! 3. every chordless path between two `U_w` variables has at most 3 vertices.
//!
//! Lemma D.1 shows these conditions are equivalent to the existence of a join tree in
//! which `U_w` is covered by one node or by two *adjacent* nodes — which is exactly
//! what the adjacent-node SUM trimming needs. [`classify_partial_sum`] evaluates the
//! graph-theoretic conditions (producing a witness on the negative side), while
//! [`find_adjacent_cover`] performs the constructive search; their agreement on small
//! queries is itself checked by property tests.

use qjoin_query::join_tree::{enumerate_join_trees, MAX_ENUMERATION_ATOMS};
use qjoin_query::{acyclicity, JoinQuery, JoinTree, Variable};
use std::collections::BTreeSet;

/// A join tree in which all weighted variables appear on `atoms.0`, or on `atoms.0`
/// together with the adjacent node `atoms.1`.
#[derive(Clone, Debug)]
pub struct AdjacentCover {
    /// The one or two atom indices covering the weighted variables. Both components
    /// are equal when a single atom suffices.
    pub atoms: (usize, usize),
    /// A join tree of the query in which the two atoms are adjacent.
    pub tree: JoinTree,
}

impl AdjacentCover {
    /// True when a single atom covers all weighted variables.
    pub fn is_single_atom(&self) -> bool {
        self.atoms.0 == self.atoms.1
    }
}

/// The outcome of classifying a (query, weighted-variable-set) pair under Theorem 5.6.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SumClassification {
    /// All weighted variables occur in one atom: trimming is a linear-time filter.
    TractableSingleAtom {
        /// Index of the covering atom.
        atom: usize,
    },
    /// The weighted variables are covered by two atoms that are adjacent in some join
    /// tree: trimming uses the `O(n log n)` construction of Lemma 5.5.
    TractableAdjacentPair {
        /// Indices of the two covering atoms.
        atoms: (usize, usize),
    },
    /// The query is cyclic; even deciding answer existence is not quasilinear under
    /// the Hyperclique hypothesis.
    IntractableCyclic,
    /// Three pairwise non-adjacent weighted variables exist; intractable under 3SUM.
    IntractableIndependentSet(Vec<Variable>),
    /// A chordless path with at least four vertices connects two weighted variables;
    /// intractable under Hyperclique via the triangle-detection reduction.
    IntractableChordlessPath(Vec<Variable>),
    /// The query exceeds the exhaustive join-tree search limit, so the constructive
    /// cover could not be confirmed.
    UnknownTooLarge,
}

impl SumClassification {
    /// True if the classification is on the tractable side of the dichotomy.
    pub fn is_tractable(&self) -> bool {
        matches!(
            self,
            SumClassification::TractableSingleAtom { .. }
                | SumClassification::TractableAdjacentPair { .. }
        )
    }
}

/// Searches for a join tree in which the weighted variables are covered by one node or
/// by two adjacent nodes. Exhaustive over join trees for queries with at most
/// [`MAX_ENUMERATION_ATOMS`] atoms; returns `None` for larger queries unless a single
/// atom covers the variables.
pub fn find_adjacent_cover(query: &JoinQuery, weighted: &[Variable]) -> Option<AdjacentCover> {
    let weighted_in_query: BTreeSet<&Variable> = weighted
        .iter()
        .filter(|v| query.contains_variable(v))
        .collect();

    // Single-atom cover.
    for (idx, atom) in query.atoms().iter().enumerate() {
        if weighted_in_query.iter().all(|v| atom.contains(v)) {
            let tree = acyclicity::gyo_join_tree(query)?;
            return Some(AdjacentCover {
                atoms: (idx, idx),
                tree,
            });
        }
    }

    // Pairs of atoms that jointly cover the weighted variables, adjacent in some tree.
    let covering_pairs: Vec<(usize, usize)> = (0..query.num_atoms())
        .flat_map(|i| ((i + 1)..query.num_atoms()).map(move |j| (i, j)))
        .filter(|&(i, j)| {
            weighted_in_query
                .iter()
                .all(|v| query.atom(i).contains(v) || query.atom(j).contains(v))
        })
        .collect();
    if covering_pairs.is_empty() || query.num_atoms() > MAX_ENUMERATION_ATOMS {
        return None;
    }
    for tree in enumerate_join_trees(query) {
        let adjacent: BTreeSet<(usize, usize)> = tree
            .adjacent_pairs()
            .into_iter()
            .map(|(a, b)| {
                let (a, b) = (tree.node(a).atom_index, tree.node(b).atom_index);
                (a.min(b), a.max(b))
            })
            .collect();
        for &(i, j) in &covering_pairs {
            if adjacent.contains(&(i, j)) {
                return Some(AdjacentCover {
                    atoms: (i, j),
                    tree,
                });
            }
        }
    }
    None
}

/// Classifies a (query, weighted variables) pair according to Theorem 5.6.
pub fn classify_partial_sum(query: &JoinQuery, weighted: &[Variable]) -> SumClassification {
    if acyclicity::gyo_join_tree(query).is_none() {
        return SumClassification::IntractableCyclic;
    }
    let hypergraph = query.hypergraph();
    let weighted_in_query: Vec<Variable> = {
        let mut seen = BTreeSet::new();
        weighted
            .iter()
            .filter(|v| query.contains_variable(v) && seen.insert((*v).clone()))
            .cloned()
            .collect()
    };

    // Condition 2: independent subsets of size 3 witness intractability.
    if let Some(witness) = independent_triple(&hypergraph, &weighted_in_query) {
        return SumClassification::IntractableIndependentSet(witness);
    }
    // Condition 3: chordless paths of 4 or more vertices witness intractability.
    if let Some(path) = long_chordless_path(&hypergraph, &weighted_in_query) {
        return SumClassification::IntractableChordlessPath(path);
    }
    // Tractable side: find the constructive cover guaranteed by Lemma D.1.
    match find_adjacent_cover(query, &weighted_in_query) {
        Some(cover) if cover.is_single_atom() => SumClassification::TractableSingleAtom {
            atom: cover.atoms.0,
        },
        Some(cover) => SumClassification::TractableAdjacentPair { atoms: cover.atoms },
        None => SumClassification::UnknownTooLarge,
    }
}

/// Finds three pairwise non-adjacent weighted variables, if any exist.
fn independent_triple(
    hypergraph: &qjoin_query::Hypergraph,
    weighted: &[Variable],
) -> Option<Vec<Variable>> {
    let n = weighted.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if hypergraph.adjacent(&weighted[i], &weighted[j]) {
                continue;
            }
            for k in (j + 1)..n {
                if !hypergraph.adjacent(&weighted[i], &weighted[k])
                    && !hypergraph.adjacent(&weighted[j], &weighted[k])
                {
                    return Some(vec![
                        weighted[i].clone(),
                        weighted[j].clone(),
                        weighted[k].clone(),
                    ]);
                }
            }
        }
    }
    None
}

/// Finds a chordless path with at least 4 vertices between two weighted variables,
/// if one exists.
fn long_chordless_path(
    hypergraph: &qjoin_query::Hypergraph,
    weighted: &[Variable],
) -> Option<Vec<Variable>> {
    for i in 0..weighted.len() {
        for j in (i + 1)..weighted.len() {
            for path in hypergraph.chordless_paths(&weighted[i], &weighted[j]) {
                if path.len() >= 4 {
                    return Some(path);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_query::query::{path_query, social_network_query, star_query, triangle_query};
    use qjoin_query::variable::vars;
    use qjoin_query::Atom;

    #[test]
    fn binary_join_full_sum_is_tractable() {
        // The 2-path with full SUM: covered by the pair (R1, R2), which are adjacent.
        let q = path_query(2);
        let c = classify_partial_sum(&q, &q.variables());
        assert_eq!(
            c,
            SumClassification::TractableAdjacentPair { atoms: (0, 1) }
        );
    }

    #[test]
    fn three_path_full_sum_is_intractable() {
        // The paper's canonical intractable case: 3 atoms, full SUM.
        let q = path_query(3);
        let c = classify_partial_sum(&q, &q.variables());
        assert!(
            matches!(c, SumClassification::IntractableChordlessPath(_)),
            "{c:?}"
        );
        assert!(!c.is_tractable());
    }

    #[test]
    fn three_path_partial_sum_is_tractable() {
        // The motivating example of Section 5.3: U_w = {x1, x2, x3}.
        let q = path_query(3);
        let c = classify_partial_sum(&q, &vars(&["x1", "x2", "x3"]));
        assert_eq!(
            c,
            SumClassification::TractableAdjacentPair { atoms: (0, 1) }
        );
    }

    #[test]
    fn single_atom_sums_are_tractable_filters() {
        let q = path_query(3);
        let c = classify_partial_sum(&q, &vars(&["x2", "x3"]));
        assert_eq!(c, SumClassification::TractableSingleAtom { atom: 1 });
    }

    #[test]
    fn social_network_example_is_tractable() {
        // SUM(l2 + l3) from the introduction: l2 ∈ Share, l3 ∈ Attend, which share the
        // event variable and are adjacent in some join tree.
        let q = social_network_query();
        let c = classify_partial_sum(&q, &vars(&["l2", "l3"]));
        assert_eq!(
            c,
            SumClassification::TractableAdjacentPair { atoms: (1, 2) }
        );
    }

    #[test]
    fn cyclic_queries_are_intractable() {
        let q = triangle_query();
        assert_eq!(
            classify_partial_sum(&q, &q.variables()),
            SumClassification::IntractableCyclic
        );
    }

    #[test]
    fn star_leaves_form_independent_sets() {
        // SUM over three leaves of a star: {x1, x2, x3} is an independent set of
        // size 3 → intractable.
        let q = star_query(3);
        let c = classify_partial_sum(&q, &vars(&["x1", "x2", "x3"]));
        assert!(matches!(c, SumClassification::IntractableIndependentSet(w) if w.len() == 3));
        // Two leaves only: tractable? x1 and x2 are non-adjacent but the chordless
        // path x1-x0-x2 has 3 vertices, and R1, R2 are adjacent in some join tree.
        let c2 = classify_partial_sum(&q, &vars(&["x1", "x2"]));
        assert_eq!(
            c2,
            SumClassification::TractableAdjacentPair { atoms: (0, 1) }
        );
    }

    #[test]
    fn four_path_with_endpoints_only_is_intractable() {
        // U_w = {x1, x5} on the 4-path: chordless path of 5 vertices between them.
        let q = path_query(4);
        let c = classify_partial_sum(&q, &vars(&["x1", "x5"]));
        assert!(matches!(c, SumClassification::IntractableChordlessPath(p) if p.len() >= 4));
    }

    #[test]
    fn find_adjacent_cover_reports_trees_where_atoms_touch() {
        let q = path_query(3);
        let cover = find_adjacent_cover(&q, &vars(&["x1", "x2", "x3"])).unwrap();
        assert_eq!(cover.atoms, (0, 1));
        assert!(!cover.is_single_atom());
        assert!(cover.tree.satisfies_running_intersection(&q));
        let adjacent: Vec<(usize, usize)> = cover
            .tree
            .adjacent_pairs()
            .into_iter()
            .map(|(a, b)| {
                let (a, b) = (cover.tree.node(a).atom_index, cover.tree.node(b).atom_index);
                (a.min(b), a.max(b))
            })
            .collect();
        assert!(adjacent.contains(&(0, 1)));
    }

    #[test]
    fn find_adjacent_cover_fails_when_no_pair_covers() {
        let q = path_query(4);
        assert!(find_adjacent_cover(&q, &q.variables()).is_none());
    }

    #[test]
    fn weighted_variables_missing_from_the_query_are_ignored() {
        let q = path_query(2);
        let c = classify_partial_sum(&q, &vars(&["x1", "nonexistent"]));
        assert_eq!(c, SumClassification::TractableSingleAtom { atom: 0 });
    }

    #[test]
    fn lemma_d1_equivalence_on_a_catalogue_of_queries() {
        // For every acyclic query in the catalogue and every subset of its variables,
        // the graph conditions hold iff an adjacent cover exists (Lemma D.1, both
        // directions). This is the paper's equivalence checked exhaustively.
        let catalogue = vec![
            path_query(2),
            path_query(3),
            path_query(4),
            star_query(3),
            star_query(4),
            social_network_query(),
            qjoin_query::query::figure1_query(),
            qjoin_query::JoinQuery::new(vec![
                Atom::from_names("A", &["x", "y", "z"]),
                Atom::from_names("B", &["z", "w"]),
                Atom::from_names("C", &["w", "u"]),
            ]),
        ];
        for q in catalogue {
            let all_vars = q.variables();
            let n = all_vars.len();
            for mask in 1u32..(1 << n) {
                let subset: Vec<Variable> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| all_vars[i].clone())
                    .collect();
                let classification = classify_partial_sum(&q, &subset);
                let cover = find_adjacent_cover(&q, &subset);
                match classification {
                    SumClassification::TractableSingleAtom { .. }
                    | SumClassification::TractableAdjacentPair { .. } => {
                        assert!(cover.is_some(), "query {q}, U_w {subset:?}")
                    }
                    SumClassification::IntractableIndependentSet(_)
                    | SumClassification::IntractableChordlessPath(_) => {
                        assert!(cover.is_none(), "query {q}, U_w {subset:?}")
                    }
                    SumClassification::IntractableCyclic | SumClassification::UnknownTooLarge => {
                        panic!("unexpected classification for acyclic catalogue query")
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod paper_case_table {
    use super::*;
    use qjoin_query::query::{path_query, social_network_query, star_query, triangle_query};
    use qjoin_query::variable::vars;
    use qjoin_query::Atom;

    /// The coarse outcome a table row expects from [`classify_partial_sum`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Expected {
        SingleAtom,
        AdjacentPair,
        Cyclic,
        IndependentSet,
        ChordlessPath,
        TooLarge,
    }

    fn outcome(c: &SumClassification) -> Expected {
        match c {
            SumClassification::TractableSingleAtom { .. } => Expected::SingleAtom,
            SumClassification::TractableAdjacentPair { .. } => Expected::AdjacentPair,
            SumClassification::IntractableCyclic => Expected::Cyclic,
            SumClassification::IntractableIndependentSet(_) => Expected::IndependentSet,
            SumClassification::IntractableChordlessPath(_) => Expected::ChordlessPath,
            SumClassification::UnknownTooLarge => Expected::TooLarge,
        }
    }

    /// Every tractable/intractable case of Theorem 5.6 discussed in the paper,
    /// as one table: (description, query, weighted variables, expected outcome).
    #[test]
    fn classify_partial_sum_matches_the_paper_case_table() {
        let table: Vec<(&str, JoinQuery, Vec<Variable>, Expected)> = vec![
            (
                "§5.3: single weighted variable lies in one atom",
                path_query(3),
                vars(&["x2"]),
                Expected::SingleAtom,
            ),
            (
                "§5.3: U_w inside one atom is a linear-time filter",
                path_query(3),
                vars(&["x2", "x3"]),
                Expected::SingleAtom,
            ),
            (
                "§1/§5: full SUM on the binary join is tractable",
                path_query(2),
                path_query(2).variables(),
                Expected::AdjacentPair,
            ),
            (
                "§5.3 motivating example: 3-path with U_w = {x1, x2, x3}",
                path_query(3),
                vars(&["x1", "x2", "x3"]),
                Expected::AdjacentPair,
            ),
            (
                "§1 social network: SUM(l2 + l3) over Share and Attend",
                social_network_query(),
                vars(&["l2", "l3"]),
                Expected::AdjacentPair,
            ),
            (
                "§2.1/§5: cyclic triangle query is intractable outright",
                triangle_query(),
                triangle_query().variables(),
                Expected::Cyclic,
            ),
            (
                "Thm 5.6 cond. 2: three independent star leaves",
                star_query(3),
                vars(&["x1", "x2", "x3"]),
                Expected::IndependentSet,
            ),
            (
                "Thm 5.6 cond. 2: independent {u1, u2, u3} in the social query",
                social_network_query(),
                vars(&["u1", "u2", "u3"]),
                Expected::IndependentSet,
            ),
            (
                "Thm 5.6 cond. 3: full SUM on the 3-path has a 4-vertex chordless path",
                path_query(3),
                path_query(3).variables(),
                Expected::ChordlessPath,
            ),
            (
                "Thm 5.6 cond. 3: endpoints of the 4-path",
                path_query(4),
                vars(&["x1", "x5"]),
                Expected::ChordlessPath,
            ),
            (
                "three-atom chain with a covering adjacent pair (A, B)",
                JoinQuery::new(vec![
                    Atom::from_names("A", &["x", "y", "z"]),
                    Atom::from_names("B", &["z", "w"]),
                    Atom::from_names("C", &["w", "u"]),
                ]),
                vars(&["x", "w"]),
                Expected::AdjacentPair,
            ),
            (
                "beyond MAX_ENUMERATION_ATOMS the constructive search gives up",
                path_query(MAX_ENUMERATION_ATOMS + 1),
                vars(&["x1", "x2", "x3"]),
                Expected::TooLarge,
            ),
        ];

        for (description, query, weighted, expected) in table {
            let classification = classify_partial_sum(&query, &weighted);
            assert_eq!(
                outcome(&classification),
                expected,
                "{description}: got {classification:?}"
            );
            // The coarse outcome and the tractability flag must agree.
            assert_eq!(
                classification.is_tractable(),
                matches!(expected, Expected::SingleAtom | Expected::AdjacentPair),
                "{description}"
            );
        }
    }
}
