//! ε-lossy trimming for additive inequalities (Section 6, Algorithm 4, Lemma 6.1).
//!
//! Exact trimming of `Σ w_x(x) < λ` is conditionally impossible for general acyclic
//! queries (Theorem 5.6), so the deterministic approximation of Theorem 6.2 relies on
//! a *lossy* trimming (Definition 3.5): the rewritten instance represents only a
//! `(1 − ε)` fraction of the qualifying answers, but every represented answer does
//! satisfy the predicate.
//!
//! The construction follows Algorithm 4: traverse a **binary** join tree bottom-up
//! maintaining, per tuple, an (approximate) sum `σ_s` and multiplicity `σ_m` describing
//! the partial answers of its subtree. The multiset of child sums flowing through a
//! join group is compressed with an ε′-sketch; each sketch bucket becomes a copy of the
//! parent tuple carrying the bucket's rounded sum, and a fresh variable `v_RS` rewires
//! every child tuple to join exactly the copy holding its bucket. Finally, root tuples
//! whose accumulated sum violates the inequality are removed.
//!
//! Rounding direction matters for soundness: for `< λ` the sketch rounds **up**, so a
//! retained answer's true sum is at most the recorded sum and therefore below `λ`; for
//! `> λ` it rounds **down**, symmetrically.

use crate::sketch::{sketch, RoundDirection, SketchEntry};
use crate::trim::{handle_trivial, Trimmer};
use crate::{CoreError, Result};
use qjoin_data::{Database, Relation, Tuple, Value};
use qjoin_query::{binary, self_join, Atom, Instance, JoinQuery, Variable};
use qjoin_ranking::{AggregateKind, CmpOp, RankPredicate, Ranking, SumTupleWeights};
use std::collections::HashMap;

/// The ε-lossy trimmer for SUM predicates on arbitrary acyclic queries.
#[derive(Clone, Copy, Debug)]
pub struct LossySumTrimmer {
    /// The per-invocation loss budget ε ∈ (0, 1): at least a `1 − ε` fraction of the
    /// qualifying answers is retained.
    pub epsilon: f64,
}

impl LossySumTrimmer {
    /// Creates a lossy trimmer with the given per-invocation loss budget.
    pub fn new(epsilon: f64) -> Self {
        LossySumTrimmer { epsilon }
    }
}

impl Trimmer for LossySumTrimmer {
    fn trim(
        &self,
        instance: &Instance,
        ranking: &Ranking,
        predicate: &RankPredicate,
    ) -> Result<Instance> {
        if let Some(result) = handle_trivial(instance, predicate) {
            return result;
        }
        if ranking.kind() != AggregateKind::Sum {
            return Err(CoreError::UnsupportedRanking(format!(
                "LossySumTrimmer cannot trim {:?} predicates",
                ranking.kind()
            )));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoreError::InvalidEpsilon(self.epsilon));
        }
        let bound = predicate
            .finite_bound()
            .and_then(|w| w.as_num())
            .ok_or_else(|| {
                CoreError::UnsupportedPredicate("SUM trimming requires a scalar bound".to_string())
            })?;

        let instance = self_join::eliminate_self_joins(instance)?;
        let binarized = binary::binarize(&instance)?;
        let query = binarized.instance.query().clone();
        let tree = binarized.tree;
        let ell = query.num_atoms().max(1);
        // Algorithm 4, line 7: the per-level sketch error.
        let eps_prime = (self.epsilon / (4.0 * ell as f64)).clamp(1e-9, 0.999_999);
        let direction = match predicate.op {
            CmpOp::Lt => RoundDirection::Up,
            CmpOp::Gt => RoundDirection::Down,
        };

        let tuple_weights = SumTupleWeights::new(&query, ranking);

        // Mutable per-node state: the (growing) atom and the annotated tuples.
        struct NodeState {
            atom: Atom,
            tuples: Vec<AnnotatedTuple>,
        }
        #[derive(Clone)]
        struct AnnotatedTuple {
            tuple: Tuple,
            sum: f64,
            multiplicity: u128,
        }

        let mut states: Vec<NodeState> = (0..tree.num_nodes())
            .map(|node| {
                let atom_idx = tree.node(node).atom_index;
                let atom = query.atom(atom_idx).clone();
                let relation = binarized.instance.relation_of_atom(atom_idx);
                let tuples = relation
                    .iter()
                    .map(|t| AnnotatedTuple {
                        sum: tuple_weights.tuple_sum(ranking, atom_idx, t),
                        multiplicity: 1,
                        tuple: t.clone(),
                    })
                    .collect();
                NodeState { atom, tuples }
            })
            .collect();

        let mut all_vars: Vec<Variable> = query.variables();
        let mut bucket_counter: i64 = 0;

        for &node in &tree.bottom_up_order() {
            let children = tree.node(node).children.clone();
            for child in children {
                // The join columns between the parent and child atoms (original shared
                // variables only; previously added v-columns are never shared).
                let parent_vars = states[node].atom.variable_set();
                let child_vars = states[child].atom.variable_set();
                let shared: Vec<Variable> =
                    parent_vars.intersection(&child_vars).cloned().collect();
                let parent_pos: Vec<usize> = shared
                    .iter()
                    .map(|v| states[node].atom.positions_of(v)[0])
                    .collect();
                let child_pos: Vec<usize> = shared
                    .iter()
                    .map(|v| states[child].atom.positions_of(v)[0])
                    .collect();

                // Group the child's annotated tuples by the join key and sketch the
                // multiset of their sums, once per group.
                let mut group_members: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, at) in states[child].tuples.iter().enumerate() {
                    let key: Vec<Value> = child_pos.iter().map(|&p| at.tuple[p].clone()).collect();
                    group_members.entry(key).or_default().push(i);
                }
                // Per group: the sketch buckets as (bucket id, rounded sum, multiplicity).
                let mut group_buckets: HashMap<Vec<Value>, Vec<(i64, f64, u128)>> = HashMap::new();
                // Per child tuple: the id of the bucket it was assigned to.
                let mut child_bucket: Vec<i64> = vec![0; states[child].tuples.len()];
                // Iterate groups in sorted key order so bucket ids are deterministic
                // (and identical to the encoded construction, whose dictionary codes
                // are order-preserving).
                let mut sorted_keys: Vec<&Vec<Value>> = group_members.keys().collect();
                sorted_keys.sort();
                for key in sorted_keys {
                    let members = &group_members[key];
                    let entries: Vec<SketchEntry<usize>> = members
                        .iter()
                        .map(|&i| SketchEntry {
                            value: states[child].tuples[i].sum,
                            multiplicity: states[child].tuples[i].multiplicity,
                            source: i,
                        })
                        .collect();
                    let buckets = sketch(entries, eps_prime, direction);
                    let mut summaries = Vec::with_capacity(buckets.len());
                    for bucket in buckets {
                        let id = bucket_counter;
                        bucket_counter += 1;
                        for &src in &bucket.sources {
                            child_bucket[src] = id;
                        }
                        summaries.push((id, bucket.rounded_value, bucket.multiplicity));
                    }
                    group_buckets.insert(key.clone(), summaries);
                }

                // Extend the child: one fresh column carrying its bucket id.
                let v = Variable::fresh("v_rs", all_vars.iter());
                all_vars.push(v.clone());
                states[child].atom = states[child].atom.with_extra_variable(v.clone());
                for (i, at) in states[child].tuples.iter_mut().enumerate() {
                    at.tuple = at.tuple.extended(Value::Int(child_bucket[i]));
                }

                // Extend the parent: one copy per bucket of the matching group, with the
                // bucket's sum absorbed into σ_s and its multiplicity into σ_m.
                states[node].atom = states[node].atom.with_extra_variable(v);
                let old_tuples = std::mem::take(&mut states[node].tuples);
                let mut new_tuples = Vec::with_capacity(old_tuples.len() * 2);
                for at in old_tuples {
                    let key: Vec<Value> = parent_pos.iter().map(|&p| at.tuple[p].clone()).collect();
                    let Some(buckets) = group_buckets.get(&key) else {
                        continue;
                    };
                    for &(id, rounded, multiplicity) in buckets {
                        new_tuples.push(AnnotatedTuple {
                            tuple: at.tuple.extended(Value::Int(id)),
                            sum: at.sum + rounded,
                            multiplicity: at.multiplicity.saturating_mul(multiplicity),
                        });
                    }
                }
                states[node].tuples = new_tuples;
            }
        }

        // Remove root tuples violating the inequality.
        let root = tree.root();
        states[root].tuples.retain(|at| match predicate.op {
            CmpOp::Lt => at.sum < bound,
            CmpOp::Gt => at.sum > bound,
        });

        // Assemble the rewritten instance. Node order follows the tree's node ids,
        // which map one-to-one onto the binarized query's atoms.
        let mut atoms: Vec<Atom> = vec![Atom::new("", vec![]); tree.num_nodes()];
        let mut db = Database::new();
        for (node, state) in states.into_iter().enumerate() {
            let atom_idx = tree.node(node).atom_index;
            let mut relation = Relation::new(state.atom.relation(), state.atom.arity());
            for at in state.tuples {
                relation.push_tuple(at.tuple)?;
            }
            db.add_relation(relation)?;
            atoms[atom_idx] = state.atom;
        }
        Ok(Instance::new(JoinQuery::new(atoms), db)?)
    }

    fn is_lossy(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "sum-lossy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::{Database, Relation};
    use qjoin_exec::count::count_answers;
    use qjoin_exec::yannakakis::materialize;
    use qjoin_query::query::{figure1_query, path_query};
    use qjoin_query::variable::vars;
    use qjoin_ranking::Weight;
    use std::collections::HashSet;

    fn brute_force_count(instance: &Instance, ranking: &Ranking, pred: &RankPredicate) -> u128 {
        let answers = materialize(instance).unwrap();
        let schema = answers.variables().to_vec();
        answers
            .rows()
            .iter()
            .filter(|row| pred.satisfied_by(ranking, &ranking.weight_of_row(&schema, row)))
            .count() as u128
    }

    fn three_path_instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 0..n {
            r1.push(vec![Value::from(7 * i % 23), Value::from(i % 3)])
                .unwrap();
            r2.push(vec![Value::from(i % 3), Value::from(11 * i % 19)])
                .unwrap();
            r3.push(vec![Value::from(11 * i % 19), Value::from(5 * i % 29)])
                .unwrap();
        }
        Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap()
    }

    /// Figure 4 of the paper: S(x, y) with sums {3, 4, 5} flowing into R(y, z).
    #[test]
    fn figure4_relational_representation() {
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["y", "z"]),
            Atom::from_names("S", &["x", "y"]),
        ]);
        let r = Relation::from_rows("R", &[&[1, 6]]).unwrap();
        let s = Relation::from_rows("S", &[&[2, 1], &[3, 1], &[4, 1]]).unwrap();
        let inst = Instance::new(q, Database::from_relations([r, s]).unwrap()).unwrap();
        let ranking = Ranking::sum(vars(&["x", "y", "z"]));
        // All three answers have sums 9, 10, 11; trim sum < 12 keeps all of them.
        let trimmer = LossySumTrimmer::new(0.5);
        let pred = RankPredicate::less_than(Weight::num(12.0));
        let trimmed = trimmer.trim(&inst, &ranking, &pred).unwrap();
        let kept = count_answers(&trimmed).unwrap();
        assert!(kept >= 2, "at least (1-ε)·3 answers survive, got {kept}");
        assert!(kept <= 3);
        // Both relations carry the fresh v_rs column.
        for atom in trimmed.query().atoms() {
            assert!(atom
                .variables()
                .iter()
                .any(|v| v.name().starts_with("v_rs")));
        }
        // With a bound below every sum, nothing survives.
        let none = trimmer
            .trim(&inst, &ranking, &RankPredicate::less_than(Weight::num(9.0)))
            .unwrap();
        assert_eq!(count_answers(&none).unwrap(), 0);
    }

    #[test]
    fn retained_answers_always_satisfy_the_predicate() {
        let inst = three_path_instance(12);
        let ranking = Ranking::sum(inst.query().variables());
        let trimmer = LossySumTrimmer::new(0.3);
        let original_vars = inst.query().variables();
        let all_rows: HashSet<Vec<Value>> =
            materialize(&inst).unwrap().rows().iter().cloned().collect();
        for bound in [10.0, 25.0, 40.0, 60.0] {
            for pred in [
                RankPredicate::less_than(Weight::num(bound)),
                RankPredicate::greater_than(Weight::num(bound)),
            ] {
                let trimmed = trimmer.trim(&inst, &ranking, &pred).unwrap();
                let answers = materialize(&trimmed).unwrap();
                let mut projected_seen = HashSet::new();
                for asg in answers.iter_assignments() {
                    let projected = asg.project(&original_vars);
                    let row: Vec<Value> = original_vars
                        .iter()
                        .map(|v| projected.get(v).unwrap().clone())
                        .collect();
                    assert!(all_rows.contains(&row), "not an original answer");
                    assert!(
                        pred.satisfied_by(&ranking, &ranking.weight_of(&projected)),
                        "answer violates {pred}"
                    );
                    assert!(projected_seen.insert(row), "projection must be injective");
                }
            }
        }
    }

    #[test]
    fn loss_is_bounded_by_epsilon() {
        let inst = three_path_instance(15);
        let ranking = Ranking::sum(inst.query().variables());
        for eps in [0.1, 0.3, 0.6] {
            let trimmer = LossySumTrimmer::new(eps);
            for bound in [15.0, 30.0, 50.0] {
                for pred in [
                    RankPredicate::less_than(Weight::num(bound)),
                    RankPredicate::greater_than(Weight::num(bound)),
                ] {
                    let exact = brute_force_count(&inst, &ranking, &pred);
                    let kept =
                        count_answers(&trimmer.trim(&inst, &ranking, &pred).unwrap()).unwrap();
                    assert!(kept <= exact);
                    assert!(
                        kept as f64 >= (1.0 - eps) * exact as f64 - 1e-9,
                        "ε={eps}, {pred}: kept {kept} of {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn works_on_queries_with_wide_join_tree_nodes() {
        // Figure 1's query has a node with two children, exercising the binary tree
        // handling and the two-child absorption.
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        let t = Relation::from_rows("T", &[&[1, 6], &[1, 7], &[2, 6]]).unwrap();
        let u = Relation::from_rows("U", &[&[6, 8], &[6, 9], &[7, 9]]).unwrap();
        let inst = Instance::new(
            figure1_query(),
            Database::from_relations([r, s, t, u]).unwrap(),
        )
        .unwrap();
        let ranking = Ranking::sum(inst.query().variables());
        let trimmer = LossySumTrimmer::new(0.25);
        for bound in [15.0, 20.0, 24.0, 30.0] {
            let pred = RankPredicate::less_than(Weight::num(bound));
            let exact = brute_force_count(&inst, &ranking, &pred);
            let kept = count_answers(&trimmer.trim(&inst, &ranking, &pred).unwrap()).unwrap();
            assert!(kept <= exact);
            assert!(kept as f64 >= 0.75 * exact as f64 - 1e-9, "bound {bound}");
        }
    }

    #[test]
    fn partial_sums_are_supported() {
        let inst = three_path_instance(10);
        let ranking = Ranking::sum(vars(&["x1", "x4"]));
        let trimmer = LossySumTrimmer::new(0.2);
        let pred = RankPredicate::less_than(Weight::num(25.0));
        let exact = brute_force_count(&inst, &ranking, &pred);
        let kept = count_answers(&trimmer.trim(&inst, &ranking, &pred).unwrap()).unwrap();
        assert!(kept <= exact && kept as f64 >= 0.8 * exact as f64 - 1e-9);
    }

    #[test]
    fn trimmed_query_stays_acyclic_and_retrimmable() {
        let inst = three_path_instance(8);
        let ranking = Ranking::sum(inst.query().variables());
        let trimmer = LossySumTrimmer::new(0.3);
        let first = trimmer
            .trim(
                &inst,
                &ranking,
                &RankPredicate::less_than(Weight::num(60.0)),
            )
            .unwrap();
        assert!(qjoin_query::acyclicity::is_acyclic(first.query()));
        let second = trimmer
            .trim(
                &first,
                &ranking,
                &RankPredicate::greater_than(Weight::num(10.0)),
            )
            .unwrap();
        assert!(qjoin_query::acyclicity::is_acyclic(second.query()));
        // Every surviving answer satisfies both inequalities.
        let original_vars = inst.query().variables();
        for asg in materialize(&second).unwrap().iter_assignments() {
            let w = ranking
                .weight_of(&asg.project(&original_vars))
                .as_num()
                .unwrap();
            assert!(w < 60.0 && w > 10.0);
        }
    }

    #[test]
    fn invalid_epsilon_and_rankings_are_rejected() {
        let inst = three_path_instance(3);
        let sum = Ranking::sum(inst.query().variables());
        let pred = RankPredicate::less_than(Weight::num(5.0));
        assert!(matches!(
            LossySumTrimmer::new(0.0)
                .trim(&inst, &sum, &pred)
                .unwrap_err(),
            CoreError::InvalidEpsilon(_)
        ));
        let max = Ranking::max(inst.query().variables());
        assert!(matches!(
            LossySumTrimmer::new(0.2)
                .trim(&inst, &max, &pred)
                .unwrap_err(),
            CoreError::UnsupportedRanking(_)
        ));
    }

    #[test]
    fn lossy_trimmer_reports_itself_as_lossy() {
        assert!(LossySumTrimmer::new(0.1).is_lossy());
        assert_eq!(LossySumTrimmer::new(0.1).name(), "sum-lossy");
    }
}
