//! Batched multi-φ quantile solving: one shared divide-and-conquer pass.
//!
//! The §3 recursion (Algorithm 1) narrows the candidate answer set around a single
//! target rank, but nothing in the recursion is specific to *one* rank: the pivot,
//! the trimmed partitions, and the partition counts are all functions of the current
//! candidate region only. Given sorted targets `φ₁ ≤ … ≤ φₖ`, this module therefore
//! runs a single recursion tree and *routes* every target through it:
//!
//! * at each internal node, one pivot is selected and the less-than / greater-than
//!   partitions are built and counted **once**; each target descends into the
//!   partition containing its rank (targets that land on the pivot's equal-to band
//!   resolve immediately);
//! * at each leaf (candidate count below the materialization threshold), the
//!   candidates are materialized and sorted **once**, and every target in the leaf is
//!   resolved by direct indexing.
//!
//! Because pivot selection (Algorithm 2) and the exact trimmings are deterministic,
//! every target follows *exactly* the path the single-φ driver would take, so batched
//! results are pointwise identical to `k` independent [`quantile_by_pivoting`] calls —
//! a property the cross-crate test-suite asserts over random acyclic instances. The
//! cost, however, is one traversal plus `O(k)` leaf resolutions instead of `k` full
//! solves: the expensive near-root trims (which operate on the largest instances) are
//! shared by all targets on their side of the pivot.
//!
//! [`quantile_by_pivoting`]: crate::quantile::quantile_by_pivoting

use crate::quantile::{
    keyed_answer_cmp, report_parallel, target_rank, PivotingOptions, QuantileResult, RowBackend,
    SolveBackend,
};
use crate::trace::{sat64, NoopTracer, PhaseContext, SolvePhase, SolveTracer};
use crate::trim::Trimmer;
use crate::{CoreError, Result};
use qjoin_query::{Instance, Variable};
use qjoin_ranking::{RankPredicate, Ranking, WeightBound};
use std::time::Instant;

/// One pending quantile target: the position in the caller's φ slice plus the global
/// rank it resolves to.
#[derive(Clone, Copy, Debug)]
struct Target {
    /// Index into the caller's `phis` slice (results are returned in input order).
    pos: usize,
    /// The global zero-based rank `⌊φ·|Q(D)|⌋` (clamped), fixed for the whole solve.
    rank: u128,
}

/// Read-only state shared by every node of the batched recursion.
struct BatchState<'a, B: SolveBackend> {
    /// The backend the recursion counts, pivots, and trims through.
    backend: &'a B,
    /// The *original* instance; trims are always rebuilt from it (Algorithm 1).
    instance: &'a B::Inst,
    options: &'a PivotingOptions,
    /// Materialization threshold (defaults to the database size `n`).
    threshold: u128,
    original_vars: &'a [Variable],
    /// `|Q(D)|`, counted once up front.
    total: u128,
    /// Receives per-phase timing events (a no-op tracer when untraced).
    tracer: &'a dyn SolveTracer,
}

/// Computes the `φ`-quantiles of the instance's answers for **all** fractions in
/// `phis` with a single shared divide-and-conquer pass (see the module docs).
///
/// `phis` may be in any order and may contain duplicates; results are returned in the
/// same order as the input. Batched results are identical to independent
/// [`quantile_by_pivoting`](crate::quantile::quantile_by_pivoting) calls with the same
/// trimmer and options. An empty `phis` returns an empty vector (after validating
/// that the instance has answers at all).
pub fn quantile_batch_by_pivoting(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
    trimmer: &dyn Trimmer,
    options: &PivotingOptions,
) -> Result<Vec<QuantileResult>> {
    quantile_batch_by_pivoting_traced(instance, ranking, phis, trimmer, options, &NoopTracer)
}

/// [`quantile_batch_by_pivoting`] with per-phase timing reported to `tracer` (see
/// [`crate::trace`]). Results are identical to the untraced entry point.
pub fn quantile_batch_by_pivoting_traced(
    instance: &Instance,
    ranking: &Ranking,
    phis: &[f64],
    trimmer: &dyn Trimmer,
    options: &PivotingOptions,
    tracer: &dyn SolveTracer,
) -> Result<Vec<QuantileResult>> {
    let backend = RowBackend { ranking, trimmer };
    let original_vars = instance.query().variables();
    quantile_batch_backend(&backend, instance, phis, options, &original_vars, tracer)
}

/// The generic batched driver behind [`quantile_batch_by_pivoting`]: one shared
/// recursion over any [`SolveBackend`].
pub(crate) fn quantile_batch_backend<B: SolveBackend>(
    backend: &B,
    instance: &B::Inst,
    phis: &[f64],
    options: &PivotingOptions,
    original_vars: &[Variable],
    tracer: &dyn SolveTracer,
) -> Result<Vec<QuantileResult>> {
    for &phi in phis {
        if !(0.0..=1.0).contains(&phi) || phi.is_nan() {
            return Err(CoreError::InvalidPhi(phi));
        }
    }
    let prepare_started = Instant::now();
    let prepare_par = qjoin_par::thread_parallel_nanos();
    let total = backend.count(instance)?;
    tracer.phase_event(
        SolvePhase::Prepare,
        prepare_started.elapsed(),
        &PhaseContext {
            candidates: Some(sat64(total)),
            targets: Some(phis.len() as u64),
            ..PhaseContext::default()
        },
    );
    report_parallel(tracer, SolvePhase::Prepare, prepare_par);
    if total == 0 {
        return Err(CoreError::NoAnswers);
    }
    if phis.is_empty() {
        return Ok(Vec::new());
    }
    let mut targets: Vec<Target> = phis
        .iter()
        .enumerate()
        .map(|(pos, &phi)| Target {
            pos,
            rank: target_rank(phi, total),
        })
        .collect();
    // Route targets in rank order; the sort is stable so duplicate φ values keep
    // their input order (they resolve to identical results regardless).
    targets.sort_by_key(|t| t.rank);

    let threshold = options
        .materialize_threshold
        .unwrap_or(backend.database_size(instance) as u128)
        .max(1);
    let state = BatchState {
        backend,
        instance,
        options,
        threshold,
        original_vars,
        total,
        tracer,
    };
    let mut results: Vec<Option<QuantileResult>> = vec![None; phis.len()];
    solve_group(
        &state,
        instance.clone(),
        total,
        0,
        WeightBound::NegInf,
        WeightBound::PosInf,
        &targets,
        0,
        &mut results,
    )?;
    Ok(results
        .into_iter()
        .map(|r| r.expect("every routed target is resolved"))
        .collect())
}

/// Resolves every target in `targets` against the candidate instance `current`, which
/// holds the answers of global ranks `[offset, offset + current_count)` within the
/// accumulated weight bounds `(low, high)`. `depth` counts the pivoting iterations
/// performed on the path from the root, matching the single-φ driver's `iterations`.
#[allow(clippy::too_many_arguments)]
fn solve_group<B: SolveBackend>(
    state: &BatchState<'_, B>,
    current: B::Inst,
    current_count: u128,
    offset: u128,
    low: WeightBound,
    high: WeightBound,
    targets: &[Target],
    depth: usize,
    results: &mut [Option<QuantileResult>],
) -> Result<()> {
    if targets.is_empty() {
        return Ok(());
    }
    if current_count <= state.threshold || depth >= state.options.max_iterations {
        return resolve_leaf(state, &current, offset, targets, depth, results);
    }

    let pivot_started = Instant::now();
    let pivot_par = qjoin_par::thread_parallel_nanos();
    let pivot = state.backend.select_pivot(&current)?;
    state.tracer.phase_event(
        SolvePhase::PivotScan,
        pivot_started.elapsed(),
        &PhaseContext {
            round: Some(depth as u64),
            candidates: Some(sat64(current_count)),
            pivot_slots: Some(pivot.assignment.len() as u64),
            targets: Some(targets.len() as u64),
            ..PhaseContext::default()
        },
    );
    report_parallel(state.tracer, SolvePhase::PivotScan, pivot_par);
    let pivot_weight = pivot.weight.clone();

    // Rebuild both partitions from the original instance, restricted to the candidate
    // region (low, high) — the same construction as the single-φ driver, so trimmed
    // instances (and therefore subsequent pivots) are identical. The two sides are
    // independent rebuilds of the same immutable instance, so they run as the two
    // arms of a `par_join` (sequential at one thread).
    let trim_started = Instant::now();
    let trim_par = qjoin_par::thread_parallel_nanos();
    let (lt_result, gt_result) = {
        let backend = state.backend;
        let instance = state.instance;
        let pw_lt = pivot_weight.clone();
        let pw_gt = pivot_weight.clone();
        let low_bound = low.clone();
        let high_bound = high.clone();
        qjoin_par::par_join(
            move || -> Result<(B::Inst, u128)> {
                let first = backend.trim(instance, &RankPredicate::less_than(pw_lt))?;
                let lt = backend.trim(
                    &first,
                    &RankPredicate {
                        op: qjoin_ranking::CmpOp::Gt,
                        bound: low_bound,
                    },
                )?;
                let n_lt = backend.count(&lt)?;
                Ok((lt, n_lt))
            },
            move || -> Result<(B::Inst, u128)> {
                let first = backend.trim(instance, &RankPredicate::greater_than(pw_gt))?;
                let gt = backend.trim(
                    &first,
                    &RankPredicate {
                        op: qjoin_ranking::CmpOp::Lt,
                        bound: high_bound,
                    },
                )?;
                let n_gt = backend.count(&gt)?;
                Ok((gt, n_gt))
            },
        )
    };
    let (lt, n_lt) = lt_result?;
    let (gt, n_gt) = gt_result?;
    let n_eq = current_count.saturating_sub(n_lt).saturating_sub(n_gt);
    state.tracer.phase_event(
        SolvePhase::TrimRound,
        trim_started.elapsed(),
        &PhaseContext {
            round: Some(depth as u64),
            candidates: Some(sat64(current_count)),
            n_lt: Some(sat64(n_lt)),
            n_eq: Some(sat64(n_eq)),
            n_gt: Some(sat64(n_gt)),
            targets: Some(targets.len() as u64),
            ..PhaseContext::default()
        },
    );
    report_parallel(state.tracer, SolvePhase::TrimRound, trim_par);

    // Route each target into its partition; the equal-to band resolves to the pivot.
    let mut lt_targets = Vec::new();
    let mut gt_targets = Vec::new();
    for t in targets {
        let k = t.rank - offset;
        if k < n_lt {
            lt_targets.push(*t);
        } else if k < n_lt + n_eq {
            results[t.pos] = Some(QuantileResult {
                answer: pivot.assignment.project(state.original_vars),
                weight: pivot_weight.clone(),
                total_answers: state.total,
                target_index: t.rank,
                iterations: depth + 1,
            });
        } else {
            gt_targets.push(*t);
        }
    }

    // Lossy trimmings may drop a targeted partition entirely; fall back to the pivot,
    // which is within the accumulated error budget of those targets (Lemma 3.6) —
    // mirroring the single-φ driver's empty-partition fallback.
    let resolve_with_pivot = |group: &[Target], results: &mut [Option<QuantileResult>]| {
        for t in group {
            results[t.pos] = Some(QuantileResult {
                answer: pivot.assignment.project(state.original_vars),
                weight: pivot_weight.clone(),
                total_answers: state.total,
                target_index: t.rank,
                iterations: depth + 1,
            });
        }
    };
    if n_lt == 0 {
        resolve_with_pivot(&lt_targets, results);
        lt_targets.clear();
    }
    if n_gt == 0 {
        resolve_with_pivot(&gt_targets, results);
        gt_targets.clear();
    }

    solve_group(
        state,
        lt,
        n_lt,
        offset,
        low,
        WeightBound::Finite(pivot_weight.clone()),
        &lt_targets,
        depth + 1,
        results,
    )?;
    solve_group(
        state,
        gt,
        n_gt,
        offset + n_lt + n_eq,
        WeightBound::Finite(pivot_weight),
        high,
        &gt_targets,
        depth + 1,
        results,
    )
}

/// Materializes a leaf's candidates once, sorts them once, and resolves every target
/// in the leaf by direct indexing.
fn resolve_leaf<B: SolveBackend>(
    state: &BatchState<'_, B>,
    current: &B::Inst,
    offset: u128,
    targets: &[Target],
    depth: usize,
    results: &mut [Option<QuantileResult>],
) -> Result<()> {
    let materialize_started = Instant::now();
    let materialize_par = qjoin_par::thread_parallel_nanos();
    let mut keyed = state.backend.keyed_answers(current, state.original_vars)?;
    if keyed.is_empty() {
        return Err(CoreError::NoAnswers);
    }
    keyed.sort_by(keyed_answer_cmp);
    state.tracer.phase_event(
        SolvePhase::Materialize,
        materialize_started.elapsed(),
        &PhaseContext {
            round: Some(depth as u64),
            materialized: Some(keyed.len() as u64),
            targets: Some(targets.len() as u64),
            ..PhaseContext::default()
        },
    );
    report_parallel(state.tracer, SolvePhase::Materialize, materialize_par);
    for t in targets {
        let k = ((t.rank - offset) as usize).min(keyed.len() - 1);
        let selected = &keyed[k];
        results[t.pos] = Some(QuantileResult {
            answer: state
                .backend
                .answer_from_key(state.original_vars, &selected.1),
            weight: selected.0.clone(),
            total_answers: state.total,
            target_index: t.rank,
            iterations: depth,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::{quantile_by_pivoting, rank_of_weight};
    use crate::trim::{AdjacentSumTrimmer, LexTrimmer, MinMaxTrimmer};
    use qjoin_data::{Database, Relation, Value};
    use qjoin_query::query::path_query;
    use qjoin_query::variable::vars;

    fn two_path_instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push(vec![Value::from((17 * i) % 101), Value::from(i % 4)])
                .unwrap();
            r2.push(vec![Value::from(i % 4), Value::from((13 * i) % 89)])
                .unwrap();
        }
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    fn three_path_instance(n: i64) -> Instance {
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 0..n {
            r1.push(vec![Value::from((7 * i) % 43), Value::from(i % 3)])
                .unwrap();
            r2.push(vec![Value::from(i % 3), Value::from((5 * i) % 37)])
                .unwrap();
            r3.push(vec![Value::from((5 * i) % 37), Value::from((3 * i) % 31)])
                .unwrap();
        }
        Instance::new(
            path_query(3),
            Database::from_relations([r1, r2, r3]).unwrap(),
        )
        .unwrap()
    }

    const PHIS: [f64; 7] = [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0];

    #[test]
    fn batched_matches_independent_solves_for_sum() {
        let inst = two_path_instance(50);
        let ranking = Ranking::sum(inst.query().variables());
        let options = PivotingOptions::default();
        let batched =
            quantile_batch_by_pivoting(&inst, &ranking, &PHIS, &AdjacentSumTrimmer, &options)
                .unwrap();
        for (phi, b) in PHIS.iter().zip(&batched) {
            let single =
                quantile_by_pivoting(&inst, &ranking, *phi, &AdjacentSumTrimmer, &options).unwrap();
            assert_eq!(b.weight, single.weight, "phi {phi}");
            assert_eq!(b.answer, single.answer, "phi {phi}");
            assert_eq!(b.target_index, single.target_index, "phi {phi}");
            assert_eq!(b.total_answers, single.total_answers, "phi {phi}");
        }
    }

    #[test]
    fn batched_matches_independent_solves_for_minmax_and_lex() {
        let inst = three_path_instance(20);
        let options = PivotingOptions::default();
        let cases: Vec<(Ranking, &dyn Trimmer)> = vec![
            (Ranking::min(inst.query().variables()), &MinMaxTrimmer),
            (Ranking::max(vars(&["x1", "x4"])), &MinMaxTrimmer),
            (Ranking::lex(vars(&["x2", "x4"])), &LexTrimmer),
        ];
        for (ranking, trimmer) in cases {
            let batched =
                quantile_batch_by_pivoting(&inst, &ranking, &PHIS, trimmer, &options).unwrap();
            for (phi, b) in PHIS.iter().zip(&batched) {
                let single =
                    quantile_by_pivoting(&inst, &ranking, *phi, trimmer, &options).unwrap();
                assert_eq!(b.weight, single.weight, "ranking {ranking}, phi {phi}");
                assert_eq!(b.answer, single.answer, "ranking {ranking}, phi {phi}");
            }
        }
    }

    #[test]
    fn batched_results_are_valid_quantiles_and_monotone() {
        let inst = two_path_instance(40);
        let ranking = Ranking::sum(inst.query().variables());
        let batched = quantile_batch_by_pivoting(
            &inst,
            &ranking,
            &PHIS,
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        for (prev, next) in batched.iter().zip(batched.iter().skip(1)) {
            assert!(prev.weight <= next.weight, "weights must be monotone in φ");
        }
        for result in &batched {
            let (below, equal) = rank_of_weight(&inst, &ranking, &result.weight).unwrap();
            assert!(
                result.target_index >= below && result.target_index < below + equal,
                "target {} outside window [{}, {})",
                result.target_index,
                below,
                below + equal
            );
        }
    }

    #[test]
    fn unsorted_and_duplicate_phis_return_in_input_order() {
        let inst = two_path_instance(30);
        let ranking = Ranking::sum(inst.query().variables());
        let phis = [0.9, 0.1, 0.5, 0.1];
        let batched = quantile_batch_by_pivoting(
            &inst,
            &ranking,
            &phis,
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        assert_eq!(batched.len(), 4);
        assert_eq!(batched[1].weight, batched[3].weight);
        assert!(batched[1].weight <= batched[2].weight);
        assert!(batched[2].weight <= batched[0].weight);
        for (phi, b) in phis.iter().zip(&batched) {
            let single = quantile_by_pivoting(
                &inst,
                &ranking,
                *phi,
                &AdjacentSumTrimmer,
                &PivotingOptions::default(),
            )
            .unwrap();
            assert_eq!(b.weight, single.weight, "phi {phi}");
        }
    }

    #[test]
    fn tiny_threshold_still_matches_independent_solves() {
        let inst = two_path_instance(30);
        let ranking = Ranking::sum(inst.query().variables());
        let options = PivotingOptions {
            materialize_threshold: Some(1),
            max_iterations: 256,
        };
        let batched =
            quantile_batch_by_pivoting(&inst, &ranking, &PHIS, &AdjacentSumTrimmer, &options)
                .unwrap();
        for (phi, b) in PHIS.iter().zip(&batched) {
            let single =
                quantile_by_pivoting(&inst, &ranking, *phi, &AdjacentSumTrimmer, &options).unwrap();
            assert_eq!(b.weight, single.weight, "phi {phi}");
            assert_eq!(b.iterations, single.iterations, "phi {phi}");
        }
    }

    #[test]
    fn empty_phis_and_invalid_phis_are_handled() {
        let inst = two_path_instance(10);
        let ranking = Ranking::sum(inst.query().variables());
        let empty = quantile_batch_by_pivoting(
            &inst,
            &ranking,
            &[],
            &AdjacentSumTrimmer,
            &PivotingOptions::default(),
        )
        .unwrap();
        assert!(empty.is_empty());
        assert!(matches!(
            quantile_batch_by_pivoting(
                &inst,
                &ranking,
                &[0.5, 1.5],
                &AdjacentSumTrimmer,
                &PivotingOptions::default()
            )
            .unwrap_err(),
            CoreError::InvalidPhi(_)
        ));
    }
}
