//! ε-sketches of weight multisets (Lemma 6.3, with the bucket adjustment of Section 6).
//!
//! A sketch compresses a multiset of real numbers by partitioning its sorted order into
//! buckets and replacing every element of a bucket by the bucket's extreme value. If
//! the bucket starting at rank `r` contains at most `max(1, ⌊ε·r⌋)` elements, then for
//! every threshold `λ` the number of elements below `λ` changes by at most a factor
//! `1 − ε` (and never increases when rounding towards the extreme).
//!
//! The lossy SUM trimming additionally needs every *source* (the tuple that contributed
//! an element together with its multiplicity) to land in exactly one bucket, because a
//! source is later rewired to join a single bucket copy of its parent tuple. Instead of
//! the paper's post-hoc boundary adjustment, this implementation buckets at source
//! granularity directly: a source whose multiplicity alone exceeds the allowed bucket
//! size forms a bucket of its own, which is harmless because all of its elements are
//! equal (rounding is then the identity for that bucket).

/// The rounding direction of a sketch.
///
/// * [`RoundDirection::Up`] rounds every element to its bucket's **maximum**; counts
///   *below* a threshold can only shrink. Used when trimming `sum < λ`, so that every
///   retained answer genuinely satisfies the predicate.
/// * [`RoundDirection::Down`] rounds to the bucket's **minimum**; counts *above* a
///   threshold can only shrink. Used when trimming `sum > λ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundDirection {
    /// Round elements up to the bucket maximum (sound for `< λ` predicates).
    Up,
    /// Round elements down to the bucket minimum (sound for `> λ` predicates).
    Down,
}

/// One input element of a sketch: a value with a multiplicity, contributed by a single
/// source identified by `source`.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchEntry<S> {
    /// The numeric value (a partial sum in the lossy trimming).
    pub value: f64,
    /// How many underlying elements share this value from this source.
    pub multiplicity: u128,
    /// An opaque source identifier (the contributing tuple in the lossy trimming).
    pub source: S,
}

/// One bucket of a sketch.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchBucket<S> {
    /// The value every element of the bucket is rounded to (the bucket max for
    /// [`RoundDirection::Up`], the min for [`RoundDirection::Down`]).
    pub rounded_value: f64,
    /// Total multiplicity of the bucket.
    pub multiplicity: u128,
    /// The sources whose entries were placed in this bucket.
    pub sources: Vec<S>,
}

/// Builds an ε-sketch of the multiset described by `entries`.
///
/// Every source appears in exactly one bucket. For `RoundDirection::Up` the guarantee
/// is `(1 − ε)·↓λ(L) ≤ ↓λ(S) ≤ ↓λ(L)` for every `λ`, where `↓λ` counts elements
/// strictly below `λ`; for `Down` the symmetric guarantee holds for counts strictly
/// above `λ`.
pub fn sketch<S>(
    mut entries: Vec<SketchEntry<S>>,
    epsilon: f64,
    direction: RoundDirection,
) -> Vec<SketchBucket<S>> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    match direction {
        RoundDirection::Up => entries.sort_by(|a, b| a.value.total_cmp(&b.value)),
        RoundDirection::Down => entries.sort_by(|a, b| b.value.total_cmp(&a.value)),
    }

    let mut buckets: Vec<SketchBucket<S>> = Vec::new();
    let mut processed: u128 = 0;
    let mut iter = entries.into_iter().peekable();
    while let Some(first) = iter.next() {
        // A new bucket starts at rank `processed`; it may hold up to
        // max(1, ⌊ε · processed⌋) elements before rounding could violate the bound
        // (a single oversized source is always allowed — it is homogeneous).
        let allowance = ((epsilon * processed as f64).floor() as u128).max(1);
        let mut bucket_mult = first.multiplicity;
        let mut rounded_value = first.value;
        let mut sources = vec![first.source];
        while let Some(next) = iter.peek() {
            if bucket_mult + next.multiplicity > allowance {
                break;
            }
            let next = iter.next().expect("peeked");
            bucket_mult += next.multiplicity;
            rounded_value = next.value;
            sources.push(next.source);
        }
        processed += bucket_mult;
        buckets.push(SketchBucket {
            rounded_value,
            multiplicity: bucket_mult,
            sources,
        });
    }
    buckets
}

/// Counts the elements of a multiset strictly below `lambda`.
pub fn count_below(entries: &[(f64, u128)], lambda: f64) -> u128 {
    entries
        .iter()
        .filter(|(v, _)| *v < lambda)
        .map(|(_, m)| m)
        .sum()
}

/// Counts the elements of a multiset strictly above `lambda`.
pub fn count_above(entries: &[(f64, u128)], lambda: f64) -> u128 {
    entries
        .iter()
        .filter(|(v, _)| *v > lambda)
        .map(|(_, m)| m)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(values: &[(f64, u128)]) -> Vec<SketchEntry<usize>> {
        values
            .iter()
            .enumerate()
            .map(|(i, &(value, multiplicity))| SketchEntry {
                value,
                multiplicity,
                source: i,
            })
            .collect()
    }

    fn bucket_pairs<S>(buckets: &[SketchBucket<S>]) -> Vec<(f64, u128)> {
        buckets
            .iter()
            .map(|b| (b.rounded_value, b.multiplicity))
            .collect()
    }

    #[test]
    fn every_source_lands_in_exactly_one_bucket() {
        let input = entries(&[(1.0, 3), (2.0, 50), (2.0, 1), (5.0, 2), (9.0, 7), (9.0, 1)]);
        let n_sources = input.len();
        let buckets = sketch(input, 0.3, RoundDirection::Up);
        let mut seen: Vec<usize> = buckets.iter().flat_map(|b| b.sources.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n_sources).collect::<Vec<_>>());
    }

    #[test]
    fn total_multiplicity_is_preserved() {
        let input = entries(&[(1.0, 3), (4.0, 10), (4.5, 2), (7.0, 40)]);
        let total: u128 = input.iter().map(|e| e.multiplicity).sum();
        for dir in [RoundDirection::Up, RoundDirection::Down] {
            let buckets = sketch(input.clone(), 0.2, dir);
            let sketched: u128 = buckets.iter().map(|b| b.multiplicity).sum();
            assert_eq!(sketched, total);
        }
    }

    #[test]
    fn rounding_up_never_increases_counts_below() {
        let raw: Vec<(f64, u128)> = (0..200)
            .map(|i| ((i * 13 % 97) as f64, (i % 5 + 1) as u128))
            .collect();
        let buckets = sketch(entries(&raw), 0.25, RoundDirection::Up);
        let sketched = bucket_pairs(&buckets);
        for lambda in [0.0, 5.0, 20.0, 48.5, 96.0, 200.0] {
            let exact = count_below(&raw, lambda);
            let approx = count_below(&sketched, lambda);
            assert!(approx <= exact, "λ={lambda}: {approx} > {exact}");
            assert!(
                approx as f64 >= (1.0 - 0.25) * exact as f64 - 1e-9,
                "λ={lambda}: {approx} < (1-ε)·{exact}"
            );
        }
    }

    #[test]
    fn rounding_down_never_increases_counts_above() {
        let raw: Vec<(f64, u128)> = (0..300).map(|i| ((i * 31 % 113) as f64, 1u128)).collect();
        let buckets = sketch(entries(&raw), 0.2, RoundDirection::Down);
        let sketched = bucket_pairs(&buckets);
        for lambda in [-1.0, 3.0, 50.0, 90.0, 112.0] {
            let exact = count_above(&raw, lambda);
            let approx = count_above(&sketched, lambda);
            assert!(approx <= exact, "λ={lambda}");
            assert!(
                approx as f64 >= (1.0 - 0.2) * exact as f64 - 1e-9,
                "λ={lambda}: {approx} < (1-ε)·{exact}"
            );
        }
    }

    #[test]
    fn sketch_size_is_logarithmic_in_the_multiset_size() {
        // 100k elements with distinct values: the sketch must be much smaller.
        let raw: Vec<(f64, u128)> = (0..100_000).map(|i| (i as f64, 1u128)).collect();
        let eps = 0.1;
        let buckets = sketch(entries(&raw), eps, RoundDirection::Up);
        let n = raw.len() as f64;
        // Bound: ~ 1/ε singleton buckets plus log_{1+ε}(n) geometric ones.
        let bound = (1.0 / eps) + (n.ln() / (1.0 + eps).ln()) + 10.0;
        assert!(
            (buckets.len() as f64) < bound,
            "sketch has {} buckets, bound {bound}",
            buckets.len()
        );
    }

    #[test]
    fn oversized_sources_form_their_own_homogeneous_bucket() {
        // The second entry has a huge multiplicity; it must not be split and must not
        // distort counts for thresholds between values.
        let raw = vec![(1.0, 1u128), (2.0, 1_000_000), (3.0, 1)];
        let buckets = sketch(entries(&raw), 0.1, RoundDirection::Up);
        let sketched = bucket_pairs(&buckets);
        assert_eq!(count_below(&sketched, 2.0), count_below(&raw, 2.0));
        assert_eq!(count_below(&sketched, 2.5), count_below(&raw, 2.5));
        assert_eq!(count_below(&sketched, 3.5), count_below(&raw, 3.5));
        // The oversized source is alone in its bucket.
        let big = buckets
            .iter()
            .find(|b| b.multiplicity >= 1_000_000)
            .unwrap();
        assert_eq!(big.sources.len(), 1);
    }

    #[test]
    fn empty_input_produces_no_buckets() {
        let buckets: Vec<SketchBucket<usize>> = sketch(Vec::new(), 0.5, RoundDirection::Up);
        assert!(buckets.is_empty());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        sketch(entries(&[(1.0, 1)]), 1.5, RoundDirection::Up);
    }

    #[test]
    fn tiny_epsilon_degenerates_to_exact_representation() {
        let raw: Vec<(f64, u128)> = (0..50).map(|i| (i as f64, 1u128)).collect();
        let buckets = sketch(entries(&raw), 1e-9, RoundDirection::Up);
        assert_eq!(buckets.len(), raw.len());
        let sketched = bucket_pairs(&buckets);
        for lambda in 0..51 {
            assert_eq!(
                count_below(&sketched, lambda as f64),
                count_below(&raw, lambda as f64)
            );
        }
    }
}
