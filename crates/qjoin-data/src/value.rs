//! Domain constants.

use std::fmt;
use std::sync::Arc;

/// A constant from the database domain `dom`.
///
/// Values are what tuples are made of and what query variables are mapped to by query
/// answers. They need to be cheaply clonable, hashable, and totally ordered so that they
/// can serve as join keys, grouping keys, and lexicographic-order inputs.
///
/// Three variants are supported:
///
/// * [`Value::Int`] — the common case for identifiers and numeric attributes
///   (e.g. `#likes` in the paper's social-network example).
/// * [`Value::Str`] — interned strings for symbolic identifiers. Stored behind an
///   [`Arc`] so copies of tuples made by the trimming constructions stay cheap.
/// * [`Value::Composite`] — an ordered pair of values, used by the trimming
///   constructions of the paper when a freshly introduced column needs to carry a
///   structured identifier (e.g. "(join-group, dyadic-interval)" or
///   "(partition id, bucket id)"). Keeping this inside [`Value`] means the rewritten
///   databases remain ordinary databases that every algorithm in the stack can process.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit signed integer constant.
    Int(i64),
    /// An interned string constant.
    Str(Arc<str>),
    /// An ordered pair of constants (used for synthesized identifier columns).
    Composite(Arc<(Value, Value)>),
}

impl Value {
    /// Builds a string value, interning the given text.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a composite (pair) value.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Composite(Arc::new((a, b)))
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// An estimate of the heap bytes owned by this value beyond its inline
    /// representation. Interned payloads ([`Value::Str`], [`Value::Composite`]) may be
    /// shared between values; each referencing value is charged the full payload, so
    /// summing over a relation yields an upper bound on resident bytes.
    pub fn estimated_heap_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 0,
            Value::Str(s) => s.len(),
            Value::Composite(pair) => {
                std::mem::size_of::<(Value, Value)>()
                    + pair.0.estimated_heap_bytes()
                    + pair.1.estimated_heap_bytes()
            }
        }
    }

    /// Interprets the value as a numeric weight, following the paper's convention of
    /// "attribute weights equal to their values" used in all worked examples.
    ///
    /// Non-numeric values have no default numeric interpretation and map to `None`;
    /// ranking functions that need weights for such values must supply an explicit
    /// weight function.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Composite(p) => write!(f, "({:?},{:?})", p.0, p.1),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Composite(p) => write!(f, "({},{})", p.0, p.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::HashSet;

    #[test]
    fn int_roundtrip_and_accessors() {
        let v = Value::from(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_f64(), Some(42.0));
        assert_eq!(v.as_str(), None);
    }

    #[test]
    fn str_roundtrip_and_accessors() {
        let v = Value::from("alice");
        assert_eq!(v.as_str(), Some("alice"));
        assert_eq!(v.as_int(), None);
        assert_eq!(v.as_f64(), None);
    }

    #[test]
    fn negative_ints_order_below_positive() {
        assert_eq!(Value::from(-5).cmp(&Value::from(3)), Ordering::Less);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_ne!(Value::from("x"), Value::from("y"));
        assert_ne!(Value::from(1), Value::from("1"));
    }

    #[test]
    fn composite_values_distinguish_components() {
        let a = Value::pair(Value::from(1), Value::from(2));
        let b = Value::pair(Value::from(1), Value::from(3));
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn values_are_hashable_and_deduplicate() {
        let set: HashSet<Value> = [
            Value::from(1),
            Value::from(1),
            Value::from("a"),
            Value::from("a"),
            Value::pair(Value::from(1), Value::from("a")),
            Value::pair(Value::from(1), Value::from("a")),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_and_debug_render() {
        assert_eq!(Value::from(7).to_string(), "7");
        assert_eq!(Value::from("ev").to_string(), "ev");
        assert_eq!(format!("{:?}", Value::from("ev")), "\"ev\"");
        assert_eq!(
            Value::pair(Value::from(1), Value::from(2)).to_string(),
            "(1,2)"
        );
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let mut vals = vec![
            Value::from("b"),
            Value::from(2),
            Value::from("a"),
            Value::from(1),
        ];
        vals.sort();
        // All ints come before all strings (enum variant order), and each variant is
        // internally ordered.
        assert_eq!(
            vals,
            vec![
                Value::from(1),
                Value::from(2),
                Value::from("a"),
                Value::from("b")
            ]
        );
    }
}
