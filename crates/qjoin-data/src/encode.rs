//! Dictionary encoding: dense integer codes for [`Value`]s plus column-major,
//! selection-vector relation views.
//!
//! The trimming recursion of the quantile driver re-examines the same base tuples
//! dozens of times per solve. In the row representation every round re-hashes
//! [`Value`] enums (recursing through `Arc`s for composite identifiers) and allocates
//! a projected [`Tuple`](crate::Tuple) per join-key lookup. This module provides the
//! encoded substrate that the hot path runs on instead:
//!
//! * [`Dictionary`] — an **order-preserving** interner: every distinct value of a
//!   database is assigned a dense `u64` code such that `code(a) < code(b)` iff
//!   `a < b`. Equality and ordering of codes therefore coincide with equality and
//!   ordering of the values they stand for, so join keys, group keys, and
//!   lexicographic tie-breaks can all operate on plain integers.
//! * [`EncodedColumns`] — one relation's tuples transposed into column-major
//!   `Vec<u64>` code columns, shared behind `Arc`s.
//! * [`EncodedRelation`] — a *view* over encoded columns: a list of [`Segment`]s,
//!   each holding a selection vector ([`SelVec`]) into the base columns plus
//!   synthesized columns ([`SynthCol`]) for the variables the trimming
//!   constructions introduce (partition tags, dyadic-interval identifiers).
//!   Filtering and partition unions produce new views over the *same* base columns —
//!   no tuple is ever copied on the encoded path; values are decoded back to
//!   [`Value`]s only at the answer boundary.

use crate::{DataError, Database, Result, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// An order-preserving interner from [`Value`]s to dense `u64` codes.
///
/// Codes are assigned in sorted value order, so for any two dictionary values
/// `a`, `b`: `encode(a) < encode(b)` ⇔ `a < b`. This is what lets the encoded
/// execution layer compare codes wherever the row layer compares values (join-group
/// ordering, pivot tie-breaks) without decoding.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    /// Code → value, in sorted value order.
    values: Vec<Value>,
    /// Value → code.
    index: HashMap<Value, u64>,
}

impl Dictionary {
    /// Builds the dictionary of every distinct value appearing in the database.
    pub fn from_database(db: &Database) -> Dictionary {
        let mut values: Vec<Value> = Vec::new();
        for rel in db.relations() {
            for tuple in rel.iter() {
                values.extend(tuple.values().iter().cloned());
            }
        }
        values.sort_unstable();
        values.dedup();
        let index = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u64))
            .collect();
        Dictionary { values, index }
    }

    /// The code of a value, if it belongs to the dictionary.
    pub fn encode(&self, value: &Value) -> Option<u64> {
        self.index.get(value).copied()
    }

    /// The value behind a code. Panics if the code is out of range.
    pub fn decode(&self, code: u64) -> &Value {
        &self.values[code as usize]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All dictionary values in code order (i.e. sorted).
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// One relation's tuples transposed into column-major code columns.
#[derive(Clone, Debug)]
pub struct EncodedColumns {
    name: String,
    len: usize,
    columns: Vec<Arc<Vec<u64>>>,
}

impl EncodedColumns {
    /// Encodes a relation against a dictionary that contains all of its values.
    pub fn encode(relation: &crate::Relation, dict: &Dictionary) -> Result<EncodedColumns> {
        if relation.len() > u32::MAX as usize {
            return Err(DataError::EncodingOverflow(format!(
                "relation {} has {} tuples; the encoded layer indexes rows with u32",
                relation.name(),
                relation.len()
            )));
        }
        let mut columns: Vec<Vec<u64>> = vec![Vec::with_capacity(relation.len()); relation.arity()];
        for tuple in relation.iter() {
            for (col, value) in tuple.values().iter().enumerate() {
                let code = dict.encode(value).ok_or_else(|| {
                    DataError::EncodingOverflow(format!(
                        "value {value:?} of relation {} is missing from the dictionary",
                        relation.name()
                    ))
                })?;
                columns[col].push(code);
            }
        }
        Ok(EncodedColumns {
            name: relation.name().to_string(),
            len: relation.len(),
            columns: columns.into_iter().map(Arc::new).collect(),
        })
    }

    /// The relational symbol.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of base columns (the relation's arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// One code column.
    pub fn column(&self, col: usize) -> &[u64] {
        &self.columns[col]
    }
}

/// A whole database in encoded form: one dictionary shared by all relations.
///
/// The engine builds (and caches) one of these per catalog generation, so every
/// prepared plan compiled against that generation amortizes the encoding pass.
#[derive(Clone, Debug)]
pub struct EncodedDatabase {
    dictionary: Arc<Dictionary>,
    relations: BTreeMap<String, Arc<EncodedColumns>>,
}

impl EncodedDatabase {
    /// Encodes a database: builds the dictionary, then every relation's columns.
    /// Relations encode independently, so they are fanned out over the current
    /// executor pool; results are gathered in relation order, so the encoding
    /// (and the first error reported, if any) is identical at any thread count.
    pub fn encode(db: &Database) -> Result<EncodedDatabase> {
        let dictionary = Arc::new(Dictionary::from_database(db));
        let rels: Vec<_> = db.relations().collect();
        let encoded = qjoin_par::par_map(rels.len(), |i| {
            EncodedColumns::encode(rels[i], &dictionary).map(Arc::new)
        });
        let mut relations = BTreeMap::new();
        for (rel, columns) in rels.iter().zip(encoded) {
            relations.insert(rel.name().to_string(), columns?);
        }
        Ok(EncodedDatabase {
            dictionary,
            relations,
        })
    }

    /// The shared dictionary.
    pub fn dictionary(&self) -> &Arc<Dictionary> {
        &self.dictionary
    }

    /// Looks up one relation's encoded columns.
    pub fn relation(&self, name: &str) -> Result<&Arc<EncodedColumns>> {
        self.relations
            .get(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Iterates over the encoded relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Arc<EncodedColumns>)> {
        self.relations.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Total rows across all relations (the database size `n`).
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|c| c.len()).sum()
    }
}

/// A selection vector: which base rows a segment selects, in order. Rows may repeat
/// (the dyadic SUM construction emits one output row per covering interval).
#[derive(Clone, Debug)]
pub enum SelVec {
    /// Every base row, in storage order.
    All(u32),
    /// An explicit list of base-row indices.
    Rows(Arc<Vec<u32>>),
}

impl SelVec {
    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::All(n) => *n as usize,
            SelVec::Rows(rows) => rows.len(),
        }
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The base row selected at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            SelVec::All(_) => i as u32,
            SelVec::Rows(rows) => rows[i],
        }
    }
}

/// A synthesized column of a segment: either one constant code for every row of the
/// segment (partition tags) or one code per row (dyadic-interval identifiers).
#[derive(Clone, Debug)]
pub enum SynthCol {
    /// The same code for every row of the segment.
    Const(u64),
    /// One code per row, aligned with the segment's selection vector.
    PerRow(Arc<Vec<u64>>),
}

impl SynthCol {
    /// The code at row `i` of the segment.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            SynthCol::Const(c) => *c,
            SynthCol::PerRow(codes) => codes[i],
        }
    }
}

/// One contiguous block of an [`EncodedRelation`] view: a selection vector into the
/// base columns plus the segment's synthesized-column codes.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Which base rows this segment selects.
    pub sel: SelVec,
    /// Synthesized columns, appended after the base columns. All segments of one
    /// relation view carry the same number of synthesized columns.
    pub synth: Vec<SynthCol>,
}

impl Segment {
    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }
}

/// A relation *view* on the encoded path: shared base columns plus a list of
/// segments. This is what the trim rounds produce instead of materialized relation
/// copies — a filter is a selection vector, a partition union is one tagged segment
/// per partition, and the dyadic SUM construction is a selection vector with repeats
/// plus a per-row synthesized column.
#[derive(Clone, Debug)]
pub struct EncodedRelation {
    name: String,
    base: Arc<EncodedColumns>,
    synth_arity: usize,
    segments: Vec<Segment>,
}

impl EncodedRelation {
    /// The full view of a base relation: one `All` segment, no synthesized columns.
    pub fn full(base: Arc<EncodedColumns>) -> EncodedRelation {
        let len = base.len() as u32;
        EncodedRelation {
            name: base.name().to_string(),
            base,
            synth_arity: 0,
            segments: vec![Segment {
                sel: SelVec::All(len),
                synth: Vec::new(),
            }],
        }
    }

    /// Assembles a view from explicit segments. Every segment must carry exactly
    /// `synth_arity` synthesized columns.
    pub fn from_segments(
        name: impl Into<String>,
        base: Arc<EncodedColumns>,
        synth_arity: usize,
        segments: Vec<Segment>,
    ) -> Result<EncodedRelation> {
        let name = name.into();
        for seg in &segments {
            if seg.synth.len() != synth_arity {
                return Err(DataError::EncodingOverflow(format!(
                    "segment of {name} has {} synthesized columns, expected {synth_arity}",
                    seg.synth.len()
                )));
            }
        }
        Ok(EncodedRelation {
            name,
            base,
            synth_arity,
            segments,
        })
    }

    /// The relational symbol of the view.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A renamed view sharing this view's storage (self-join elimination).
    pub fn renamed(&self, name: impl Into<String>) -> EncodedRelation {
        EncodedRelation {
            name: name.into(),
            ..self.clone()
        }
    }

    /// The shared base columns.
    pub fn base(&self) -> &Arc<EncodedColumns> {
        &self.base
    }

    /// Number of base columns.
    pub fn base_arity(&self) -> usize {
        self.base.arity()
    }

    /// Number of synthesized columns.
    pub fn synth_arity(&self) -> usize {
        self.synth_arity
    }

    /// Total arity of the view (base + synthesized columns).
    pub fn arity(&self) -> usize {
        self.base.arity() + self.synth_arity
    }

    /// The segments of the view.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total number of rows across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// True when the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(Segment::is_empty)
    }

    /// The code at (`segment`, `row`, `col`), where columns `0..base_arity` read the
    /// base columns through the selection vector and columns `base_arity..arity`
    /// read the synthesized columns.
    #[inline]
    pub fn code(&self, segment: usize, row: usize, col: usize) -> u64 {
        let seg = &self.segments[segment];
        let base_arity = self.base.arity();
        if col < base_arity {
            self.base.column(col)[seg.sel.get(row) as usize]
        } else {
            seg.synth[col - base_arity].get(row)
        }
    }

    /// Calls `f` once per row of the view, in segment order, with `(segment, row)`
    /// coordinates suitable for [`EncodedRelation::code`].
    pub fn for_each_row(&self, mut f: impl FnMut(usize, usize)) {
        for (seg_idx, seg) in self.segments.iter().enumerate() {
            for row in 0..seg.len() {
                f(seg_idx, row);
            }
        }
    }

    /// A view keeping only the rows for which `keep` returns true. When a segment
    /// keeps every row, it is shared (cloned by handle) rather than rebuilt — the
    /// encoded analogue of [`crate::Relation::filtered`]'s sharing guarantee.
    ///
    /// Each segment is scanned in fixed-size chunks over the current executor
    /// pool; every chunk packs its surviving rows locally and the partials are
    /// concatenated in canonical chunk order, so the resulting selection vector
    /// is byte-identical to the sequential scan at any thread count.
    pub fn filtered(&self, keep: impl Fn(usize, usize) -> bool + Sync) -> EncodedRelation {
        let keep = &keep;
        let segments = self
            .segments
            .iter()
            .enumerate()
            .map(|(seg_idx, seg)| {
                let parts: Vec<(Vec<u32>, Vec<Vec<u64>>)> =
                    qjoin_par::par_map_chunks(seg.len(), qjoin_par::DEFAULT_CHUNK, |_, range| {
                        let mut rows = Vec::new();
                        let mut synth: Vec<Vec<u64>> = vec![Vec::new(); seg.synth.len()];
                        for row in range {
                            if !keep(seg_idx, row) {
                                continue;
                            }
                            rows.push(seg.sel.get(row));
                            for (k, col) in seg.synth.iter().enumerate() {
                                if let SynthCol::PerRow(codes) = col {
                                    synth[k].push(codes[row]);
                                }
                            }
                        }
                        (rows, synth)
                    });
                let kept: usize = parts.iter().map(|(rows, _)| rows.len()).sum();
                if kept == seg.len() {
                    return seg.clone();
                }
                let mut rows = Vec::with_capacity(kept);
                let mut synth_rows: Vec<Vec<u64>> = vec![Vec::new(); seg.synth.len()];
                for (part_rows, part_synth) in parts {
                    rows.extend(part_rows);
                    for (k, part) in part_synth.into_iter().enumerate() {
                        synth_rows[k].extend(part);
                    }
                }
                let synth = seg
                    .synth
                    .iter()
                    .enumerate()
                    .map(|(k, col)| match col {
                        SynthCol::Const(c) => SynthCol::Const(*c),
                        SynthCol::PerRow(_) => {
                            SynthCol::PerRow(Arc::new(std::mem::take(&mut synth_rows[k])))
                        }
                    })
                    .collect();
                Segment {
                    sel: SelVec::Rows(Arc::new(rows)),
                    synth,
                }
            })
            .collect();
        EncodedRelation {
            name: self.name.clone(),
            base: Arc::clone(&self.base),
            synth_arity: self.synth_arity,
            segments,
        }
    }

    /// A view with the same base and no rows (the encoded analogue of clearing a
    /// relation while preserving its schema).
    pub fn cleared(&self) -> EncodedRelation {
        EncodedRelation {
            name: self.name.clone(),
            base: Arc::clone(&self.base),
            synth_arity: self.synth_arity,
            segments: Vec::new(),
        }
    }

    /// True when the two views share the same base column storage.
    pub fn shares_base_with(&self, other: &EncodedRelation) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    fn small_db() -> Database {
        let r = Relation::from_rows("R", &[&[3, 1], &[1, 2], &[3, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[2, 9], &[1, 7]]).unwrap();
        Database::from_relations([r, s]).unwrap()
    }

    #[test]
    fn dictionary_is_order_preserving() {
        let db = small_db();
        let dict = Dictionary::from_database(&db);
        // Distinct values: 1, 2, 3, 7, 9.
        assert_eq!(dict.len(), 5);
        for (a, b) in dict.values().iter().zip(dict.values().iter().skip(1)) {
            assert!(a < b);
        }
        let c1 = dict.encode(&Value::from(1)).unwrap();
        let c9 = dict.encode(&Value::from(9)).unwrap();
        assert!(c1 < c9);
        assert_eq!(dict.decode(c1), &Value::from(1));
        assert_eq!(dict.encode(&Value::from(42)), None);
    }

    #[test]
    fn dictionary_orders_across_variants() {
        let mut r = Relation::new("R", 1);
        r.push(vec![Value::from("b")]).unwrap();
        r.push(vec![Value::from(5)]).unwrap();
        r.push(vec![Value::from("a")]).unwrap();
        let db = Database::from_relations([r]).unwrap();
        let dict = Dictionary::from_database(&db);
        let ci = dict.encode(&Value::from(5)).unwrap();
        let ca = dict.encode(&Value::from("a")).unwrap();
        let cb = dict.encode(&Value::from("b")).unwrap();
        assert!(ci < ca && ca < cb, "Int < Str, strings ordered");
    }

    #[test]
    fn encoded_columns_round_trip() {
        let db = small_db();
        let enc = EncodedDatabase::encode(&db).unwrap();
        let dict = Arc::clone(enc.dictionary());
        let r = enc.relation("R").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        let original = db.relation("R").unwrap();
        for (row, tuple) in original.iter().enumerate() {
            for col in 0..2 {
                assert_eq!(dict.decode(r.column(col)[row]), tuple.get(col).unwrap());
            }
        }
        assert_eq!(enc.total_rows(), db.total_tuples());
    }

    #[test]
    fn full_view_reads_base_codes() {
        let db = small_db();
        let enc = EncodedDatabase::encode(&db).unwrap();
        let view = EncodedRelation::full(Arc::clone(enc.relation("R").unwrap()));
        assert_eq!(view.len(), 3);
        assert_eq!(view.arity(), 2);
        assert_eq!(view.code(0, 1, 0), enc.relation("R").unwrap().column(0)[1]);
    }

    #[test]
    fn filtered_view_selects_and_shares_when_total() {
        let db = small_db();
        let enc = EncodedDatabase::encode(&db).unwrap();
        let dict = Arc::clone(enc.dictionary());
        let view = EncodedRelation::full(Arc::clone(enc.relation("R").unwrap()));
        let three = dict.encode(&Value::from(3)).unwrap();
        let filtered = view.filtered(|seg, row| view.code(seg, row, 0) == three);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.shares_base_with(&view));
        let all = view.filtered(|_, _| true);
        assert!(matches!(all.segments()[0].sel, SelVec::All(_)));
        let none = view.filtered(|_, _| false);
        assert!(none.is_empty());
    }

    #[test]
    fn synth_columns_extend_arity() {
        let db = small_db();
        let enc = EncodedDatabase::encode(&db).unwrap();
        let base = Arc::clone(enc.relation("S").unwrap());
        let seg = Segment {
            sel: SelVec::Rows(Arc::new(vec![1, 0, 1])),
            synth: vec![
                SynthCol::Const(7),
                SynthCol::PerRow(Arc::new(vec![5, 6, 7])),
            ],
        };
        let view = EncodedRelation::from_segments("S", base, 2, vec![seg]).unwrap();
        assert_eq!(view.arity(), 4);
        assert_eq!(view.len(), 3);
        assert_eq!(view.code(0, 0, 2), 7);
        assert_eq!(view.code(0, 2, 3), 7);
        // Row 0 selects base row 1.
        assert_eq!(view.code(0, 0, 0), enc.relation("S").unwrap().column(0)[1]);
    }

    #[test]
    fn from_segments_validates_synth_arity() {
        let db = small_db();
        let enc = EncodedDatabase::encode(&db).unwrap();
        let base = Arc::clone(enc.relation("S").unwrap());
        let seg = Segment {
            sel: SelVec::All(2),
            synth: vec![SynthCol::Const(0)],
        };
        assert!(EncodedRelation::from_segments("S", base, 2, vec![seg]).is_err());
    }

    #[test]
    fn cleared_view_is_empty_with_same_arity() {
        let db = small_db();
        let enc = EncodedDatabase::encode(&db).unwrap();
        let view = EncodedRelation::full(Arc::clone(enc.relation("R").unwrap()));
        let cleared = view.cleared();
        assert!(cleared.is_empty());
        assert_eq!(cleared.arity(), view.arity());
    }
}
