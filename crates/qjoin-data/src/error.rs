//! Error types for the data layer.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A tuple's arity does not match its relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared relation arity.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// A relation with this name already exists in the database.
    DuplicateRelation(String),
    /// A relation with this name does not exist in the database.
    UnknownRelation(String),
    /// The database cannot be represented in encoded (dictionary-coded) form, e.g.
    /// a relation exceeds the encoded layer's `u32` row indexing or a value is
    /// missing from the dictionary it is encoded against.
    EncodingOverflow(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch in relation {relation}: expected {expected}, found {found}"
            ),
            DataError::DuplicateRelation(name) => {
                write!(f, "relation {name} already exists in the database")
            }
            DataError::UnknownRelation(name) => {
                write!(f, "relation {name} does not exist in the database")
            }
            DataError::EncodingOverflow(msg) => {
                write!(f, "database cannot be dictionary-encoded: {msg}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_relation_names() {
        let e = DataError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("R"));
        assert!(e.to_string().contains("expected 2"));
        assert!(DataError::DuplicateRelation("S".into())
            .to_string()
            .contains("S"));
        assert!(DataError::UnknownRelation("T".into())
            .to_string()
            .contains("T"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&DataError::UnknownRelation("X".into()));
    }
}
