//! # qjoin-data
//!
//! Relational storage substrate for the `qjoin` family of crates, which together
//! reproduce *"Efficient Computation of Quantiles over Joins"* (PODS 2023).
//!
//! This crate is intentionally small and self-contained: it defines the constants
//! ([`Value`]), tuples ([`Tuple`]), relations ([`Relation`]), and databases
//! ([`Database`]) that every other crate operates on. The model follows Section 2.1
//! of the paper:
//!
//! * a **database** `D` holds one finite relation per relational symbol,
//! * the **size** of `D` is the total number of tuples `n`,
//! * the **domain** is a set of constants; here modelled by [`Value`], which supports
//!   integers and (interned) strings so that both join keys and the auxiliary columns
//!   introduced by the trimming constructions of the paper (partition identifiers,
//!   dyadic-interval identifiers, sketch-bucket identifiers) can be stored uniformly.
//!
//! The crate has no query knowledge; queries, hypergraphs and join trees live in
//! `qjoin-query`.
//!
//! ## Example
//!
//! ```
//! use qjoin_data::{Database, Relation, Value};
//!
//! let mut db = Database::new();
//! let mut admin = Relation::new("Admin", 2);
//! admin.push(vec![Value::from(1), Value::from(100)]).unwrap();
//! admin.push(vec![Value::from(2), Value::from(100)]).unwrap();
//! db.add_relation(admin).unwrap();
//!
//! assert_eq!(db.total_tuples(), 2);
//! assert_eq!(db.relation("Admin").unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
pub mod encode;
mod error;
mod relation;
mod tuple;
mod value;

pub use database::Database;
pub use encode::{
    Dictionary, EncodedColumns, EncodedDatabase, EncodedRelation, Segment, SelVec, SynthCol,
};
pub use error::DataError;
pub use relation::Relation;
pub use tuple::Tuple;
pub use value::Value;

/// Convenient `Result` alias used throughout the data layer.
pub type Result<T> = std::result::Result<T, DataError>;
