//! Relations: named, fixed-arity collections of tuples.

use crate::{DataError, Result, Tuple, Value};
use std::fmt;

/// A finite relation `R^D ⊆ dom^{a_R}`.
///
/// Relations carry a name (the relational symbol), a fixed arity, and a vector of
/// tuples. The paper's trimming constructions materialize many derived relations
/// (copies with filtered tuples, extra columns, unions across partitions); all of those
/// are plain [`Relation`] instances, so downstream algorithms never need to distinguish
/// "original" from "synthesized" relations.
///
/// Duplicate tuples are permitted at this layer (a bag), but every construction in the
/// stack that relies on set semantics (counting, direct access) deduplicates or asserts
/// as needed; the generators in `qjoin-workload` always produce set-valued relations.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    arity: usize,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given name and arity.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation directly from tuples, validating that all arities agree.
    pub fn from_tuples(
        name: impl Into<String>,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut rel = Relation::new(name, arity);
        for t in tuples {
            rel.push_tuple(t)?;
        }
        Ok(rel)
    }

    /// Convenience constructor from rows of integers (the common case in tests and
    /// in the paper's worked examples).
    pub fn from_rows(name: impl Into<String>, rows: &[&[i64]]) -> Result<Self> {
        let name = name.into();
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut rel = Relation::new(name, arity);
        for row in rows {
            rel.push_tuple(Tuple::from(row.to_vec()))?;
        }
        Ok(rel)
    }

    /// The relational symbol this relation interprets.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arity `a_R`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Borrow all tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Appends a row of values.
    pub fn push(&mut self, values: Vec<Value>) -> Result<()> {
        self.push_tuple(Tuple::new(values))
    }

    /// Appends a tuple, validating its arity.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.arity {
            return Err(DataError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity,
                found: tuple.arity(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Returns a renamed copy of this relation (used when eliminating self-joins by
    /// materializing a fresh relation per repeated symbol, Section 2.2).
    pub fn renamed(&self, new_name: impl Into<String>) -> Relation {
        Relation {
            name: new_name.into(),
            arity: self.arity,
            tuples: self.tuples.clone(),
        }
    }

    /// Returns a copy keeping only tuples satisfying `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(&Tuple) -> bool) -> Relation {
        Relation {
            name: self.name.clone(),
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| keep(t)).cloned().collect(),
        }
    }

    /// Returns a copy in which every tuple has been mapped through `f`, with the arity
    /// adjusted to `new_arity` (all mapped tuples must have that arity).
    pub fn mapped(&self, new_arity: usize, mut f: impl FnMut(&Tuple) -> Tuple) -> Result<Relation> {
        let mut rel = Relation::new(self.name.clone(), new_arity);
        for t in &self.tuples {
            rel.push_tuple(f(t))?;
        }
        Ok(rel)
    }

    /// Returns a copy where every tuple is extended with a constant extra column.
    /// Used by the partition-union trimming construction (Algorithm 3 of the paper).
    pub fn with_constant_column(&self, value: Value) -> Relation {
        Relation {
            name: self.name.clone(),
            arity: self.arity + 1,
            tuples: self
                .tuples
                .iter()
                .map(|t| t.extended(value.clone()))
                .collect(),
        }
    }

    /// Removes duplicate tuples in place, preserving first occurrence order.
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::with_capacity(self.tuples.len());
        self.tuples.retain(|t| seen.insert(t.clone()));
    }

    /// Replaces the stored tuples wholesale (arity is re-validated).
    pub fn set_tuples(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        for t in &tuples {
            if t.arity() != self.arity {
                return Err(DataError::ArityMismatch {
                    relation: self.name.clone(),
                    expected: self.arity,
                    found: t.arity(),
                });
            }
        }
        self.tuples = tuples;
        Ok(())
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}/{} ({} tuples)",
            self.name,
            self.arity,
            self.tuples.len()
        )?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t:?}")?;
        }
        if self.tuples.len() > 20 {
            writeln!(f, "  ... ({} more)", self.tuples.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_arity() {
        let mut r = Relation::new("R", 2);
        assert!(r.push(vec![Value::from(1), Value::from(2)]).is_ok());
        let err = r.push(vec![Value::from(1)]).unwrap_err();
        match err {
            DataError::ArityMismatch {
                expected, found, ..
            } => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn from_rows_builds_integer_relation() {
        let r = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[2, 3]]).unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuples()[1], Tuple::from(vec![1i64, 4]));
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let err = Relation::from_rows("S", &[&[1, 3], &[1]]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn renamed_copies_tuples_under_new_symbol() {
        let r = Relation::from_rows("R", &[&[1, 2]]).unwrap();
        let r2 = r.renamed("R_copy1");
        assert_eq!(r2.name(), "R_copy1");
        assert_eq!(r2.tuples(), r.tuples());
    }

    #[test]
    fn filtered_keeps_matching_tuples() {
        let r = Relation::from_rows("R", &[&[1], &[2], &[3], &[4]]).unwrap();
        let even = r.filtered(|t| t[0].as_int().unwrap() % 2 == 0);
        assert_eq!(even.len(), 2);
        assert!(even.iter().all(|t| t[0].as_int().unwrap() % 2 == 0));
    }

    #[test]
    fn with_constant_column_extends_every_tuple() {
        let r = Relation::from_rows("R", &[&[1], &[2]]).unwrap();
        let ext = r.with_constant_column(Value::from(7));
        assert_eq!(ext.arity(), 2);
        assert!(ext.iter().all(|t| t[1] == Value::from(7)));
    }

    #[test]
    fn dedup_removes_repeated_tuples() {
        let mut r = Relation::from_rows("R", &[&[1, 2], &[1, 2], &[3, 4]]).unwrap();
        r.dedup();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn mapped_can_change_arity() {
        let r = Relation::from_rows("R", &[&[1, 2], &[3, 4]]).unwrap();
        let swapped = r.mapped(2, |t| t.project(&[1, 0])).unwrap();
        assert_eq!(swapped.tuples()[0], Tuple::from(vec![2i64, 1]));
        let first = r.mapped(1, |t| t.project(&[0])).unwrap();
        assert_eq!(first.arity(), 1);
    }

    #[test]
    fn empty_relation_reports_empty() {
        let r = Relation::new("E", 3);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
