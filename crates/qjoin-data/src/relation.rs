//! Relations: named, fixed-arity collections of tuples with shared storage.

use crate::{DataError, Result, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// A finite relation `R^D ⊆ dom^{a_R}`.
///
/// Relations carry a name (the relational symbol), a fixed arity, and their tuples.
/// The paper's trimming constructions materialize many derived relations (copies with
/// filtered tuples, extra columns, unions across partitions); all of those are plain
/// [`Relation`] instances, so downstream algorithms never need to distinguish
/// "original" from "synthesized" relations.
///
/// ## Copy-on-write storage
///
/// Tuple storage lives behind an [`Arc`], so cloning a relation — and by extension
/// cloning a [`Database`](crate::Database) — is a pointer bump, not a data copy.
/// [`Relation::renamed`] shares storage with the original, and [`Relation::filtered`]
/// shares it whenever the filter keeps every tuple. Mutating methods
/// ([`Relation::push_tuple`], [`Relation::dedup`], …) copy the storage first if (and
/// only if) it is currently shared. Sharing is observable through
/// [`Relation::shares_tuples_with`], which the trim layer's and engine's sharing
/// invariants are tested against.
///
/// Duplicate tuples are permitted at this layer (a bag), but every construction in the
/// stack that relies on set semantics (counting, direct access) deduplicates or asserts
/// as needed; the generators in `qjoin-workload` always produce set-valued relations.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    name: Arc<str>,
    arity: usize,
    tuples: Arc<Vec<Tuple>>,
}

impl Relation {
    /// Creates an empty relation with the given name and arity.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation {
            name: name.into().into(),
            arity,
            tuples: Arc::new(Vec::new()),
        }
    }

    /// Creates a relation directly from tuples, validating that all arities agree.
    pub fn from_tuples(
        name: impl Into<String>,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut rel = Relation::new(name, arity);
        for t in tuples {
            rel.push_tuple(t)?;
        }
        Ok(rel)
    }

    /// Convenience constructor from rows of integers (the common case in tests and
    /// in the paper's worked examples).
    pub fn from_rows(name: impl Into<String>, rows: &[&[i64]]) -> Result<Self> {
        let name = name.into();
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut rel = Relation::new(name, arity);
        for row in rows {
            rel.push_tuple(Tuple::from(row.to_vec()))?;
        }
        Ok(rel)
    }

    /// The relational symbol this relation interprets.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arity `a_R`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Borrow all tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// True when both relations are backed by the *same* tuple storage (pointer
    /// equality on the shared allocation, not tuple-by-tuple comparison). This is the
    /// observable form of the copy-on-write guarantee: constructions that leave a
    /// relation untouched must return a relation for which this holds.
    pub fn shares_tuples_with(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    /// True when the tuple storage is referenced by at least one other relation (or
    /// database snapshot) — a global sharing probe for observability code that has no
    /// second relation at hand to compare against with
    /// [`Relation::shares_tuples_with`].
    pub fn is_storage_shared(&self) -> bool {
        Arc::strong_count(&self.tuples) > 1
    }

    /// An estimate of the resident heap bytes held by this relation's tuple storage
    /// (tuple vectors plus value payloads). Interned [`Value::Str`] payloads are
    /// attributed to every referencing tuple, so the estimate is an upper bound.
    pub fn estimated_tuple_bytes(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| std::mem::size_of::<Tuple>() + t.estimated_heap_bytes())
            .sum()
    }

    /// Appends a row of values.
    pub fn push(&mut self, values: Vec<Value>) -> Result<()> {
        self.push_tuple(Tuple::new(values))
    }

    /// Appends a tuple, validating its arity. Copies the tuple storage first when it
    /// is shared with another relation (copy-on-write).
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.arity {
            return Err(DataError::ArityMismatch {
                relation: self.name.to_string(),
                expected: self.arity,
                found: tuple.arity(),
            });
        }
        Arc::make_mut(&mut self.tuples).push(tuple);
        Ok(())
    }

    /// Returns a renamed view of this relation (used when eliminating self-joins by
    /// materializing a fresh relation per repeated symbol, Section 2.2). The returned
    /// relation shares this relation's tuple storage — renaming is O(1).
    pub fn renamed(&self, new_name: impl Into<String>) -> Relation {
        Relation {
            name: new_name.into().into(),
            arity: self.arity,
            tuples: Arc::clone(&self.tuples),
        }
    }

    /// Returns a copy keeping only tuples satisfying `keep`. If every tuple is kept,
    /// the result shares this relation's storage instead of copying it; tuples are
    /// only cloned once a rejected tuple proves a copy is needed.
    pub fn filtered(&self, mut keep: impl FnMut(&Tuple) -> bool) -> Relation {
        let mask: Vec<bool> = self.tuples.iter().map(&mut keep).collect();
        if mask.iter().all(|&k| k) {
            return self.clone();
        }
        let tuples: Vec<Tuple> = self
            .tuples
            .iter()
            .zip(&mask)
            .filter(|&(_, &kept)| kept)
            .map(|(t, _)| t.clone())
            .collect();
        Relation {
            name: Arc::clone(&self.name),
            arity: self.arity,
            tuples: Arc::new(tuples),
        }
    }

    /// Returns a copy in which every tuple has been mapped through `f`, with the arity
    /// adjusted to `new_arity` (all mapped tuples must have that arity).
    pub fn mapped(&self, new_arity: usize, mut f: impl FnMut(&Tuple) -> Tuple) -> Result<Relation> {
        let mut tuples = Vec::with_capacity(self.tuples.len());
        for t in self.tuples.iter() {
            let mapped = f(t);
            if mapped.arity() != new_arity {
                return Err(DataError::ArityMismatch {
                    relation: self.name.to_string(),
                    expected: new_arity,
                    found: mapped.arity(),
                });
            }
            tuples.push(mapped);
        }
        Ok(Relation {
            name: Arc::clone(&self.name),
            arity: new_arity,
            tuples: Arc::new(tuples),
        })
    }

    /// Returns a copy where every tuple is extended with a constant extra column
    /// (the shape of the paper's tagging constructions: partition identifiers,
    /// dyadic-interval identifiers, sketch buckets).
    pub fn with_constant_column(&self, value: Value) -> Relation {
        let mut tuples = Vec::with_capacity(self.tuples.len());
        tuples.extend(self.tuples.iter().map(|t| t.extended(value.clone())));
        Relation {
            name: Arc::clone(&self.name),
            arity: self.arity + 1,
            tuples: Arc::new(tuples),
        }
    }

    /// Removes duplicate tuples in place, preserving first occurrence order.
    ///
    /// Deduplication hashes tuples *by reference*: when the relation is already
    /// duplicate-free this is a read-only pass that leaves shared storage untouched,
    /// and when duplicates exist the retained tuples are moved (not cloned) unless the
    /// storage is shared with another relation (copy-on-write).
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::with_capacity(self.tuples.len());
        let keep: Vec<bool> = self.tuples.iter().map(|t| seen.insert(t)).collect();
        drop(seen);
        if keep.iter().all(|&k| k) {
            return;
        }
        let tuples = Arc::make_mut(&mut self.tuples);
        let mut index = 0;
        tuples.retain(|_| {
            let kept = keep[index];
            index += 1;
            kept
        });
    }

    /// Replaces the stored tuples wholesale (arity is re-validated).
    pub fn set_tuples(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        for t in &tuples {
            if t.arity() != self.arity {
                return Err(DataError::ArityMismatch {
                    relation: self.name.to_string(),
                    expected: self.arity,
                    found: t.arity(),
                });
            }
        }
        self.tuples = Arc::new(tuples);
        Ok(())
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}/{} ({} tuples)",
            self.name,
            self.arity,
            self.tuples.len()
        )?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t:?}")?;
        }
        if self.tuples.len() > 20 {
            writeln!(f, "  ... ({} more)", self.tuples.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_arity() {
        let mut r = Relation::new("R", 2);
        assert!(r.push(vec![Value::from(1), Value::from(2)]).is_ok());
        let err = r.push(vec![Value::from(1)]).unwrap_err();
        match err {
            DataError::ArityMismatch {
                expected, found, ..
            } => {
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn from_rows_builds_integer_relation() {
        let r = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[2, 3]]).unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuples()[1], Tuple::from(vec![1i64, 4]));
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let err = Relation::from_rows("S", &[&[1, 3], &[1]]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn renamed_shares_tuples_under_new_symbol() {
        let r = Relation::from_rows("R", &[&[1, 2]]).unwrap();
        let r2 = r.renamed("R_copy1");
        assert_eq!(r2.name(), "R_copy1");
        assert_eq!(r2.tuples(), r.tuples());
        assert!(r2.shares_tuples_with(&r), "renaming must not copy tuples");
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let r = Relation::from_rows("R", &[&[1], &[2]]).unwrap();
        let mut copy = r.clone();
        assert!(copy.shares_tuples_with(&r));
        assert!(r.is_storage_shared());
        copy.push(vec![Value::from(3)]).unwrap();
        assert!(!copy.shares_tuples_with(&r), "mutation must unshare");
        assert_eq!(r.len(), 2, "original is untouched by the mutation");
        assert_eq!(copy.len(), 3);
    }

    #[test]
    fn filtered_keeps_matching_tuples() {
        let r = Relation::from_rows("R", &[&[1], &[2], &[3], &[4]]).unwrap();
        let even = r.filtered(|t| t[0].as_int().unwrap() % 2 == 0);
        assert_eq!(even.len(), 2);
        assert!(even.iter().all(|t| t[0].as_int().unwrap() % 2 == 0));
        assert!(!even.shares_tuples_with(&r));
    }

    #[test]
    fn filtered_keeping_everything_shares_storage() {
        let r = Relation::from_rows("R", &[&[1], &[2]]).unwrap();
        let all = r.filtered(|_| true);
        assert!(all.shares_tuples_with(&r));
    }

    #[test]
    fn with_constant_column_extends_every_tuple() {
        let r = Relation::from_rows("R", &[&[1], &[2]]).unwrap();
        let ext = r.with_constant_column(Value::from(7));
        assert_eq!(ext.arity(), 2);
        assert!(ext.iter().all(|t| t[1] == Value::from(7)));
    }

    #[test]
    fn dedup_removes_repeated_tuples() {
        let mut r = Relation::from_rows("R", &[&[1, 2], &[1, 2], &[3, 4]]).unwrap();
        r.dedup();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn dedup_of_duplicate_free_relation_keeps_sharing() {
        let mut r = Relation::from_rows("R", &[&[1, 2], &[3, 4]]).unwrap();
        let original = r.clone();
        r.dedup();
        assert!(r.shares_tuples_with(&original));
    }

    #[test]
    fn dedup_unshares_when_duplicates_exist() {
        let mut r = Relation::from_rows("R", &[&[1], &[1], &[2]]).unwrap();
        let original = r.clone();
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(original.len(), 3, "shared snapshot must survive the dedup");
        assert!(!r.shares_tuples_with(&original));
    }

    #[test]
    fn mapped_can_change_arity() {
        let r = Relation::from_rows("R", &[&[1, 2], &[3, 4]]).unwrap();
        let swapped = r.mapped(2, |t| t.project(&[1, 0])).unwrap();
        assert_eq!(swapped.tuples()[0], Tuple::from(vec![2i64, 1]));
        let first = r.mapped(1, |t| t.project(&[0])).unwrap();
        assert_eq!(first.arity(), 1);
    }

    #[test]
    fn empty_relation_reports_empty() {
        let r = Relation::new("E", 3);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn estimated_bytes_grow_with_tuples() {
        let small = Relation::from_rows("R", &[&[1, 2]]).unwrap();
        let large = Relation::from_rows("R", &[&[1, 2], &[3, 4], &[5, 6]]).unwrap();
        assert!(large.estimated_tuple_bytes() > small.estimated_tuple_bytes());
        assert_eq!(Relation::new("E", 2).estimated_tuple_bytes(), 0);
    }
}
