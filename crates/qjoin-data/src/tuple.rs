//! Tuples: fixed-arity sequences of values.

use crate::Value;
use std::fmt;
use std::ops::Index;

/// A database tuple, i.e. an element of `dom^a` for a relation of arity `a`.
///
/// Tuples are positional; the mapping from positions to query variables is supplied by
/// the atom that references the relation (see `qjoin-query`). The trimming
/// constructions of the paper frequently *extend* tuples with fresh columns (partition
/// identifiers, dyadic-interval identifiers, sketch buckets), which is supported by
/// [`Tuple::extended`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The empty (zero-arity) tuple, used for the artificial join-tree root `t_0 = ()`
    /// described in Section 2.4 of the paper.
    pub fn empty() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of values (the arity of the tuple).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `pos`, or `None` if out of bounds.
    pub fn get(&self, pos: usize) -> Option<&Value> {
        self.values.get(pos)
    }

    /// Borrow all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns a new tuple with `extra` appended at the end.
    pub fn extended(&self, extra: Value) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + 1);
        values.extend_from_slice(&self.values);
        values.push(extra);
        Tuple { values }
    }

    /// Returns the projection of this tuple onto the given positions, in that order.
    ///
    /// Used to compute join keys (the values of the variables shared with a parent
    /// join-tree node) and to strip synthesized columns when mapping answers of a
    /// trimmed instance back to answers of the original query.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&p| self.values[p].clone()).collect(),
        }
    }

    /// Consumes the tuple and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// An estimate of the heap bytes owned by this tuple: its value vector plus any
    /// heap payloads of the values themselves (see [`Value::estimated_heap_bytes`]).
    pub fn estimated_heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
            + self
                .values
                .iter()
                .map(Value::estimated_heap_bytes)
                .sum::<usize>()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl From<Vec<i64>> for Tuple {
    fn from(values: Vec<i64>) -> Self {
        Tuple::new(values.into_iter().map(Value::Int).collect())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::from(vals.to_vec())
    }

    #[test]
    fn arity_and_indexing() {
        let tup = t(&[1, 2, 3]);
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup[0], Value::from(1));
        assert_eq!(tup.get(2), Some(&Value::from(3)));
        assert_eq!(tup.get(3), None);
    }

    #[test]
    fn empty_tuple_has_zero_arity() {
        assert_eq!(Tuple::empty().arity(), 0);
        assert_eq!(Tuple::empty(), Tuple::new(vec![]));
    }

    #[test]
    fn extended_appends_without_mutating_original() {
        let tup = t(&[1, 2]);
        let ext = tup.extended(Value::from(9));
        assert_eq!(tup.arity(), 2);
        assert_eq!(ext.arity(), 3);
        assert_eq!(ext[2], Value::from(9));
        assert_eq!(&ext.values()[..2], tup.values());
    }

    #[test]
    fn project_selects_and_reorders() {
        let tup = t(&[10, 20, 30, 40]);
        let proj = tup.project(&[3, 1]);
        assert_eq!(proj, t(&[40, 20]));
    }

    #[test]
    fn project_empty_positions_gives_empty_tuple() {
        assert_eq!(t(&[1, 2]).project(&[]), Tuple::empty());
    }

    #[test]
    fn tuples_compare_lexicographically() {
        assert!(t(&[1, 2]) < t(&[1, 3]));
        assert!(t(&[1, 2]) < t(&[2, 0]));
        assert!(t(&[1]) < t(&[1, 0]));
    }

    #[test]
    fn from_iterator_collects_values() {
        let tup: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(tup, t(&[0, 1, 2]));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", t(&[1, 2])), "(1, 2)");
    }
}
