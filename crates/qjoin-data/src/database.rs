//! Databases: named collections of relations.

use crate::{DataError, Relation, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A database instance `D`: one finite relation per relational symbol.
///
/// The size of a database, written `n` throughout the paper, is the total number of
/// tuples across all relations ([`Database::total_tuples`]). The quantile algorithms
/// repeatedly construct *derived* databases (trimmed instances); those are ordinary
/// [`Database`] values as well, so they can be counted, pivoted, and trimmed again.
///
/// Relations are stored in a [`BTreeMap`] keyed by name so that iteration order is
/// deterministic, which keeps the algorithms reproducible and the tests stable.
///
/// Because [`Relation`] shares its tuple storage behind an `Arc`, cloning a database
/// copies only the map of relation handles — the tuples themselves are shared until a
/// relation is mutated (copy-on-write). Derived databases built by the trimming
/// constructions therefore share every relation they do not rewrite.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Builds a database from an iterator of relations.
    pub fn from_relations(relations: impl IntoIterator<Item = Relation>) -> Result<Self> {
        let mut db = Database::new();
        for r in relations {
            db.add_relation(r)?;
        }
        Ok(db)
    }

    /// Adds a relation; fails if a relation with the same name already exists.
    pub fn add_relation(&mut self, relation: Relation) -> Result<()> {
        if self.relations.contains_key(relation.name()) {
            return Err(DataError::DuplicateRelation(relation.name().to_string()));
        }
        self.relations.insert(relation.name().to_string(), relation);
        Ok(())
    }

    /// Adds a relation, replacing any existing relation with the same name.
    pub fn insert_relation(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Removes (and returns) the relation with the given name, if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Looks up a relation by name, mutably.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// True if a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Names of all relations, in name order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The database size `n`: total number of tuples over all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// An estimate of the resident heap bytes across all relations' tuple storage
    /// (see [`Relation::estimated_tuple_bytes`]). Shared storage is counted once per
    /// referencing relation, so the estimate is an upper bound.
    pub fn estimated_tuple_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.estimated_tuple_bytes())
            .sum()
    }

    /// True when any relation is empty (the join of a query referencing it is then
    /// trivially empty).
    pub fn has_empty_relation(&self) -> bool {
        self.relations.values().any(|r| r.is_empty())
    }

    /// Picks a relation name that does not collide with any existing relation, by
    /// appending a numeric suffix to `base`. Used when materializing fresh relations
    /// for self-join elimination and for join-tree node copies.
    pub fn fresh_name(&self, base: &str) -> String {
        if !self.contains(base) {
            return base.to_string();
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{base}#{i}");
            if !self.contains(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database with {} relations, {} tuples",
            self.num_relations(),
            self.total_tuples()
        )?;
        for r in self.relations.values() {
            write!(f, "{r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample_db() -> Database {
        let r = Relation::from_rows("R", &[&[1, 1], &[2, 2]]).unwrap();
        let s = Relation::from_rows("S", &[&[1, 3], &[1, 4], &[1, 5], &[2, 3], &[2, 4]]).unwrap();
        Database::from_relations([r, s]).unwrap()
    }

    #[test]
    fn total_tuples_sums_over_relations() {
        let db = sample_db();
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 7);
    }

    #[test]
    fn duplicate_relation_names_are_rejected() {
        let mut db = sample_db();
        let err = db.add_relation(Relation::new("R", 2)).unwrap_err();
        assert!(matches!(err, DataError::DuplicateRelation(name) if name == "R"));
    }

    #[test]
    fn insert_relation_replaces_existing() {
        let mut db = sample_db();
        db.insert_relation(Relation::from_rows("R", &[&[9, 9]]).unwrap());
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.num_relations(), 2);
    }

    #[test]
    fn unknown_relation_lookup_errors() {
        let db = sample_db();
        assert!(matches!(
            db.relation("T").unwrap_err(),
            DataError::UnknownRelation(name) if name == "T"
        ));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut db = sample_db();
        assert_eq!(db.fresh_name("T"), "T");
        assert_eq!(db.fresh_name("R"), "R#1");
        db.add_relation(Relation::new("R#1", 1)).unwrap();
        assert_eq!(db.fresh_name("R"), "R#2");
    }

    #[test]
    fn has_empty_relation_detects_empties() {
        let mut db = sample_db();
        assert!(!db.has_empty_relation());
        db.add_relation(Relation::new("E", 1)).unwrap();
        assert!(db.has_empty_relation());
    }

    #[test]
    fn relation_mut_allows_in_place_updates() {
        let mut db = sample_db();
        db.relation_mut("R")
            .unwrap()
            .push(vec![Value::from(3), Value::from(3)])
            .unwrap();
        assert_eq!(db.relation("R").unwrap().len(), 3);
    }

    #[test]
    fn relations_iterate_in_name_order() {
        let db = sample_db();
        let names: Vec<&str> = db.relation_names().collect();
        assert_eq!(names, vec!["R", "S"]);
    }

    #[test]
    fn remove_relation_returns_it() {
        let mut db = sample_db();
        let r = db.remove_relation("R").unwrap();
        assert_eq!(r.name(), "R");
        assert!(!db.contains("R"));
        assert!(db.remove_relation("R").is_none());
    }
}
