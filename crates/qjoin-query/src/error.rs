//! Error types for the query layer.

use std::fmt;

/// Errors raised when constructing or validating queries and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An atom references a relation that is missing from the database.
    MissingRelation(String),
    /// An atom's variable tuple length does not match its relation's arity.
    AtomArityMismatch {
        /// The relation symbol.
        relation: String,
        /// Number of variables in the atom.
        atom_arity: usize,
        /// Arity of the relation in the database.
        relation_arity: usize,
    },
    /// The query is cyclic but an acyclic query was required.
    CyclicQuery(String),
    /// The query has no atoms.
    EmptyQuery,
    /// An underlying data-layer error.
    Data(qjoin_data::DataError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MissingRelation(name) => {
                write!(f, "query references relation {name} which is not in the database")
            }
            QueryError::AtomArityMismatch {
                relation,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "atom over {relation} has {atom_arity} variables but the relation has arity {relation_arity}"
            ),
            QueryError::CyclicQuery(q) => write!(f, "query is cyclic: {q}"),
            QueryError::EmptyQuery => write!(f, "query has no atoms"),
            QueryError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<qjoin_data::DataError> for QueryError {
    fn from(e: qjoin_data::DataError) -> Self {
        QueryError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(QueryError::MissingRelation("R".into())
            .to_string()
            .contains("R"));
        assert!(QueryError::EmptyQuery.to_string().contains("no atoms"));
        let e = QueryError::AtomArityMismatch {
            relation: "S".into(),
            atom_arity: 3,
            relation_arity: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn data_errors_convert() {
        let e: QueryError = qjoin_data::DataError::UnknownRelation("X".into()).into();
        assert!(matches!(e, QueryError::Data(_)));
    }
}
