//! Join queries (full conjunctive queries).

use crate::{Atom, Hypergraph, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A Join Query (JQ) `Q = R_1(X_1), ..., R_ℓ(X_ℓ)`.
///
/// A JQ is a *full* conjunctive query: every variable is an output variable. A query
/// answer is a homomorphism from the query to the database, represented downstream as
/// an assignment from [`Variable`]s to values.
///
/// The number of atoms `ℓ` is treated as a constant by the complexity analysis (data
/// complexity); the library supports arbitrary `ℓ`, but the join-tree enumeration used
/// to find adjacent covers of the weighted variables is exhaustive and limited to small
/// queries (see [`crate::join_tree::enumerate_join_trees`]).
#[derive(Clone, PartialEq, Eq)]
pub struct JoinQuery {
    atoms: Vec<Atom>,
}

impl JoinQuery {
    /// Creates a query from its atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        JoinQuery { atoms }
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms `ℓ`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The atom at the given index.
    pub fn atom(&self, idx: usize) -> &Atom {
        &self.atoms[idx]
    }

    /// The variables of the query `var(Q)`, in first-occurrence order.
    ///
    /// This order is the canonical answer schema used by `qjoin-exec` when
    /// materializing answers.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// The variables as a set.
    pub fn variable_set(&self) -> BTreeSet<Variable> {
        self.atoms
            .iter()
            .flat_map(|a| a.variables().iter().cloned())
            .collect()
    }

    /// True if the query mentions the variable.
    pub fn contains_variable(&self, var: &Variable) -> bool {
        self.atoms.iter().any(|a| a.contains(var))
    }

    /// True if some relational symbol occurs in more than one atom (a self-join).
    pub fn has_self_joins(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms
            .iter()
            .any(|a| !seen.insert(a.relation().to_string()))
    }

    /// The query hypergraph `H(Q)`: one vertex per variable, one hyperedge per atom.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.variable_set(),
            self.atoms.iter().map(|a| a.variable_set()).collect(),
        )
    }

    /// Indices of atoms containing the given variable.
    pub fn atoms_containing(&self, var: &Variable) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains(var))
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns a copy of the query with an extra atom appended.
    pub fn with_atom(&self, atom: Atom) -> JoinQuery {
        let mut atoms = self.atoms.clone();
        atoms.push(atom);
        JoinQuery { atoms }
    }

    /// Returns a copy with the atom at `idx` replaced.
    pub fn with_replaced_atom(&self, idx: usize, atom: Atom) -> JoinQuery {
        let mut atoms = self.atoms.clone();
        atoms[idx] = atom;
        JoinQuery { atoms }
    }

    /// Returns a copy in which the given variable has been appended to *every* atom.
    ///
    /// This is the "add the same variable `x_p` to all the atoms" step of the
    /// partition-union trimming construction (Algorithm 3 of the paper). Adding a
    /// variable to every hyperedge preserves acyclicity: any join tree of the original
    /// query remains a join tree after the addition.
    pub fn with_variable_everywhere(&self, var: &Variable) -> JoinQuery {
        JoinQuery {
            atoms: self
                .atoms
                .iter()
                .map(|a| a.with_extra_variable(var.clone()))
                .collect(),
        }
    }
}

impl fmt::Debug for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Builds the k-path query `R_1(x_1, x_2), R_2(x_2, x_3), ..., R_k(x_k, x_{k+1})`.
///
/// Path queries are the canonical examples in the paper: the 2-path (binary join) is
/// tractable for full SUM, while the 3-path is the prototypical intractable case for
/// full SUM and the prototypical *tractable* case for the partial SUM over
/// `{x_1, x_2, x_3}` (Section 5.3).
pub fn path_query(k: usize) -> JoinQuery {
    let atoms = (1..=k)
        .map(|i| {
            Atom::new(
                format!("R{i}"),
                vec![
                    Variable::new(format!("x{i}")),
                    Variable::new(format!("x{}", i + 1)),
                ],
            )
        })
        .collect();
    JoinQuery::new(atoms)
}

/// Builds the k-star query `R_1(x_0, x_1), R_2(x_0, x_2), ..., R_k(x_0, x_k)`:
/// `k` relations sharing a central join variable `x_0`.
pub fn star_query(k: usize) -> JoinQuery {
    let atoms = (1..=k)
        .map(|i| {
            Atom::new(
                format!("R{i}"),
                vec![Variable::new("x0"), Variable::new(format!("x{i}"))],
            )
        })
        .collect();
    JoinQuery::new(atoms)
}

/// Builds the triangle query `R(x, y), S(y, z), T(z, x)` — the smallest cyclic JQ,
/// used as a negative example for the dichotomy (cyclic queries are intractable even
/// for answer-existence under the Hyperclique hypothesis).
pub fn triangle_query() -> JoinQuery {
    JoinQuery::new(vec![
        Atom::from_names("R", &["x", "y"]),
        Atom::from_names("S", &["y", "z"]),
        Atom::from_names("T", &["z", "x"]),
    ])
}

/// Builds the social-network query of the paper's introduction:
/// `Admin(u1, e), Share(u2, e, l2), Attend(u3, e, l3)`.
pub fn social_network_query() -> JoinQuery {
    JoinQuery::new(vec![
        Atom::from_names("Admin", &["u1", "e"]),
        Atom::from_names("Share", &["u2", "e", "l2"]),
        Atom::from_names("Attend", &["u3", "e", "l3"]),
    ])
}

/// Builds the 4-atom query of Figure 1 of the paper:
/// `R(x1, x2), S(x1, x3), T(x2, x4), U(x4, x5)`.
pub fn figure1_query() -> JoinQuery {
    JoinQuery::new(vec![
        Atom::from_names("R", &["x1", "x2"]),
        Atom::from_names("S", &["x1", "x3"]),
        Atom::from_names("T", &["x2", "x4"]),
        Atom::from_names("U", &["x4", "x5"]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = path_query(3);
        let variables = q.variables();
        let names: Vec<&str> = variables.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["x1", "x2", "x3", "x4"]);
    }

    #[test]
    fn path_query_structure() {
        let q = path_query(2);
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.atom(0).to_string(), "R1(x1, x2)");
        assert_eq!(q.atom(1).to_string(), "R2(x2, x3)");
    }

    #[test]
    fn star_query_shares_center() {
        let q = star_query(3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.atoms_containing(&Variable::new("x0")).len(), 3);
        assert_eq!(q.atoms_containing(&Variable::new("x2")), vec![1]);
    }

    #[test]
    fn self_join_detection() {
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["x", "y"]),
            Atom::from_names("R", &["y", "z"]),
        ]);
        assert!(q.has_self_joins());
        assert!(!path_query(3).has_self_joins());
    }

    #[test]
    fn with_variable_everywhere_extends_all_atoms() {
        let q = path_query(2).with_variable_everywhere(&Variable::new("xp"));
        assert!(q.atoms().iter().all(|a| a.contains(&Variable::new("xp"))));
        assert_eq!(q.atom(0).arity(), 3);
    }

    #[test]
    fn figure1_query_matches_paper() {
        let q = figure1_query();
        assert_eq!(q.to_string(), "R(x1, x2), S(x1, x3), T(x2, x4), U(x4, x5)");
        assert_eq!(q.variables().len(), 5);
    }

    #[test]
    fn hypergraph_has_one_edge_per_atom() {
        let q = social_network_query();
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 6);
    }

    #[test]
    fn with_replaced_atom_substitutes_in_place() {
        let q = path_query(2);
        let q2 = q.with_replaced_atom(0, Atom::from_names("R1", &["x1", "x2", "v"]));
        assert_eq!(q2.atom(0).arity(), 3);
        assert_eq!(q2.atom(1).arity(), 2);
    }
}
