//! # qjoin-query
//!
//! Join queries, hypergraphs, acyclicity testing, and join trees — the query-level
//! substrate of the `qjoin` reproduction of *"Efficient Computation of Quantiles over
//! Joins"* (PODS 2023).
//!
//! This crate covers Section 2.1 of the paper:
//!
//! * [`Variable`], [`Atom`], and [`JoinQuery`] model full conjunctive queries without
//!   projection (JQs).
//! * [`Hypergraph`] is the query hypergraph `H(Q)` with the vertex/edge utilities the
//!   dichotomy of Theorem 5.6 needs (independent sets, chordless paths, maximal
//!   hyperedges).
//! * [`join_tree::JoinTree`] plus the GYO-reduction based [`acyclicity`] module decide
//!   acyclicity and build (rooted) join trees satisfying the running-intersection
//!   property; [`join_tree::enumerate_join_trees`] exhaustively enumerates join trees
//!   of small queries, which is how the library searches for trees in which the
//!   weighted variables sit on adjacent nodes (Lemma D.1).
//! * [`Instance`] bundles a query with a database and validates that they agree.
//! * [`self_join::eliminate_self_joins`] materializes fresh relations for repeated
//!   symbols (Section 2.2, "Tuple weights").
//! * [`binary::binarize`] rewrites an instance so that some join tree is binary, as
//!   required by the lossy trimming of Section 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclicity;
mod atom;
pub mod binary;
pub mod encoded;
mod error;
mod hypergraph;
mod instance;
pub mod join_tree;
pub mod query;
pub mod self_join;
pub mod variable;

pub use atom::Atom;
pub use encoded::EncodedInstance;
pub use error::QueryError;
pub use hypergraph::Hypergraph;
pub use instance::{Assignment, Instance};
pub use join_tree::JoinTree;
pub use query::JoinQuery;
pub use variable::Variable;

/// Convenient `Result` alias for query-layer operations.
pub type Result<T> = std::result::Result<T, QueryError>;
