//! Query hypergraphs and the structural measures used by the dichotomy of Theorem 5.6.

use crate::Variable;
use std::collections::{BTreeSet, HashSet};

/// A hypergraph `H = (V, E)` with variables as vertices and atom variable-sets as
/// hyperedges (Section 2.1 of the paper).
///
/// Besides basic accessors, the type implements the structural notions that the partial
/// SUM dichotomy (Theorem 5.6) is stated in terms of:
///
/// * *independent sets* — vertex sets with at most one vertex per hyperedge,
/// * *chordless paths* — paths in which no two non-consecutive vertices co-occur in a
///   hyperedge,
/// * the number of *maximal hyperedges* `mh(H)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    vertices: Vec<Variable>,
    edges: Vec<BTreeSet<Variable>>,
}

impl Hypergraph {
    /// Creates a hypergraph from a vertex set and hyperedges.
    pub fn new(vertices: BTreeSet<Variable>, edges: Vec<BTreeSet<Variable>>) -> Self {
        Hypergraph {
            vertices: vertices.into_iter().collect(),
            edges,
        }
    }

    /// The vertices (in sorted order).
    pub fn vertices(&self) -> &[Variable] {
        &self.vertices
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<Variable>] {
        &self.edges
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True if `a` and `b` appear together in some hyperedge (i.e. are adjacent).
    pub fn adjacent(&self, a: &Variable, b: &Variable) -> bool {
        self.edges.iter().any(|e| e.contains(a) && e.contains(b))
    }

    /// The neighbours of a vertex: all vertices co-occurring with it in a hyperedge
    /// (excluding the vertex itself).
    pub fn neighbours(&self, v: &Variable) -> BTreeSet<Variable> {
        let mut out = BTreeSet::new();
        for e in &self.edges {
            if e.contains(v) {
                out.extend(e.iter().cloned());
            }
        }
        out.remove(v);
        out
    }

    /// True if `set` is an independent set: no two of its vertices share a hyperedge
    /// (equivalently `|set ∩ e| ≤ 1` for every hyperedge `e`).
    pub fn is_independent(&self, set: &[Variable]) -> bool {
        let set: BTreeSet<&Variable> = set.iter().collect();
        self.edges
            .iter()
            .all(|e| e.iter().filter(|v| set.contains(v)).count() <= 1)
    }

    /// The size of a maximum independent subset of `candidates`.
    ///
    /// Brute-force over subsets; `candidates` is a set of *query* variables (constant
    /// size under data complexity), so this is exact and cheap. The dichotomy only
    /// needs to know whether the maximum exceeds 2.
    pub fn max_independent_subset(&self, candidates: &[Variable]) -> usize {
        let distinct: Vec<Variable> = candidates
            .iter()
            .cloned()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let k = distinct.len();
        assert!(k <= 24, "candidate set too large for exhaustive search");
        let mut best = 0usize;
        for mask in 0u32..(1u32 << k) {
            let size = mask.count_ones() as usize;
            if size <= best {
                continue;
            }
            let subset: Vec<Variable> = (0..k)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| distinct[i].clone())
                .collect();
            if self.is_independent(&subset) {
                best = size;
            }
        }
        best
    }

    /// The number of maximal hyperedges `mh(H)`: hyperedges not strictly contained in
    /// another hyperedge.
    pub fn num_maximal_edges(&self) -> usize {
        self.edges
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                !self
                    .edges
                    .iter()
                    .enumerate()
                    .any(|(j, f)| *i != j && e.is_subset(f) && (e.len() < f.len() || *i > j))
            })
            .count()
    }

    /// True if the sequence of vertices is a path: every two consecutive vertices are
    /// adjacent and no vertex repeats.
    pub fn is_path(&self, seq: &[Variable]) -> bool {
        if seq.is_empty() {
            return false;
        }
        let distinct: BTreeSet<&Variable> = seq.iter().collect();
        if distinct.len() != seq.len() {
            return false;
        }
        seq.windows(2).all(|w| self.adjacent(&w[0], &w[1]))
    }

    /// True if the sequence is a *chordless* path: a path in which no two
    /// non-consecutive vertices appear together in a hyperedge.
    pub fn is_chordless_path(&self, seq: &[Variable]) -> bool {
        if !self.is_path(seq) {
            return false;
        }
        for i in 0..seq.len() {
            for j in (i + 2)..seq.len() {
                if self.adjacent(&seq[i], &seq[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// True if there exists a chordless path from `a` to `b` with **at least**
    /// `min_vertices` vertices (inclusive of the endpoints).
    ///
    /// The dichotomy's intractability condition is the existence of a chordless path
    /// between two weighted variables with 4 or more vertices ("length 4 or more",
    /// counted in variables, matching the reduction in Appendix D.3 that uses a path
    /// of 3 atoms, i.e. 4 variables).
    pub fn has_long_chordless_path(&self, a: &Variable, b: &Variable, min_vertices: usize) -> bool {
        if a == b {
            return min_vertices <= 1;
        }
        let mut path = vec![a.clone()];
        let mut on_path: HashSet<Variable> = HashSet::from([a.clone()]);
        self.search_chordless(b, min_vertices, &mut path, &mut on_path)
    }

    fn search_chordless(
        &self,
        target: &Variable,
        min_vertices: usize,
        path: &mut Vec<Variable>,
        on_path: &mut HashSet<Variable>,
    ) -> bool {
        let last = path.last().expect("path never empty").clone();
        if last == *target {
            return path.len() >= min_vertices;
        }
        for next in self.neighbours(&last) {
            if on_path.contains(&next) {
                continue;
            }
            // Chordless: the new vertex may be adjacent only to the current last vertex
            // among all vertices already on the path.
            let creates_chord = path[..path.len() - 1]
                .iter()
                .any(|prev| self.adjacent(prev, &next));
            if creates_chord {
                continue;
            }
            path.push(next.clone());
            on_path.insert(next.clone());
            if self.search_chordless(target, min_vertices, path, on_path) {
                return true;
            }
            on_path.remove(&next);
            path.pop();
        }
        false
    }

    /// All chordless paths between `a` and `b` (each as a vertex sequence).
    ///
    /// Exhaustive; intended for constant-size query hypergraphs and for tests.
    pub fn chordless_paths(&self, a: &Variable, b: &Variable) -> Vec<Vec<Variable>> {
        let mut out = Vec::new();
        let mut path = vec![a.clone()];
        let mut on_path: HashSet<Variable> = HashSet::from([a.clone()]);
        self.collect_chordless(b, &mut path, &mut on_path, &mut out);
        out
    }

    fn collect_chordless(
        &self,
        target: &Variable,
        path: &mut Vec<Variable>,
        on_path: &mut HashSet<Variable>,
        out: &mut Vec<Vec<Variable>>,
    ) {
        let last = path.last().expect("path never empty").clone();
        if last == *target {
            out.push(path.clone());
            return;
        }
        for next in self.neighbours(&last) {
            if on_path.contains(&next) {
                continue;
            }
            let creates_chord = path[..path.len() - 1]
                .iter()
                .any(|prev| self.adjacent(prev, &next));
            if creates_chord {
                continue;
            }
            path.push(next.clone());
            on_path.insert(next.clone());
            self.collect_chordless(target, path, on_path, out);
            on_path.remove(&next);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{path_query, social_network_query, star_query, triangle_query};
    use crate::variable::vars;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    #[test]
    fn adjacency_follows_hyperedges() {
        let h = path_query(3).hypergraph();
        assert!(h.adjacent(&v("x1"), &v("x2")));
        assert!(!h.adjacent(&v("x1"), &v("x3")));
    }

    #[test]
    fn neighbours_of_path_midpoint() {
        let h = path_query(3).hypergraph();
        let n = h.neighbours(&v("x2"));
        assert_eq!(n, [v("x1"), v("x3")].into_iter().collect());
    }

    #[test]
    fn independent_sets_in_path() {
        let h = path_query(3).hypergraph();
        assert!(h.is_independent(&vars(&["x1", "x3"])));
        assert!(!h.is_independent(&vars(&["x1", "x2"])));
        assert!(h.is_independent(&vars(&["x1", "x4"])));
    }

    #[test]
    fn max_independent_subset_sizes() {
        // 4-path: x1..x5; {x1, x3, x5} is independent.
        let h = path_query(4).hypergraph();
        assert_eq!(
            h.max_independent_subset(&vars(&["x1", "x2", "x3", "x4", "x5"])),
            3
        );
        // 3-path full variable set: {x1, x3} or {x2, x4} — size 2, and {x1,x3,x4}? x3-x4 adjacent. So 2... but {x1, x4}? also 2.
        let h3 = path_query(3).hypergraph();
        assert_eq!(h3.max_independent_subset(&vars(&["x1", "x2", "x3"])), 2);
        assert_eq!(
            h3.max_independent_subset(&vars(&["x1", "x2", "x3", "x4"])),
            2
        );
    }

    #[test]
    fn star_center_limits_independence() {
        let h = star_query(4).hypergraph();
        // Leaves are pairwise non-adjacent.
        assert_eq!(
            h.max_independent_subset(&vars(&["x1", "x2", "x3", "x4"])),
            4
        );
        // The center is adjacent to everything.
        assert_eq!(h.max_independent_subset(&vars(&["x0", "x1"])), 1);
    }

    #[test]
    fn maximal_edges_counts_containment() {
        let h = social_network_query().hypergraph();
        // Admin(u1,e) is not contained in Share(u2,e,l2); all three are maximal.
        assert_eq!(h.num_maximal_edges(), 3);

        let q = crate::JoinQuery::new(vec![
            crate::Atom::from_names("A", &["x", "y"]),
            crate::Atom::from_names("B", &["x"]),
        ]);
        assert_eq!(q.hypergraph().num_maximal_edges(), 1);
    }

    #[test]
    fn duplicate_edges_count_one_maximal() {
        let q = crate::JoinQuery::new(vec![
            crate::Atom::from_names("A", &["x", "y"]),
            crate::Atom::from_names("B", &["y", "x"]),
        ]);
        assert_eq!(q.hypergraph().num_maximal_edges(), 1);
    }

    #[test]
    fn chordless_path_detection_in_paths() {
        let h = path_query(3).hypergraph();
        assert!(h.is_chordless_path(&vars(&["x1", "x2", "x3", "x4"])));
        assert!(h.has_long_chordless_path(&v("x1"), &v("x4"), 4));
        assert!(!h.has_long_chordless_path(&v("x1"), &v("x3"), 4));
        assert!(h.has_long_chordless_path(&v("x1"), &v("x3"), 3));
    }

    #[test]
    fn triangle_has_no_chordless_path_of_three() {
        let h = triangle_query().hypergraph();
        // Every pair of vertices is adjacent, so the only chordless paths are edges.
        assert!(!h.has_long_chordless_path(&v("x"), &v("z"), 3));
        assert!(h.has_long_chordless_path(&v("x"), &v("z"), 2));
        assert_eq!(h.chordless_paths(&v("x"), &v("z")).len(), 1);
    }

    #[test]
    fn chordless_paths_enumeration_on_path_query() {
        let h = path_query(3).hypergraph();
        let paths = h.chordless_paths(&v("x1"), &v("x4"));
        assert_eq!(paths, vec![vars(&["x1", "x2", "x3", "x4"])]);
    }

    #[test]
    fn social_network_chordless_paths_are_short() {
        // l2 and l3 are both adjacent to e, and the path l2-e-l3 is chordless with 3
        // vertices — this is exactly why the intro example is tractable.
        let h = social_network_query().hypergraph();
        let paths = h.chordless_paths(&v("l2"), &v("l3"));
        assert!(paths.iter().all(|p| p.len() <= 3));
        assert!(!h.has_long_chordless_path(&v("l2"), &v("l3"), 4));
    }

    #[test]
    fn is_path_rejects_repeats_and_gaps() {
        let h = path_query(3).hypergraph();
        assert!(!h.is_path(&vars(&["x1", "x2", "x1"])));
        assert!(!h.is_path(&vars(&["x1", "x3"])));
        assert!(h.is_path(&vars(&["x1", "x2"])));
        assert!(!h.is_path(&[]));
    }
}
