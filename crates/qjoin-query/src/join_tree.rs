//! Join trees: rooted trees over query atoms satisfying the running-intersection
//! property.

use crate::{JoinQuery, Variable};
use std::collections::BTreeSet;

/// A node of a [`JoinTree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinTreeNode {
    /// Index of the query atom this node corresponds to.
    pub atom_index: usize,
    /// Parent node id, `None` for the root.
    pub parent: Option<usize>,
    /// Child node ids.
    pub children: Vec<usize>,
}

/// A rooted join tree of an acyclic join query.
///
/// Nodes are identified by indices `0..num_nodes()`; each node corresponds to exactly
/// one query atom (`atom_index`). The tree satisfies the *running intersection
/// property*: for every variable, the nodes whose atoms contain it form a connected
/// subtree. All message-passing algorithms in the stack (counting, pivot selection,
/// sketched sums) traverse a join tree bottom-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinTree {
    nodes: Vec<JoinTreeNode>,
    root: usize,
}

impl JoinTree {
    /// Builds a join tree from an undirected edge list over atom indices, rooted at
    /// `root`. The edge list must form a tree spanning `num_nodes` nodes.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)], root: usize) -> JoinTree {
        assert!(root < num_nodes, "root out of range");
        assert_eq!(
            edges.len(),
            num_nodes.saturating_sub(1),
            "a tree on {num_nodes} nodes needs {} edges",
            num_nodes.saturating_sub(1)
        );
        let mut adj = vec![Vec::new(); num_nodes];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut nodes: Vec<JoinTreeNode> = (0..num_nodes)
            .map(|i| JoinTreeNode {
                atom_index: i,
                parent: None,
                children: Vec::new(),
            })
            .collect();
        // BFS orientation from the root.
        let mut visited = vec![false; num_nodes];
        let mut queue = std::collections::VecDeque::from([root]);
        visited[root] = true;
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            let mut neighbours = adj[u].clone();
            neighbours.sort_unstable();
            for v in neighbours {
                if !visited[v] {
                    visited[v] = true;
                    reached += 1;
                    nodes[v].parent = Some(u);
                    nodes[u].children.push(v);
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(reached, num_nodes, "edge list does not span all nodes");
        JoinTree { nodes, root }
    }

    /// Builds the trivial join tree of a single-atom query.
    pub fn single_node() -> JoinTree {
        JoinTree {
            nodes: vec![JoinTreeNode {
                atom_index: 0,
                parent: None,
                children: Vec::new(),
            }],
            root: 0,
        }
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes (equal to the number of query atoms).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node by id.
    pub fn node(&self, id: usize) -> &JoinTreeNode {
        &self.nodes[id]
    }

    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[JoinTreeNode] {
        &self.nodes
    }

    /// Node ids in bottom-up (post-) order: every node appears after all of its
    /// children. This is the traversal order of the message-passing framework.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        self.post_order(self.root, &mut order);
        order
    }

    fn post_order(&self, node: usize, out: &mut Vec<usize>) {
        for &c in &self.nodes[node].children {
            self.post_order(c, out);
        }
        out.push(node);
    }

    /// Node ids in top-down (pre-) order: every node appears before its children.
    pub fn top_down_order(&self) -> Vec<usize> {
        let mut order = self.bottom_up_order();
        order.reverse();
        order
    }

    /// The undirected edges of the tree as `(parent, child)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.parent.map(|p| (p, i)))
            .collect()
    }

    /// Returns the same tree re-rooted at `new_root`.
    pub fn rerooted(&self, new_root: usize) -> JoinTree {
        let edges = self.edges();
        let mut tree = JoinTree::from_edges(self.nodes.len(), &edges, new_root);
        for (i, n) in self.nodes.iter().enumerate() {
            tree.nodes[i].atom_index = n.atom_index;
        }
        tree
    }

    /// True if every node has at most two children (required by the lossy trimming of
    /// Section 6; see [`crate::binary::binarize`]).
    pub fn is_binary(&self) -> bool {
        self.nodes.iter().all(|n| n.children.len() <= 2)
    }

    /// The height of the tree: number of nodes on the longest root-to-leaf path.
    pub fn height(&self) -> usize {
        fn depth(tree: &JoinTree, node: usize) -> usize {
            1 + tree.nodes[node]
                .children
                .iter()
                .map(|&c| depth(tree, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, self.root)
    }

    /// Pairs of node ids that are adjacent in the tree (parent–child pairs).
    pub fn adjacent_pairs(&self) -> Vec<(usize, usize)> {
        self.edges()
    }

    /// Checks the running-intersection property of this tree against the query.
    pub fn satisfies_running_intersection(&self, query: &JoinQuery) -> bool {
        check_running_intersection(query, &self.edges(), self.nodes.len())
    }

    /// The variables shared between a node's atom and its parent's atom; empty for the
    /// root. These are the "join group" keys of the message-passing framework.
    pub fn shared_with_parent(&self, query: &JoinQuery, node: usize) -> BTreeSet<Variable> {
        match self.nodes[node].parent {
            None => BTreeSet::new(),
            Some(p) => {
                let child_vars = query.atom(self.nodes[node].atom_index).variable_set();
                let parent_vars = query.atom(self.nodes[p].atom_index).variable_set();
                child_vars.intersection(&parent_vars).cloned().collect()
            }
        }
    }
}

/// Checks the running-intersection property for an undirected tree given by `edges`
/// over `num_nodes` atoms of `query` (node `i` ↔ atom `i`).
pub fn check_running_intersection(
    query: &JoinQuery,
    edges: &[(usize, usize)],
    num_nodes: usize,
) -> bool {
    let mut adj = vec![Vec::new(); num_nodes];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    for var in query.variable_set() {
        let holders: Vec<usize> = (0..num_nodes)
            .filter(|&i| query.atom(i).contains(&var))
            .collect();
        if holders.len() <= 1 {
            continue;
        }
        // BFS within the induced subgraph of holder nodes.
        let holder_set: BTreeSet<usize> = holders.iter().copied().collect();
        let mut visited = BTreeSet::new();
        let mut queue = std::collections::VecDeque::from([holders[0]]);
        visited.insert(holders[0]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if holder_set.contains(&v) && visited.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        if visited.len() != holders.len() {
            return false;
        }
    }
    true
}

/// Enumerates **all** join trees of the query (as rooted trees with root 0), by
/// enumerating labelled trees via Prüfer sequences and keeping those that satisfy the
/// running-intersection property.
///
/// This is exhaustive and therefore only allowed for queries with at most
/// [`MAX_ENUMERATION_ATOMS`] atoms; beyond that it returns only the GYO tree (if any).
/// The quantile algorithms use this to search for a join tree in which the weighted
/// variables of a partial SUM lie on one or two adjacent nodes (Lemma D.1).
pub fn enumerate_join_trees(query: &JoinQuery) -> Vec<JoinTree> {
    let n = query.num_atoms();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![JoinTree::single_node()];
    }
    if n == 2 {
        let edges = [(0usize, 1usize)];
        if check_running_intersection(query, &edges, 2) {
            return vec![JoinTree::from_edges(2, &edges, 0)];
        }
        return Vec::new();
    }
    if n > MAX_ENUMERATION_ATOMS {
        return crate::acyclicity::gyo_join_tree(query)
            .into_iter()
            .collect();
    }
    let mut out = Vec::new();
    let seq_len = n - 2;
    let total = (n as u64).pow(seq_len as u32);
    let mut seq = vec![0usize; seq_len];
    for code in 0..total {
        let mut c = code;
        for s in seq.iter_mut() {
            *s = (c % n as u64) as usize;
            c /= n as u64;
        }
        let edges = decode_pruefer(&seq, n);
        if check_running_intersection(query, &edges, n) {
            out.push(JoinTree::from_edges(n, &edges, 0));
        }
    }
    out
}

/// Maximum query size for exhaustive join-tree enumeration (8 atoms ⇒ at most
/// 8^6 = 262144 candidate trees).
pub const MAX_ENUMERATION_ATOMS: usize = 8;

/// Decodes a Prüfer sequence into the edge list of the corresponding labelled tree.
fn decode_pruefer(seq: &[usize], n: usize) -> Vec<(usize, usize)> {
    let mut degree = vec![1usize; n];
    for &s in seq {
        degree[s] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut used = vec![false; n];
    for &s in seq {
        let leaf = (0..n)
            .find(|&i| degree[i] == 1 && !used[i])
            .expect("valid sequence");
        edges.push((leaf, s));
        used[leaf] = true;
        degree[leaf] -= 1;
        degree[s] -= 1;
    }
    let remaining: Vec<usize> = (0..n).filter(|&i| degree[i] == 1 && !used[i]).collect();
    assert_eq!(remaining.len(), 2);
    edges.push((remaining[0], remaining[1]));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{
        figure1_query, path_query, social_network_query, star_query, triangle_query,
    };

    #[test]
    fn from_edges_orients_towards_root() {
        let tree = JoinTree::from_edges(3, &[(0, 1), (1, 2)], 0);
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.node(1).parent, Some(0));
        assert_eq!(tree.node(2).parent, Some(1));
        assert_eq!(tree.node(0).children, vec![1]);
    }

    #[test]
    fn bottom_up_order_visits_children_first() {
        let tree = JoinTree::from_edges(4, &[(0, 1), (0, 2), (2, 3)], 0);
        let order = tree.bottom_up_order();
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), 0);
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(3) < pos(2));
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
    }

    #[test]
    fn top_down_is_reverse_of_bottom_up() {
        let tree = JoinTree::from_edges(3, &[(0, 1), (1, 2)], 0);
        let mut bu = tree.bottom_up_order();
        bu.reverse();
        assert_eq!(bu, tree.top_down_order());
    }

    #[test]
    fn rerooting_preserves_edges() {
        let tree = JoinTree::from_edges(4, &[(0, 1), (1, 2), (2, 3)], 0);
        let rerooted = tree.rerooted(3);
        assert_eq!(rerooted.root(), 3);
        let mut e1: Vec<(usize, usize)> = tree
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        let mut e2: Vec<(usize, usize)> = rerooted
            .edges()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn running_intersection_for_path_query() {
        let q = path_query(3);
        assert!(check_running_intersection(&q, &[(0, 1), (1, 2)], 3));
        // Attaching R3 to R1 breaks connectivity of x3's nodes? x3 is in atoms 1 and 2
        // which would not be adjacent: 0-1, 0-2 -> x3 holders {1,2} not connected.
        assert!(!check_running_intersection(&q, &[(0, 1), (0, 2)], 3));
    }

    #[test]
    fn height_and_binary_checks() {
        let chain = JoinTree::from_edges(4, &[(0, 1), (1, 2), (2, 3)], 0);
        assert_eq!(chain.height(), 4);
        assert!(chain.is_binary());
        let wide = JoinTree::from_edges(4, &[(0, 1), (0, 2), (0, 3)], 0);
        assert_eq!(wide.height(), 2);
        assert!(!wide.is_binary());
    }

    #[test]
    fn shared_with_parent_computes_join_keys() {
        let q = figure1_query();
        // Atoms: R(x1,x2)=0, S(x1,x3)=1, T(x2,x4)=2, U(x4,x5)=3; Figure 1 tree.
        let tree = JoinTree::from_edges(4, &[(0, 1), (0, 2), (2, 3)], 0);
        assert!(tree.satisfies_running_intersection(&q));
        let s_shared = tree.shared_with_parent(&q, 1);
        assert_eq!(s_shared, [Variable::new("x1")].into_iter().collect());
        let u_shared = tree.shared_with_parent(&q, 3);
        assert_eq!(u_shared, [Variable::new("x4")].into_iter().collect());
        assert!(tree.shared_with_parent(&q, 0).is_empty());
    }

    #[test]
    fn enumerate_join_trees_of_acyclic_queries() {
        // 2-path: the only tree is the edge R1-R2.
        assert_eq!(enumerate_join_trees(&path_query(2)).len(), 1);
        // 3-path: only the chain R1-R2-R3 satisfies running intersection (3 labelled
        // trees exist in total).
        let trees = enumerate_join_trees(&path_query(3));
        assert_eq!(trees.len(), 1);
        assert!(trees[0].satisfies_running_intersection(&path_query(3)));
        // Star with 3 leaves: any tree on 3 nodes works because every pair of atoms
        // shares the centre variable; 3 labelled trees.
        assert_eq!(enumerate_join_trees(&star_query(3)).len(), 3);
    }

    #[test]
    fn enumerate_join_trees_of_cyclic_query_is_empty() {
        assert!(enumerate_join_trees(&triangle_query()).is_empty());
    }

    #[test]
    fn social_network_has_multiple_join_trees() {
        let trees = enumerate_join_trees(&social_network_query());
        // All three atoms share the event variable e, so all 3 labelled trees on 3
        // nodes are join trees.
        assert_eq!(trees.len(), 3);
        for t in &trees {
            assert!(t.satisfies_running_intersection(&social_network_query()));
        }
    }

    #[test]
    fn single_node_tree() {
        let t = JoinTree::single_node();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.bottom_up_order(), vec![0]);
        assert!(t.is_binary());
        assert_eq!(t.height(), 1);
    }

    #[test]
    #[should_panic(expected = "edge list does not span")]
    fn from_edges_rejects_disconnected() {
        // 4 nodes, 3 edges, but one node unreachable (edge duplicated).
        JoinTree::from_edges(4, &[(0, 1), (1, 0), (2, 3)], 0);
    }
}
