//! Self-join elimination.
//!
//! Several constructions in the paper (tuple-weight assignment, the partition-union
//! trimming of Algorithm 3, the lossy trimming of Algorithm 4) are stated for
//! self-join-free queries and begin by "materializing a fresh relation for every
//! repeated symbol in the query" (Section 2.2). This module implements that rewriting:
//! the resulting instance has the same answers (the atoms' variables are untouched)
//! but every atom references a distinct relation, so per-atom bookkeeping (weights,
//! join-tree node relations, added columns) never aliases.

use crate::{Instance, JoinQuery, Result};
use qjoin_data::Database;
use std::collections::HashMap;

/// Rewrites the instance so that no relational symbol occurs in more than one atom.
///
/// The first occurrence of each symbol keeps its name; later occurrences get fresh
/// names (`R@2`, `R@3`, ...) bound to renamed views of the original relation. No tuple
/// data is copied: the renamed relations share the original's storage, and relations
/// of non-repeated symbols are carried over by handle. If the query is already
/// self-join-free the instance is returned unchanged.
pub fn eliminate_self_joins(instance: &Instance) -> Result<Instance> {
    if !instance.query().has_self_joins() {
        return Ok(instance.clone());
    }
    let mut occurrences: HashMap<String, usize> = HashMap::new();
    let mut db: Database = instance.database().clone();
    let mut new_atoms = Vec::with_capacity(instance.query().num_atoms());

    for atom in instance.query().atoms() {
        let count = occurrences.entry(atom.relation().to_string()).or_insert(0);
        *count += 1;
        if *count == 1 {
            new_atoms.push(atom.clone());
        } else {
            let base = format!("{}@{}", atom.relation(), count);
            let fresh = db.fresh_name(&base);
            let copy = instance
                .database()
                .relation(atom.relation())
                .expect("validated")
                .renamed(fresh.clone());
            db.add_relation(copy).expect("fresh name cannot collide");
            new_atoms.push(atom.renamed(fresh));
        }
    }

    Instance::new(JoinQuery::new(new_atoms), db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, JoinQuery};
    use qjoin_data::{Database, Relation};

    fn self_join_instance() -> Instance {
        let r = Relation::from_rows("R", &[&[1, 2], &[2, 3], &[3, 4]]).unwrap();
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["x", "y"]),
            Atom::from_names("R", &["y", "z"]),
        ]);
        Instance::new(q, Database::from_relations([r]).unwrap()).unwrap()
    }

    #[test]
    fn repeated_symbols_get_fresh_relations() {
        let inst = self_join_instance();
        let rewritten = eliminate_self_joins(&inst).unwrap();
        assert!(!rewritten.query().has_self_joins());
        assert_eq!(rewritten.database().num_relations(), 2);
        let names: Vec<&str> = rewritten
            .query()
            .atoms()
            .iter()
            .map(|a| a.relation())
            .collect();
        assert_eq!(names[0], "R");
        assert_ne!(names[1], "R");
        // The fresh relation shares the original's tuple storage.
        assert_eq!(
            rewritten.database().relation(names[1]).unwrap().tuples(),
            inst.database().relation("R").unwrap().tuples()
        );
        assert!(rewritten
            .database()
            .relation(names[1])
            .unwrap()
            .shares_tuples_with(inst.database().relation("R").unwrap()));
        assert!(rewritten
            .database()
            .relation("R")
            .unwrap()
            .shares_tuples_with(inst.database().relation("R").unwrap()));
    }

    #[test]
    fn variables_are_preserved() {
        let inst = self_join_instance();
        let rewritten = eliminate_self_joins(&inst).unwrap();
        assert_eq!(rewritten.query().variables(), inst.query().variables());
    }

    #[test]
    fn self_join_free_instances_are_untouched() {
        let r1 = Relation::from_rows("R1", &[&[1, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 3]]).unwrap();
        let q = crate::query::path_query(2);
        let inst = Instance::new(q, Database::from_relations([r1, r2]).unwrap()).unwrap();
        let rewritten = eliminate_self_joins(&inst).unwrap();
        assert_eq!(rewritten.database().num_relations(), 2);
        assert_eq!(rewritten.query(), inst.query());
    }

    #[test]
    fn triple_self_join_gets_two_copies() {
        let r = Relation::from_rows("R", &[&[1, 2], &[2, 3]]).unwrap();
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["a", "b"]),
            Atom::from_names("R", &["b", "c"]),
            Atom::from_names("R", &["c", "d"]),
        ]);
        let inst = Instance::new(q, Database::from_relations([r]).unwrap()).unwrap();
        let rewritten = eliminate_self_joins(&inst).unwrap();
        assert_eq!(rewritten.database().num_relations(), 3);
        assert!(!rewritten.query().has_self_joins());
    }
}
