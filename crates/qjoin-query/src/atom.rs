//! Query atoms.

use crate::Variable;
use std::collections::BTreeSet;
use std::fmt;

/// An atom `R(X)` of a join query: a relational symbol applied to a tuple of variables.
///
/// The variable tuple is positional and its length must equal the arity of the relation
/// it is evaluated against (validated by [`crate::Instance`]). The same variable may
/// occur at several positions of one atom (e.g. `R(x, x)`), which constrains the
/// matching tuples to repeat the value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    relation: String,
    variables: Vec<Variable>,
}

impl Atom {
    /// Creates an atom over the named relation with the given variable tuple.
    pub fn new(relation: impl Into<String>, variables: Vec<Variable>) -> Self {
        Atom {
            relation: relation.into(),
            variables,
        }
    }

    /// Convenience constructor from string variable names.
    pub fn from_names(relation: impl Into<String>, variables: &[&str]) -> Self {
        Atom::new(relation, variables.iter().map(Variable::new).collect())
    }

    /// The relational symbol.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The positional variable tuple `X`.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The arity (number of positions) of the atom.
    pub fn arity(&self) -> usize {
        self.variables.len()
    }

    /// The *set* of variables appearing in the atom (the corresponding hyperedge).
    pub fn variable_set(&self) -> BTreeSet<Variable> {
        self.variables.iter().cloned().collect()
    }

    /// True if the variable occurs anywhere in the atom.
    pub fn contains(&self, var: &Variable) -> bool {
        self.variables.contains(var)
    }

    /// Positions at which `var` occurs.
    pub fn positions_of(&self, var: &Variable) -> Vec<usize> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| *v == var)
            .map(|(i, _)| i)
            .collect()
    }

    /// The first position of each *distinct* variable, in positional order.
    ///
    /// Used when projecting a tuple onto the atom's distinct variables, e.g. when
    /// building partial query answers.
    pub fn distinct_variable_positions(&self) -> Vec<(Variable, usize)> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for (i, v) in self.variables.iter().enumerate() {
            if seen.insert(v.clone()) {
                out.push((v.clone(), i));
            }
        }
        out
    }

    /// Returns a copy of the atom referring to a different relation symbol
    /// (used by self-join elimination).
    pub fn renamed(&self, relation: impl Into<String>) -> Atom {
        Atom {
            relation: relation.into(),
            variables: self.variables.clone(),
        }
    }

    /// Returns a copy with an additional variable appended at the end
    /// (used by the trimming constructions when they add a column).
    pub fn with_extra_variable(&self, var: Variable) -> Atom {
        let mut variables = self.variables.clone();
        variables.push(var);
        Atom {
            relation: self.relation.clone(),
            variables,
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.variables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let a = Atom::from_names("R", &["x", "y"]);
        assert_eq!(a.relation(), "R");
        assert_eq!(a.arity(), 2);
        assert!(a.contains(&Variable::new("x")));
        assert!(!a.contains(&Variable::new("z")));
    }

    #[test]
    fn repeated_variables_are_tracked_by_position() {
        let a = Atom::from_names("R", &["x", "y", "x"]);
        assert_eq!(a.positions_of(&Variable::new("x")), vec![0, 2]);
        assert_eq!(a.variable_set().len(), 2);
        let distinct = a.distinct_variable_positions();
        assert_eq!(distinct.len(), 2);
        assert_eq!(distinct[0], (Variable::new("x"), 0));
        assert_eq!(distinct[1], (Variable::new("y"), 1));
    }

    #[test]
    fn with_extra_variable_appends() {
        let a = Atom::from_names("R", &["x"]);
        let b = a.with_extra_variable(Variable::new("p"));
        assert_eq!(b.arity(), 2);
        assert_eq!(b.variables()[1], Variable::new("p"));
        assert_eq!(a.arity(), 1);
    }

    #[test]
    fn renamed_keeps_variables() {
        let a = Atom::from_names("R", &["x", "y"]);
        let b = a.renamed("R_1");
        assert_eq!(b.relation(), "R_1");
        assert_eq!(b.variables(), a.variables());
    }

    #[test]
    fn display_formats_like_datalog() {
        let a = Atom::from_names("Share", &["u2", "e", "l2"]);
        assert_eq!(a.to_string(), "Share(u2, e, l2)");
    }
}
