//! Instances: a join query paired with a database.

use crate::{JoinQuery, QueryError, Result, Variable};
use qjoin_data::{Database, Relation};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A query evaluation instance: a [`JoinQuery`] together with a shared [`Database`].
///
/// Everything the quantile algorithms manipulate — the original input, the partitions
/// produced by trimming, the restricted instances searched in later iterations — is an
/// [`Instance`]. The pair is validated on construction: every atom must reference an
/// existing relation of matching arity.
///
/// The database is held behind an [`Arc`], so instances sharing one database (e.g.
/// every prepared plan compiled against the same catalog generation) reference a
/// single copy of the relation data. [`Instance::new`] accepts either an owned
/// [`Database`] or an existing `Arc<Database>`; [`Instance::shared_database`] exposes
/// the handle for further sharing and for pointer-equality assertions.
#[derive(Clone, PartialEq)]
pub struct Instance {
    query: JoinQuery,
    database: Arc<Database>,
}

impl Instance {
    /// Creates and validates an instance.
    pub fn new(query: JoinQuery, database: impl Into<Arc<Database>>) -> Result<Self> {
        let database = database.into();
        if query.num_atoms() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        for atom in query.atoms() {
            let rel = database
                .relation(atom.relation())
                .map_err(|_| QueryError::MissingRelation(atom.relation().to_string()))?;
            if rel.arity() != atom.arity() {
                return Err(QueryError::AtomArityMismatch {
                    relation: atom.relation().to_string(),
                    atom_arity: atom.arity(),
                    relation_arity: rel.arity(),
                });
            }
        }
        Ok(Instance { query, database })
    }

    /// The query.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The shared database handle. Cloning the returned `Arc` (or passing it to
    /// [`Instance::new`]) shares the relation data without copying it.
    pub fn shared_database(&self) -> &Arc<Database> {
        &self.database
    }

    /// Decomposes the instance into its parts. If the database is shared with other
    /// instances, the returned value is a cheap handle-level copy of it.
    pub fn into_parts(self) -> (JoinQuery, Database) {
        let database = Arc::try_unwrap(self.database).unwrap_or_else(|shared| (*shared).clone());
        (self.query, database)
    }

    /// The database size `n` (total tuples).
    pub fn database_size(&self) -> usize {
        self.database.total_tuples()
    }

    /// The relation interpreting the atom at `atom_index`.
    pub fn relation_of_atom(&self, atom_index: usize) -> &Relation {
        self.database
            .relation(self.query.atom(atom_index).relation())
            .expect("validated at construction")
    }

    /// True if the query is acyclic.
    pub fn is_acyclic(&self) -> bool {
        crate::acyclicity::is_acyclic(&self.query)
    }

    /// A quick upper bound on the number of query answers: the product of relation
    /// sizes (`n^ℓ` in the worst case). Returns `None` on overflow of `u128`.
    pub fn answer_count_upper_bound(&self) -> Option<u128> {
        let mut bound: u128 = 1;
        for atom in self.query.atoms() {
            let size = self
                .database
                .relation(atom.relation())
                .expect("validated")
                .len() as u128;
            bound = bound.checked_mul(size)?;
        }
        Some(bound)
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance: {}", self.query)?;
        write!(f, "{:?}", self.database)
    }
}

/// A query answer: an assignment from the query's variables to domain values.
///
/// Answers returned to callers use this explicit (and self-describing) representation.
/// Bulk intermediate results inside the executor use the positional
/// `qjoin_exec::AnswerSet` representation instead.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Assignment {
    bindings: BTreeMap<Variable, qjoin_data::Value>,
}

impl Assignment {
    /// The empty assignment.
    pub fn empty() -> Self {
        Assignment {
            bindings: BTreeMap::new(),
        }
    }

    /// Creates an assignment from (variable, value) pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Variable, qjoin_data::Value)>) -> Self {
        Assignment {
            bindings: pairs.into_iter().collect(),
        }
    }

    /// The value assigned to `var`, if any.
    pub fn get(&self, var: &Variable) -> Option<&qjoin_data::Value> {
        self.bindings.get(var)
    }

    /// Binds `var` to `value`, returning the previous value if it was bound.
    pub fn bind(&mut self, var: Variable, value: qjoin_data::Value) -> Option<qjoin_data::Value> {
        self.bindings.insert(var, value)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &qjoin_data::Value)> {
        self.bindings.iter()
    }

    /// True if the two assignments agree on every variable bound in both.
    pub fn consistent_with(&self, other: &Assignment) -> bool {
        self.bindings
            .iter()
            .all(|(v, val)| other.get(v).is_none_or(|o| o == val))
    }

    /// The union of two consistent assignments. Returns `None` if they conflict.
    pub fn union(&self, other: &Assignment) -> Option<Assignment> {
        if !self.consistent_with(other) {
            return None;
        }
        let mut bindings = self.bindings.clone();
        bindings.extend(other.bindings.iter().map(|(v, x)| (v.clone(), x.clone())));
        Some(Assignment { bindings })
    }

    /// The restriction of the assignment to the given variables (missing variables are
    /// silently dropped). Used to map answers of trimmed instances back to answers of
    /// the original query.
    pub fn project(&self, vars: &[Variable]) -> Assignment {
        Assignment {
            bindings: vars
                .iter()
                .filter_map(|v| self.bindings.get(v).map(|x| (v.clone(), x.clone())))
                .collect(),
        }
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, x)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}: {x}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::path_query;
    use crate::Atom;
    use qjoin_data::{Relation, Value};

    fn two_path_instance() -> Instance {
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[2, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 10], &[2, 20]]).unwrap();
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn validation_catches_missing_relation() {
        let db = Database::new();
        let err = Instance::new(path_query(2), db).unwrap_err();
        assert!(matches!(err, QueryError::MissingRelation(_)));
    }

    #[test]
    fn validation_catches_arity_mismatch() {
        let r1 = Relation::from_rows("R1", &[&[1, 1, 1]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 10]]).unwrap();
        let err =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::AtomArityMismatch { .. }));
    }

    #[test]
    fn validation_rejects_empty_query() {
        let err = Instance::new(JoinQuery::new(vec![]), Database::new()).unwrap_err();
        assert_eq!(err, QueryError::EmptyQuery);
    }

    #[test]
    fn accessors_work() {
        let inst = two_path_instance();
        assert_eq!(inst.database_size(), 4);
        assert!(inst.is_acyclic());
        assert_eq!(inst.relation_of_atom(1).name(), "R2");
        assert_eq!(inst.answer_count_upper_bound(), Some(4));
    }

    #[test]
    fn assignment_union_and_conflicts() {
        let a = Assignment::from_pairs([(Variable::new("x"), Value::from(1))]);
        let b = Assignment::from_pairs([(Variable::new("y"), Value::from(2))]);
        let c = Assignment::from_pairs([(Variable::new("x"), Value::from(9))]);
        let ab = a.union(&b).unwrap();
        assert_eq!(ab.len(), 2);
        assert!(a.union(&c).is_none());
        assert!(a.consistent_with(&b));
        assert!(!a.consistent_with(&c));
    }

    #[test]
    fn assignment_projection_drops_unbound() {
        let a = Assignment::from_pairs([
            (Variable::new("x"), Value::from(1)),
            (Variable::new("p"), Value::from(7)),
        ]);
        let proj = a.project(&[Variable::new("x"), Variable::new("z")]);
        assert_eq!(proj.len(), 1);
        assert_eq!(proj.get(&Variable::new("x")), Some(&Value::from(1)));
    }

    #[test]
    fn assignment_bind_and_debug() {
        let mut a = Assignment::empty();
        assert!(a.is_empty());
        assert_eq!(a.bind(Variable::new("x"), Value::from(1)), None);
        assert_eq!(
            a.bind(Variable::new("x"), Value::from(2)),
            Some(Value::from(1))
        );
        assert_eq!(format!("{a:?}"), "{x: 2}");
    }

    #[test]
    fn answer_count_upper_bound_handles_overflow() {
        let mut db = Database::new();
        let mut atoms = Vec::new();
        // 50 relations of 10^6 tuples would overflow u128 only at astronomically large
        // sizes; instead verify the product logic with moderate numbers.
        for i in 0..3 {
            let mut rel = Relation::new(format!("R{i}"), 1);
            for j in 0..10i64 {
                rel.push(vec![Value::from(j)]).unwrap();
            }
            db.add_relation(rel).unwrap();
            atoms.push(Atom::from_names(format!("R{i}"), &["x"]));
        }
        let inst = Instance::new(JoinQuery::new(atoms), db).unwrap();
        assert_eq!(inst.answer_count_upper_bound(), Some(1000));
    }
}
