//! Query variables.

use std::fmt;
use std::sync::Arc;

/// A query variable (a vertex of the query hypergraph).
///
/// Variables are interned strings; cloning is cheap, and equality/ordering are by name.
/// The trimming constructions introduce fresh variables (partition identifiers `x_p`,
/// adjacency variables `v_RS`); [`Variable::fresh`] derives collision-free names.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(Arc<str>);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Variable(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Derives a fresh variable name from `base` that does not collide with any
    /// variable in `taken`.
    pub fn fresh<'a>(base: &str, taken: impl IntoIterator<Item = &'a Variable>) -> Variable {
        let taken: std::collections::HashSet<&str> = taken.into_iter().map(|v| v.name()).collect();
        if !taken.contains(base) {
            return Variable::new(base);
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{base}#{i}");
            if !taken.contains(candidate.as_str()) {
                return Variable::new(candidate);
            }
            i += 1;
        }
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

impl From<String> for Variable {
    fn from(s: String) -> Self {
        Variable::new(s)
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Helper to build a `Vec<Variable>` from string literals.
pub fn vars(names: &[&str]) -> Vec<Variable> {
    names.iter().map(Variable::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_ordering_are_by_name() {
        assert_eq!(Variable::new("x1"), Variable::from("x1"));
        assert!(Variable::new("x1") < Variable::new("x2"));
    }

    #[test]
    fn fresh_avoids_collisions() {
        let taken = vars(&["v", "v#1"]);
        let f = Variable::fresh("v", &taken);
        assert_eq!(f.name(), "v#2");
        let g = Variable::fresh("w", &taken);
        assert_eq!(g.name(), "w");
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Variable::new("x").to_string(), "x");
        assert_eq!(format!("{:?}", Variable::new("x")), "x");
    }

    #[test]
    fn vars_helper_preserves_order() {
        let v = vars(&["a", "b", "a"]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], v[2]);
    }
}
