//! Acyclicity testing and join-tree construction via GYO reduction.
//!
//! A join query is acyclic iff its hypergraph admits a join tree (Section 2.1). The
//! GYO (Graham / Yu–Özsoyoğlu) reduction decides this in polynomial time in the query
//! size and, as a by-product, yields a join tree: whenever an *ear* atom is removed, it
//! is attached to a witness atom that will end up being its parent.

use crate::{JoinQuery, JoinTree};
use std::collections::BTreeSet;

/// Returns `true` iff the query is acyclic (α-acyclic).
pub fn is_acyclic(query: &JoinQuery) -> bool {
    gyo_join_tree(query).is_some()
}

/// Runs the GYO reduction and returns a join tree if the query is acyclic, rooted at
/// the last surviving atom.
///
/// An atom `e` is an *ear* with witness `e'` if every variable of `e` either occurs in
/// no other alive atom or occurs in `e'`. Removing ears one by one succeeds exactly for
/// acyclic queries; recording the witness as the parent yields a tree satisfying the
/// running-intersection property.
pub fn gyo_join_tree(query: &JoinQuery) -> Option<JoinTree> {
    let n = query.num_atoms();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(JoinTree::single_node());
    }

    let edges_vars: Vec<BTreeSet<_>> = query.atoms().iter().map(|a| a.variable_set()).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut remaining = n;

    while remaining > 1 {
        let mut removed_this_round = false;
        'outer: for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in 0..n {
                if i == j || !alive[j] {
                    continue;
                }
                if is_ear_with_witness(&edges_vars, &alive, i, j) {
                    alive[i] = false;
                    parent[i] = Some(j);
                    remaining -= 1;
                    removed_this_round = true;
                    break 'outer;
                }
            }
        }
        if !removed_this_round {
            return None;
        }
    }

    let root = (0..n).find(|&i| alive[i]).expect("one atom must survive");
    // Parents may point at atoms that were themselves removed later; since each atom's
    // parent is removed strictly after it (or survives as the root), the parent
    // pointers form a tree rooted at `root`.
    let edges: Vec<(usize, usize)> = (0..n).filter_map(|i| parent[i].map(|p| (p, i))).collect();
    let tree = JoinTree::from_edges(n, &edges, root);
    debug_assert!(tree.satisfies_running_intersection(query));
    Some(tree)
}

/// Checks whether alive atom `ear` is an ear with alive atom `witness`: every variable
/// of `ear` is either exclusive to `ear` (among alive atoms) or contained in `witness`.
fn is_ear_with_witness(
    edges_vars: &[BTreeSet<crate::Variable>],
    alive: &[bool],
    ear: usize,
    witness: usize,
) -> bool {
    for v in &edges_vars[ear] {
        if edges_vars[witness].contains(v) {
            continue;
        }
        let appears_elsewhere = edges_vars
            .iter()
            .enumerate()
            .any(|(k, vars)| k != ear && alive[k] && vars.contains(v));
        if appears_elsewhere {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{
        figure1_query, path_query, social_network_query, star_query, triangle_query,
    };
    use crate::{Atom, JoinQuery};

    #[test]
    fn paths_and_stars_are_acyclic() {
        for k in 1..=6 {
            assert!(is_acyclic(&path_query(k)), "path {k}");
            assert!(is_acyclic(&star_query(k)), "star {k}");
        }
    }

    #[test]
    fn triangle_is_cyclic() {
        assert!(!is_acyclic(&triangle_query()));
        assert!(gyo_join_tree(&triangle_query()).is_none());
    }

    #[test]
    fn larger_cycles_are_cyclic() {
        // 4-cycle: R(a,b), S(b,c), T(c,d), U(d,a).
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["a", "b"]),
            Atom::from_names("S", &["b", "c"]),
            Atom::from_names("T", &["c", "d"]),
            Atom::from_names("U", &["d", "a"]),
        ]);
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn cycle_with_chord_edge_covering_it_is_acyclic() {
        // Adding an atom containing all three triangle variables makes it α-acyclic.
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["x", "y"]),
            Atom::from_names("S", &["y", "z"]),
            Atom::from_names("T", &["z", "x"]),
            Atom::from_names("W", &["x", "y", "z"]),
        ]);
        assert!(is_acyclic(&q));
        let tree = gyo_join_tree(&q).unwrap();
        assert!(tree.satisfies_running_intersection(&q));
    }

    #[test]
    fn gyo_tree_satisfies_running_intersection() {
        for q in [
            path_query(5),
            star_query(5),
            social_network_query(),
            figure1_query(),
        ] {
            let tree = gyo_join_tree(&q).expect("acyclic");
            assert_eq!(tree.num_nodes(), q.num_atoms());
            assert!(tree.satisfies_running_intersection(&q));
        }
    }

    #[test]
    fn single_atom_query_has_single_node_tree() {
        let q = JoinQuery::new(vec![Atom::from_names("R", &["x", "y", "z"])]);
        let tree = gyo_join_tree(&q).unwrap();
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn empty_query_has_no_tree() {
        assert!(gyo_join_tree(&JoinQuery::new(vec![])).is_none());
    }

    #[test]
    fn contained_atoms_are_ears() {
        // B(x) ⊆ A(x,y): B must become a child of A.
        let q = JoinQuery::new(vec![
            Atom::from_names("A", &["x", "y"]),
            Atom::from_names("B", &["x"]),
        ]);
        let tree = gyo_join_tree(&q).unwrap();
        assert!(tree.satisfies_running_intersection(&q));
        assert_eq!(tree.num_nodes(), 2);
    }

    #[test]
    fn disconnected_acyclic_query_still_gets_a_tree() {
        // Cartesian product of two independent relations: acyclic; any tree works
        // because no variable is shared.
        let q = JoinQuery::new(vec![
            Atom::from_names("A", &["x"]),
            Atom::from_names("B", &["y"]),
        ]);
        let tree = gyo_join_tree(&q).unwrap();
        assert!(tree.satisfies_running_intersection(&q));
    }
}
