//! Encoded instances: a join query paired with dictionary-coded relation views.
//!
//! [`EncodedInstance`] is the encoded-path analogue of [`Instance`]: the same
//! [`JoinQuery`], but every atom is interpreted by an
//! [`EncodedRelation`] — a selection-vector view over
//! shared, column-major `u64` code columns — instead of a materialized
//! [`Relation`](qjoin_data::Relation). The trimming constructions of the quantile
//! driver rewrite encoded instances into encoded instances (new views, possibly a new
//! query with synthesized variables); values are decoded back through the shared
//! [`Dictionary`] only at the answer boundary.
//!
//! Synthesized variables (partition tags `x_p`, dyadic-interval variables `v_sum`)
//! live in a *separate* code space from dictionary codes: their codes are chosen by
//! the construction that introduces them (and are order-compatible with the row
//! path's corresponding [`Value`](qjoin_data::Value)s). This is sound because a
//! synthesized variable only ever occurs in synthesized columns, so its codes are
//! never compared against dictionary codes.

use crate::{Instance, JoinQuery, QueryError, Result};
use qjoin_data::{Dictionary, EncodedDatabase, EncodedRelation};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A write-once memo slot the execution layer uses to cache per-instance derived
/// structures (e.g. its reduced join-tree context) without this crate depending on
/// their types. Clones of an instance share the slot — sound because instances are
/// immutable after construction, so every clone derives the identical structure.
/// Rewrites ([`EncodedInstance::with_rewritten`] and friends) construct fresh
/// instances and therefore fresh, empty slots.
#[derive(Default)]
pub struct ExecMemo(OnceLock<Arc<dyn Any + Send + Sync>>);

impl ExecMemo {
    /// The cached structure, if one of type `T` has been stored.
    pub fn get<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.0
            .get()
            .and_then(|a| Arc::clone(a).downcast::<T>().ok())
    }

    /// Stores a structure; the first store wins and later stores are dropped
    /// (concurrent initializers build identical values, so either is fine).
    pub fn set<T: Any + Send + Sync>(&self, value: Arc<T>) {
        let _ = self.0.set(value);
    }
}

impl std::fmt::Debug for ExecMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ExecMemo")
            .field(&self.0.get().map(|_| "<cached>"))
            .finish()
    }
}

/// A join query paired with encoded relation views and the dictionary they decode
/// through. See the module docs.
#[derive(Clone, Debug)]
pub struct EncodedInstance {
    query: JoinQuery,
    dictionary: Arc<Dictionary>,
    relations: BTreeMap<String, EncodedRelation>,
    memo: Arc<ExecMemo>,
}

impl EncodedInstance {
    /// Creates and validates an encoded instance: every atom must reference an
    /// existing view of matching arity.
    pub fn new(
        query: JoinQuery,
        dictionary: Arc<Dictionary>,
        relations: BTreeMap<String, EncodedRelation>,
    ) -> Result<Self> {
        if query.num_atoms() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        for atom in query.atoms() {
            let rel = relations
                .get(atom.relation())
                .ok_or_else(|| QueryError::MissingRelation(atom.relation().to_string()))?;
            if rel.arity() != atom.arity() {
                return Err(QueryError::AtomArityMismatch {
                    relation: atom.relation().to_string(),
                    atom_arity: atom.arity(),
                    relation_arity: rel.arity(),
                });
            }
        }
        Ok(EncodedInstance {
            query,
            dictionary,
            relations,
            memo: Arc::new(ExecMemo::default()),
        })
    }

    /// Encodes a row instance: builds the dictionary and column encoding of its
    /// database, then full views for every relation.
    pub fn from_instance(instance: &Instance) -> Result<Self> {
        let encoded = EncodedDatabase::encode(instance.database())?;
        Self::from_encoded_database(instance.query().clone(), &encoded)
    }

    /// Builds an encoded instance over an already-encoded database (the engine path:
    /// the encoding is built once per catalog generation and shared by every plan).
    ///
    /// *Every* relation of the database gets a view — including ones the query does
    /// not reference — so that [`EncodedInstance::total_rows`] equals the row path's
    /// [`Instance::database_size`] and the quantile driver's materialization
    /// threshold is identical on both paths.
    pub fn from_encoded_database(query: JoinQuery, db: &EncodedDatabase) -> Result<Self> {
        let relations: BTreeMap<String, EncodedRelation> = db
            .relations()
            .map(|(name, base)| (name.to_string(), EncodedRelation::full(Arc::clone(base))))
            .collect();
        Self::new(query, Arc::clone(db.dictionary()), relations)
    }

    /// The query.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// The shared dictionary.
    pub fn dictionary(&self) -> &Arc<Dictionary> {
        &self.dictionary
    }

    /// The instance's execution memo slot (see [`ExecMemo`]).
    pub fn exec_memo(&self) -> &ExecMemo {
        &self.memo
    }

    /// The view interpreting the atom at `atom_index`.
    pub fn relation_of_atom(&self, atom_index: usize) -> &EncodedRelation {
        self.relations
            .get(self.query.atom(atom_index).relation())
            .expect("validated at construction")
    }

    /// Looks up a view by relation name.
    pub fn relation(&self, name: &str) -> Option<&EncodedRelation> {
        self.relations.get(name)
    }

    /// Iterates over the views in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &EncodedRelation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// The database size `n`: total selected rows across all views. Instances built
    /// by [`EncodedInstance::from_instance`] / [`EncodedInstance::from_encoded_database`]
    /// carry a view per database relation (referenced by the query or not), so this
    /// equals the row instance's [`Instance::database_size`] and the quantile
    /// driver's materialization threshold is identical on both paths.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(EncodedRelation::len).sum()
    }

    /// A copy with the query and some relations replaced (the shape every encoded
    /// trim produces). Relations not mentioned in `replaced` are carried over by
    /// handle.
    pub fn with_rewritten(
        &self,
        query: JoinQuery,
        replaced: impl IntoIterator<Item = EncodedRelation>,
    ) -> Result<Self> {
        let mut relations = self.relations.clone();
        for rel in replaced {
            relations.insert(rel.name().to_string(), rel);
        }
        Self::new(query, Arc::clone(&self.dictionary), relations)
    }

    /// An instance with the same query whose answer set is empty (every view
    /// cleared). The encoded analogue of the trim layer's `empty_copy`.
    pub fn empty_copy(&self) -> Self {
        EncodedInstance {
            query: self.query.clone(),
            dictionary: Arc::clone(&self.dictionary),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.cleared()))
                .collect(),
            memo: Arc::new(ExecMemo::default()),
        }
    }

    /// Rewrites the instance so that no relational symbol occurs in more than one
    /// atom, mirroring [`crate::self_join::eliminate_self_joins`]: later occurrences
    /// get fresh names (`R@2`, `R@3`, ...) bound to renamed views sharing the
    /// original's storage. Self-join-free instances are returned unchanged.
    pub fn eliminate_self_joins(&self) -> Result<Self> {
        if !self.query.has_self_joins() {
            return Ok(self.clone());
        }
        let mut occurrences: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut relations = self.relations.clone();
        let mut new_atoms = Vec::with_capacity(self.query.num_atoms());
        for atom in self.query.atoms() {
            let count = occurrences.entry(atom.relation().to_string()).or_insert(0);
            *count += 1;
            if *count == 1 {
                new_atoms.push(atom.clone());
            } else {
                let base = format!("{}@{}", atom.relation(), count);
                let fresh = fresh_relation_name(&relations, &base);
                let copy = self.relations[atom.relation()].renamed(fresh.clone());
                relations.insert(fresh.clone(), copy);
                new_atoms.push(atom.renamed(fresh));
            }
        }
        Self::new(
            JoinQuery::new(new_atoms),
            Arc::clone(&self.dictionary),
            relations,
        )
    }
}

/// Mirrors `Database::fresh_name` for the encoded relation map.
pub(crate) fn fresh_relation_name(
    relations: &BTreeMap<String, EncodedRelation>,
    base: &str,
) -> String {
    if !relations.contains_key(base) {
        return base.to_string();
    }
    let mut i = 1usize;
    loop {
        let candidate = format!("{base}#{i}");
        if !relations.contains_key(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::path_query;
    use crate::Atom;
    use qjoin_data::{Database, Relation};

    fn two_path_instance() -> Instance {
        let r1 = Relation::from_rows("R1", &[&[1, 1], &[2, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[1, 10], &[2, 20]]).unwrap();
        Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap()
    }

    #[test]
    fn encoding_preserves_sizes_and_decodes() {
        let inst = two_path_instance();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        assert_eq!(enc.total_rows(), inst.database_size());
        let r1 = enc.relation("R1").unwrap();
        let original = inst.database().relation("R1").unwrap();
        for row in 0..r1.len() {
            for col in 0..2 {
                assert_eq!(
                    enc.dictionary().decode(r1.code(0, row, col)),
                    original.tuples()[row].get(col).unwrap()
                );
            }
        }
    }

    #[test]
    fn validation_catches_arity_mismatch() {
        let inst = two_path_instance();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let bad_query = JoinQuery::new(vec![Atom::from_names("R1", &["x", "y", "z"])]);
        let relations: BTreeMap<String, EncodedRelation> = enc
            .relations()
            .map(|(n, r)| (n.to_string(), r.clone()))
            .collect();
        assert!(matches!(
            EncodedInstance::new(bad_query, Arc::clone(enc.dictionary()), relations).unwrap_err(),
            QueryError::AtomArityMismatch { .. }
        ));
    }

    #[test]
    fn empty_copy_clears_every_view() {
        let inst = two_path_instance();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let empty = enc.empty_copy();
        assert_eq!(empty.total_rows(), 0);
        assert_eq!(empty.query(), enc.query());
    }

    #[test]
    fn self_join_elimination_mirrors_row_path() {
        let r = Relation::from_rows("R", &[&[1, 2], &[2, 3]]).unwrap();
        let q = JoinQuery::new(vec![
            Atom::from_names("R", &["x", "y"]),
            Atom::from_names("R", &["y", "z"]),
        ]);
        let inst = Instance::new(q, Database::from_relations([r]).unwrap()).unwrap();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let rewritten = enc.eliminate_self_joins().unwrap();
        let row_rewritten = crate::self_join::eliminate_self_joins(&inst).unwrap();
        assert_eq!(rewritten.query(), row_rewritten.query());
        // The fresh view shares the original's base columns.
        let fresh_name = rewritten.query().atom(1).relation();
        assert!(rewritten
            .relation(fresh_name)
            .unwrap()
            .shares_base_with(enc.relation("R").unwrap()));
    }

    #[test]
    fn with_rewritten_replaces_and_shares() {
        let inst = two_path_instance();
        let enc = EncodedInstance::from_instance(&inst).unwrap();
        let filtered = enc.relation("R1").unwrap().filtered(|_, row| row == 0);
        let out = enc.with_rewritten(enc.query().clone(), [filtered]).unwrap();
        assert_eq!(out.relation("R1").unwrap().len(), 1);
        assert_eq!(out.relation("R2").unwrap().len(), 2);
    }
}
