//! Binary join trees.
//!
//! The lossy trimming of Section 6 requires a *binary* join tree (every node has at
//! most two children) so that the per-node blow-up from embedding sketches stays
//! bounded by the square of the sketch size. The paper constructs one "by creating
//! copies of a node that has multiple children, connecting these copies in a chain, and
//! distributing the original children among them".
//!
//! [`binarize`] realizes that as a query rewriting: a node with `k > 2` children is
//! replaced by a chain of `k - 1` atoms over copies of its relation that share all of
//! the original atom's variables (so joining them is the identity), and the children
//! are distributed along the chain. Answers are preserved one-to-one (same variables),
//! acyclicity is preserved, and the resulting tree is binary with height at most `2ℓ`.

use crate::encoded::EncodedInstance;
use crate::{acyclicity, Instance, JoinQuery, JoinTree, QueryError, Result};
use qjoin_data::{Database, EncodedRelation};
use std::collections::BTreeMap;

/// Result of [`binarize`]: the rewritten instance and a binary join tree for it.
#[derive(Clone, Debug)]
pub struct Binarized {
    /// The rewritten instance (possibly identical to the input).
    pub instance: Instance,
    /// A binary join tree of `instance.query()`.
    pub tree: JoinTree,
}

/// Rewrites an acyclic instance so that it admits a binary join tree, and returns both
/// the rewritten instance and such a tree.
///
/// If the GYO join tree of the input is already binary, the instance is returned
/// unchanged together with that tree.
pub fn binarize(instance: &Instance) -> Result<Binarized> {
    let query = instance.query();
    let tree = acyclicity::gyo_join_tree(query)
        .ok_or_else(|| QueryError::CyclicQuery(query.to_string()))?;
    if tree.is_binary() {
        return Ok(Binarized {
            instance: instance.clone(),
            tree,
        });
    }

    let mut atoms = query.atoms().to_vec();
    let mut db: Database = instance.database().clone();
    // Edges of the new tree, over indices into `atoms`.
    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Recursively lay out the tree; returns the new-atom index representing `node`.
    fn lay_out(
        tree: &JoinTree,
        node: usize,
        atoms: &mut Vec<crate::Atom>,
        db: &mut Database,
        edges: &mut Vec<(usize, usize)>,
    ) -> usize {
        let atom_index = tree.node(node).atom_index;
        let children = tree.node(node).children.clone();
        let child_heads: Vec<usize> = children
            .iter()
            .map(|&c| lay_out(tree, c, atoms, db, edges))
            .collect();
        let self_index = atom_index;
        if child_heads.len() <= 2 {
            for h in child_heads {
                edges.push((self_index, h));
            }
            return self_index;
        }
        // Chain: the original atom keeps the first child; each extra child hangs off a
        // fresh copy of the atom, and the copies are chained together.
        edges.push((self_index, child_heads[0]));
        let mut chain_tail = self_index;
        for (i, &head) in child_heads[1..].iter().enumerate() {
            let is_last = i == child_heads.len() - 2;
            if is_last {
                // The final child can share the last chain node.
                edges.push((chain_tail, head));
            } else {
                let original_atom = atoms[atom_index].clone();
                let fresh_rel = db.fresh_name(&format!("{}~bin", original_atom.relation()));
                let copy_rel = db
                    .relation(original_atom.relation())
                    .expect("validated")
                    .renamed(fresh_rel.clone());
                db.insert_relation(copy_rel);
                let copy_atom = original_atom.renamed(fresh_rel);
                atoms.push(copy_atom);
                let copy_index = atoms.len() - 1;
                edges.push((chain_tail, copy_index));
                edges.push((copy_index, head));
                chain_tail = copy_index;
            }
        }
        self_index
    }

    let root_index = lay_out(&tree, tree.root(), &mut atoms, &mut db, &mut edges);
    let new_query = JoinQuery::new(atoms);
    let num_nodes = new_query.num_atoms();
    let new_tree = JoinTree::from_edges(num_nodes, &edges, root_index);
    debug_assert!(new_tree.satisfies_running_intersection(&new_query));
    debug_assert!(new_tree.is_binary());
    let new_instance = Instance::new(new_query, db)?;
    Ok(Binarized {
        instance: new_instance,
        tree: new_tree,
    })
}

/// Result of [`binarize_encoded`]: the rewritten encoded instance and a binary join
/// tree for it.
#[derive(Clone, Debug)]
pub struct BinarizedEncoded {
    /// The rewritten encoded instance (possibly identical to the input).
    pub instance: EncodedInstance,
    /// A binary join tree of `instance.query()`.
    pub tree: JoinTree,
}

/// The encoded twin of [`binarize`]: identical query rewriting, but the relation
/// copies are renamed selection-vector views sharing the original's code columns
/// instead of materialized row copies.
///
/// The rewriting is *name-identical* to the row path's whenever the input's
/// relation name-set matches the row instance's database (which
/// [`EncodedInstance::from_instance`] and the engine's shared-encoding constructor
/// guarantee): `fresh_relation_name` mirrors `Database::fresh_name`, so the chain
/// copies receive the same `R~bin` / `R~bin#k` names in the same order, and the
/// resulting query and join tree are equal to the row path's.
pub fn binarize_encoded(instance: &EncodedInstance) -> Result<BinarizedEncoded> {
    let query = instance.query();
    let tree = acyclicity::gyo_join_tree(query)
        .ok_or_else(|| QueryError::CyclicQuery(query.to_string()))?;
    if tree.is_binary() {
        return Ok(BinarizedEncoded {
            instance: instance.clone(),
            tree,
        });
    }

    let mut atoms = query.atoms().to_vec();
    let mut relations: BTreeMap<String, EncodedRelation> = instance
        .relations()
        .map(|(n, r)| (n.to_string(), r.clone()))
        .collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();

    // Mirrors `binarize`'s `lay_out` exactly; only the copy mechanism differs.
    fn lay_out(
        tree: &JoinTree,
        node: usize,
        atoms: &mut Vec<crate::Atom>,
        relations: &mut BTreeMap<String, EncodedRelation>,
        edges: &mut Vec<(usize, usize)>,
    ) -> usize {
        let atom_index = tree.node(node).atom_index;
        let children = tree.node(node).children.clone();
        let child_heads: Vec<usize> = children
            .iter()
            .map(|&c| lay_out(tree, c, atoms, relations, edges))
            .collect();
        let self_index = atom_index;
        if child_heads.len() <= 2 {
            for h in child_heads {
                edges.push((self_index, h));
            }
            return self_index;
        }
        edges.push((self_index, child_heads[0]));
        let mut chain_tail = self_index;
        for (i, &head) in child_heads[1..].iter().enumerate() {
            let is_last = i == child_heads.len() - 2;
            if is_last {
                edges.push((chain_tail, head));
            } else {
                let original_atom = atoms[atom_index].clone();
                let fresh_rel = crate::encoded::fresh_relation_name(
                    relations,
                    &format!("{}~bin", original_atom.relation()),
                );
                let copy_rel = relations
                    .get(original_atom.relation())
                    .expect("validated")
                    .renamed(fresh_rel.clone());
                relations.insert(fresh_rel.clone(), copy_rel);
                let copy_atom = original_atom.renamed(fresh_rel);
                atoms.push(copy_atom);
                let copy_index = atoms.len() - 1;
                edges.push((chain_tail, copy_index));
                edges.push((copy_index, head));
                chain_tail = copy_index;
            }
        }
        self_index
    }

    let root_index = lay_out(&tree, tree.root(), &mut atoms, &mut relations, &mut edges);
    let new_query = JoinQuery::new(atoms);
    let num_nodes = new_query.num_atoms();
    let new_tree = JoinTree::from_edges(num_nodes, &edges, root_index);
    debug_assert!(new_tree.satisfies_running_intersection(&new_query));
    debug_assert!(new_tree.is_binary());
    let new_instance = EncodedInstance::new(
        new_query,
        std::sync::Arc::clone(instance.dictionary()),
        relations,
    )?;
    Ok(BinarizedEncoded {
        instance: new_instance,
        tree: new_tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{path_query, star_query};
    use crate::Atom;
    use qjoin_data::{Database, Relation, Value};

    fn star_instance(k: usize, rows_per_rel: i64) -> Instance {
        let mut db = Database::new();
        for i in 1..=k {
            let mut rel = Relation::new(format!("R{i}"), 2);
            for j in 0..rows_per_rel {
                rel.push(vec![Value::from(j % 2), Value::from(j)]).unwrap();
            }
            db.add_relation(rel).unwrap();
        }
        Instance::new(star_query(k), db).unwrap()
    }

    #[test]
    fn already_binary_trees_are_untouched() {
        let r1 = Relation::from_rows("R1", &[&[1, 2]]).unwrap();
        let r2 = Relation::from_rows("R2", &[&[2, 3]]).unwrap();
        let inst =
            Instance::new(path_query(2), Database::from_relations([r1, r2]).unwrap()).unwrap();
        let b = binarize(&inst).unwrap();
        assert_eq!(b.instance.query(), inst.query());
        assert!(b.tree.is_binary());
    }

    fn wide_instance() -> Instance {
        // A(x,y,z,w) joined with four unary children: every join tree makes A a node
        // with four children, so binarization must introduce copies of A.
        let mut db = Database::new();
        db.add_relation(Relation::from_rows("A", &[&[1, 2, 3, 4], &[1, 2, 3, 5]]).unwrap())
            .unwrap();
        for (name, vals) in [
            ("B", vec![1i64]),
            ("C", vec![2]),
            ("D", vec![3]),
            ("E", vec![4, 5]),
        ] {
            let rows: Vec<Vec<i64>> = vals.into_iter().map(|v| vec![v]).collect();
            let rows_ref: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            db.add_relation(Relation::from_rows(name, &rows_ref).unwrap())
                .unwrap();
        }
        let q = JoinQuery::new(vec![
            Atom::from_names("A", &["x", "y", "z", "w"]),
            Atom::from_names("B", &["x"]),
            Atom::from_names("C", &["y"]),
            Atom::from_names("D", &["z"]),
            Atom::from_names("E", &["w"]),
        ]);
        Instance::new(q, db).unwrap()
    }

    #[test]
    fn stars_binarize_consistently() {
        // GYO already produces a chain for star queries (all atoms share the centre),
        // so binarization may be a no-op; either way the result must be binary and
        // satisfy running intersection over all original variables.
        let inst = star_instance(5, 4);
        let b = binarize(&inst).unwrap();
        assert!(b.tree.is_binary());
        assert!(b.tree.satisfies_running_intersection(b.instance.query()));
        for v in inst.query().variables() {
            assert!(b.instance.query().contains_variable(&v));
        }
    }

    #[test]
    fn binarized_copies_hold_identical_data() {
        let inst = wide_instance();
        let b = binarize(&inst).unwrap();
        let copies: Vec<_> = b
            .instance
            .query()
            .atoms()
            .iter()
            .filter(|a| a.relation().contains("~bin"))
            .collect();
        assert!(!copies.is_empty());
        for atom in copies {
            let original = atom.relation().split('~').next().unwrap();
            assert_eq!(
                b.instance
                    .database()
                    .relation(atom.relation())
                    .unwrap()
                    .tuples(),
                b.instance.database().relation(original).unwrap().tuples()
            );
            // Copies share all of the original atom's variables.
            assert_eq!(
                atom.variable_set(),
                b.instance.query().atom(0).variable_set()
            );
        }
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.add_relation(Relation::from_rows(name, &[&[1, 1]]).unwrap())
                .unwrap();
        }
        let inst = Instance::new(crate::query::triangle_query(), db).unwrap();
        assert!(matches!(
            binarize(&inst).unwrap_err(),
            QueryError::CyclicQuery(_)
        ));
    }

    #[test]
    fn three_children_need_no_copy_when_split_two_and_one() {
        // A node with exactly 3 children: the chain construction uses the original node
        // for child 1 and one copy carrying children 2 and 3... with our layout the last
        // child reuses the tail, so exactly one copy is introduced.
        let inst = star_instance(3, 2);
        let gyo = acyclicity::gyo_join_tree(inst.query()).unwrap();
        if gyo.is_binary() {
            // GYO may already produce a chain for the star (R1-R2-R3 all share x0); in
            // that case binarize is a no-op, which is also correct.
            let b = binarize(&inst).unwrap();
            assert_eq!(b.instance.query().num_atoms(), 3);
        } else {
            let b = binarize(&inst).unwrap();
            assert!(b.tree.is_binary());
            assert_eq!(b.instance.query().num_atoms(), 4);
        }
    }

    #[test]
    fn binarized_height_stays_linear_in_query_size() {
        let inst = wide_instance();
        let b = binarize(&inst).unwrap();
        assert!(b.tree.height() <= 2 * inst.query().num_atoms());
    }

    #[test]
    fn wide_node_gets_copies_and_stays_acyclic() {
        let inst = wide_instance();
        let b = binarize(&inst).unwrap();
        assert!(b.tree.is_binary());
        assert!(b.instance.query().num_atoms() >= 6);
        assert!(b.tree.satisfies_running_intersection(b.instance.query()));
        assert!(acyclicity::is_acyclic(b.instance.query()));
    }
}
