//! Experiment E-SOLVE: the encoded execution layer vs the row path on cold solves.
//!
//! Three measurements over the social-network workload (the acceptance workload:
//! `rows_per_relation = 300`, `seed = 2023`, exact SUM(l2, l3)) plus a LEX and a
//! MIN/MAX configuration on the 3-path workload:
//!
//! * **row** — `exact_quantile_via_rows`: the materialized-tuple reference path
//!   (per-round `Value` hashing, tuple copies per trim).
//! * **encoded** — `exact_quantile`: the default path; each solve encodes the
//!   database (dictionary + columns) and then runs entirely on `u64` codes and
//!   selection-vector views.
//! * **encoded (prepared)** — `exact_quantile_encoded` over a pre-built
//!   [`EncodedInstance`]: the engine's amortized regime, where the encoding is
//!   built once per catalog generation and reused across solves.
//!
//! Every mode solves the same φ set; per-solve medians are reported. The encoded
//! answers are asserted pointwise equal to the row answers on every sample.
//! `QJOIN_BENCH_SMOKE=1` (as CI sets) shrinks the sweep to a 1-sample smoke run.
//! The JSON rows at the end are recorded in `BENCH_solve.json`.
//!
//! A second sweep runs the prepared encoded solve through the work-stealing
//! chunk executor at 1/2/4/8 threads (T=1 is purely sequential), asserting
//! bit-identical answers at every degree and reporting per-degree medians —
//! the rows recorded in `BENCH_parallel.json`.

use qjoin_bench::{scaling_path_config, timed};
use qjoin_core::encoded::exact_quantile_encoded;
use qjoin_core::quantile::PivotingOptions;
use qjoin_core::solver::{exact_quantile, exact_quantile_via_rows};
use qjoin_core::QuantileResult;
use qjoin_query::variable::vars;
use qjoin_query::{EncodedInstance, Instance};
use qjoin_ranking::Ranking;
use qjoin_workload::social::SocialConfig;

struct Case {
    name: &'static str,
    instance: Instance,
    ranking: Ranking,
}

fn cases(smoke: bool) -> Vec<Case> {
    let social = SocialConfig {
        rows_per_relation: if smoke { 60 } else { 300 },
        seed: 2023,
        ..Default::default()
    };
    let path = scaling_path_config(if smoke { 100 } else { 1_000 }, 2023).generate();
    vec![
        Case {
            name: "social/sum",
            instance: social.generate(),
            ranking: social.likes_ranking(),
        },
        Case {
            name: "path3/lex",
            instance: path.clone(),
            ranking: Ranking::lex(vars(&["x1", "x4"])),
        },
        Case {
            name: "path3/max",
            instance: path,
            ranking: Ranking::max(vars(&["x1", "x2", "x3", "x4"])),
        },
    ]
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn assert_pointwise(a: &QuantileResult, b: &QuantileResult, context: &str) {
    assert_eq!(a.answer, b.answer, "{context}: answers diverge");
    assert_eq!(a.weight, b.weight, "{context}: weights diverge");
    assert_eq!(a.target_index, b.target_index, "{context}: targets diverge");
}

fn main() {
    let smoke = std::env::var("QJOIN_BENCH_SMOKE").is_ok();
    let samples = if smoke { 1 } else { 5 };
    let phis: &[f64] = if smoke { &[0.5] } else { &[0.1, 0.5, 0.9] };

    println!("# E-SOLVE: encoded execution layer vs row path, cold exact solves");
    println!(
        "# {} samples per mode, phis {:?}{}",
        samples,
        phis,
        if smoke { ", SMOKE MODE" } else { "" }
    );
    println!();
    println!("| case | mode | median ms/solve | speedup vs row |");
    println!("|---|---|---|---|");

    let options = PivotingOptions::default();
    let mut rows_out: Vec<(String, String, f64, f64)> = Vec::new();
    for case in cases(smoke) {
        let Case {
            name,
            instance,
            ranking,
        } = case;
        // Warm-up + correctness: encoded answers must equal row answers.
        let encoded_db = EncodedInstance::from_instance(&instance).expect("encodable");
        for &phi in phis {
            let row = exact_quantile_via_rows(&instance, &ranking, phi).expect("row solve");
            let enc = exact_quantile(&instance, &ranking, phi).expect("encoded solve");
            let pre =
                exact_quantile_encoded(&encoded_db, &ranking, phi, &options).expect("prepared");
            assert_pointwise(&enc, &row, name);
            assert_pointwise(&pre, &row, name);
        }

        let mut row_ms = Vec::new();
        let mut enc_ms = Vec::new();
        let mut pre_ms = Vec::new();
        for _ in 0..samples {
            for &phi in phis {
                let (r, elapsed) = timed(|| exact_quantile_via_rows(&instance, &ranking, phi));
                r.expect("row solve");
                row_ms.push(elapsed.as_secs_f64() * 1e3);

                let (r, elapsed) = timed(|| exact_quantile(&instance, &ranking, phi));
                r.expect("encoded solve");
                enc_ms.push(elapsed.as_secs_f64() * 1e3);

                let (r, elapsed) =
                    timed(|| exact_quantile_encoded(&encoded_db, &ranking, phi, &options));
                r.expect("prepared solve");
                pre_ms.push(elapsed.as_secs_f64() * 1e3);
            }
        }
        let row_med = median(&mut row_ms);
        for (mode, samples) in [
            ("row", &mut row_ms),
            ("encoded", &mut enc_ms),
            ("encoded-prepared", &mut pre_ms),
        ] {
            let med = median(samples);
            let speedup = row_med / med;
            println!("| {name} | {mode} | {med:.2} | {speedup:.2}x |");
            rows_out.push((name.to_string(), mode.to_string(), med, speedup));
        }
    }

    println!();
    println!("# JSON rows (for BENCH_solve.json):");
    println!("[");
    for (i, (case, mode, med, speedup)) in rows_out.iter().enumerate() {
        let comma = if i + 1 == rows_out.len() { "" } else { "," };
        println!(
            "  {{\"case\": \"{case}\", \"mode\": \"{mode}\", \"median_ms\": {med:.3}, \
             \"speedup_vs_row\": {speedup:.2}}}{comma}"
        );
    }
    println!("]");

    thread_sweep(smoke, samples, phis, &options);
}

/// The intra-solve parallelism sweep: the prepared encoded solve at executor
/// degrees 1, 2, 4, and 8 over the same cases. Answers are asserted pointwise
/// equal to the T=1 run at every degree (the executor's bit-identity guarantee);
/// timings only show a speedup when the host actually has spare cores.
fn thread_sweep(smoke: bool, samples: usize, phis: &[f64], options: &PivotingOptions) {
    let degrees = [1usize, 2, 4, 8];
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!("# E-SOLVE-PAR: prepared encoded solve across executor thread counts");
    println!("# host cores: {host_cores} (degrees above that cannot speed up)");
    println!();
    println!("| case | threads | median ms/solve | speedup vs 1 thread |");
    println!("|---|---|---|---|");

    let mut rows_out: Vec<(String, usize, f64, f64)> = Vec::new();
    for case in cases(smoke) {
        let Case {
            name,
            instance,
            ranking,
        } = case;
        let encoded_db = EncodedInstance::from_instance(&instance).expect("encodable");
        let mut baseline: Vec<QuantileResult> = Vec::new();
        let mut seq_med = 0.0;
        for (d, &threads) in degrees.iter().enumerate() {
            let pool = qjoin_par::Pool::new(threads);
            let mut ms = Vec::new();
            qjoin_par::with_pool(&pool, || {
                for round in 0..samples {
                    for (p, &phi) in phis.iter().enumerate() {
                        let (r, elapsed) =
                            timed(|| exact_quantile_encoded(&encoded_db, &ranking, phi, options));
                        let result = r.expect("prepared solve");
                        ms.push(elapsed.as_secs_f64() * 1e3);
                        if round == 0 {
                            if threads == 1 {
                                baseline.push(result);
                            } else {
                                assert_pointwise(
                                    &result,
                                    &baseline[p],
                                    &format!("{name} at {threads} threads"),
                                );
                            }
                        }
                    }
                }
            });
            let med = median(&mut ms);
            if d == 0 {
                seq_med = med;
            }
            let speedup = seq_med / med;
            println!("| {name} | {threads} | {med:.2} | {speedup:.2}x |");
            rows_out.push((name.to_string(), threads, med, speedup));
        }
    }

    println!();
    println!("# JSON rows (for BENCH_parallel.json):");
    println!("[");
    println!("  {{\"host_cores\": {host_cores}}},");
    for (i, (case, threads, med, speedup)) in rows_out.iter().enumerate() {
        let comma = if i + 1 == rows_out.len() { "" } else { "," };
        println!(
            "  {{\"case\": \"{case}\", \"threads\": {threads}, \"median_ms\": {med:.3}, \
             \"speedup_vs_seq\": {speedup:.2}}}{comma}"
        );
    }
    println!("]");
}
