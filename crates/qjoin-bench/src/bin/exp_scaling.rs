//! Experiments E-T53 (MIN/MAX), E-T56a (partial SUM), E-LEX, and E-INTRO (social
//! network): quasilinear pivoting vs the materialization baseline as the database
//! grows.
//!
//! Prints one table per ranking family; each row records the database size, the join
//! answer count, the pivoting time, the baseline time, and whether the two algorithms
//! returned the same quantile weight. The rows are the ones recorded in
//! `EXPERIMENTS.md`.
//!
//! Run with `cargo run --release -p qjoin-bench --bin exp_scaling [max_tuples]`.

use qjoin_bench::{fmt_ms, scaling_path_config, scaling_social_config, timed};
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::solver::exact_quantile;
use qjoin_exec::count::count_answers;
use qjoin_query::variable::vars;
use qjoin_query::Instance;
use qjoin_ranking::Ranking;

fn main() {
    let max_tuples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let mut sizes = vec![1_000usize, 2_000, 4_000];
    while *sizes.last().unwrap() < max_tuples {
        sizes.push(sizes.last().unwrap() * 2);
    }
    sizes.retain(|&s| s <= max_tuples);

    let phi = 0.5;
    println!("# E-T53: MAX over all variables, 3-path join, φ = {phi}");
    run_family(&sizes, phi, |inst| Ranking::max(inst.query().variables()));

    println!("\n# E-T53: MIN over the endpoints, 3-path join, φ = {phi}");
    run_family(&sizes, phi, |_| Ranking::min(vars(&["x1", "x4"])));

    println!("\n# E-T56a: partial SUM(x1, x2, x3), 3-path join, φ = {phi}");
    run_family(&sizes, phi, |_| Ranking::sum(vars(&["x1", "x2", "x3"])));

    println!("\n# E-LEX: LEX(x2, x4), 3-path join, φ = {phi}");
    run_family(&sizes, phi, |_| Ranking::lex(vars(&["x2", "x4"])));

    println!("\n# E-INTRO: social network, 0.1-quantile of l2 + l3");
    // The skewed social workload fans out aggressively (tens of millions of answers
    // past ~2000 rows per relation), so the baseline column is capped to keep the
    // experiment runnable end to end; the pivoting algorithm itself scales far beyond.
    header();
    for rows in [1_000usize, 2_000] {
        let config = scaling_social_config(rows, 2023);
        let instance = config.generate();
        let ranking = config.likes_ranking();
        row(&instance, &ranking, 0.1);
    }
}

fn run_family(sizes: &[usize], phi: f64, ranking_of: impl Fn(&Instance) -> Ranking) {
    header();
    for &tuples in sizes {
        let instance = scaling_path_config(tuples, 7).generate();
        let ranking = ranking_of(&instance);
        row(&instance, &ranking, phi);
    }
}

fn header() {
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>10}",
        "db tuples", "join answers", "pivot (ms)", "baseline (ms)", "agree"
    );
}

fn row(instance: &Instance, ranking: &Ranking, phi: f64) {
    let answers = count_answers(instance).unwrap();
    let (fast, fast_time) = timed(|| exact_quantile(instance, ranking, phi).unwrap());
    let (slow, slow_time) = timed(|| {
        quantile_by_materialization(instance, ranking, phi, BaselineStrategy::Selection).unwrap()
    });
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>10}",
        instance.database_size(),
        answers,
        fmt_ms(fast_time),
        fmt_ms(slow_time),
        fast.weight == slow.weight
    );
}
