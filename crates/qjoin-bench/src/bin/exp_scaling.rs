//! Experiment E-SCALE: exact and approximate quantiles at million-tuple scale on
//! the orders/lineitem/part star schema, recording the near-linearity curve the
//! paper's asymptotic claims predict.
//!
//! For every size `n` (the `Lineitem` fact-table row count) the sweep generates
//! the star-schema instance — dimension keys cover the fact table's foreign-key
//! domains, so `|Q(D)| = n` and the output cannot mask the solve's own growth —
//! and times three cold solves:
//!
//! * **exact** — `exact_quantile` of SUM(`wl`) (single-atom SUM, the tractable
//!   side of the Theorem 5.6 dichotomy);
//! * **approx/encoded** — `approximate_sum_quantile` of SUM(`wo+wl+wp`) (weights
//!   in non-adjacent atoms: exactly intractable), served by the encoded
//!   ε-sketch path;
//! * **approx/row** — the same request forced onto the materialized-row
//!   reference path (`approximate_sum_quantile_via_rows`); its answer is
//!   asserted pointwise identical to the encoded one, and the encoded/row ratio
//!   is the PR's cold approximate-solve speedup.
//!
//! A sampling column (`quantile_by_sampling`, Hoeffding budget at ε=0.05,
//! δ=0.01) rides along for reference. Each row also reports time per input
//! tuple (`ns/tuple`) and the growth exponent vs the previous row
//! (`log(t_i/t_{i-1}) / log(n_i/n_{i-1})` — near 1.0 means near-linear); the
//! same numbers land in machine-readable form in `BENCH_scaling.json` at the
//! workspace root.
//!
//! Run with `cargo run --release -p qjoin-bench --bin exp_scaling
//! [--sizes 10000,100000,1000000] [--out path.json]`. `QJOIN_BENCH_SMOKE=1` (as
//! CI sets) shrinks the sweep to one small size, skips the JSON file, and
//! additionally asserts the approximate answer lands within ε of the exact one
//! (measured rank error on the tractable ranking, where exact ground truth is
//! computable).

use qjoin_bench::{fmt_ms, relative_rank_error, timed};
use qjoin_core::sampling::{quantile_by_sampling, SamplingOptions};
use qjoin_core::solver::{
    approximate_sum_quantile, approximate_sum_quantile_via_rows, exact_quantile, ErrorBudget,
};
use qjoin_core::QuantileResult;
use qjoin_exec::count::count_answers;
use qjoin_workload::star_schema::StarSchemaConfig;
use std::time::Duration;

const PHI: f64 = 0.5;
const EPSILON: f64 = 0.05;

/// One size's measurements.
struct SizeRow {
    lineitems: usize,
    db_tuples: usize,
    answers: u128,
    exact: Duration,
    approx_encoded: Duration,
    approx_row: Duration,
    sampling: Duration,
}

fn main() {
    let smoke = std::env::var("QJOIN_BENCH_SMOKE").is_ok();
    let (sizes, out_path) = parse_args(smoke);

    println!("# E-SCALE: star schema Orders(o,wo), Lineitem(o,p,wl), Part(p,wp), φ = {PHI}");
    println!("# exact = SUM(wl) (tractable); approx = SUM(wo+wl+wp) (intractable), ε = {EPSILON}");
    println!(
        "{:>10} {:>12} {:>11} {:>8} {:>13} {:>11} {:>9} {:>12} {:>8}",
        "lineitems",
        "exact (ms)",
        "ns/tuple",
        "exp",
        "apx-enc (ms)",
        "ns/tuple",
        "exp",
        "apx-row (ms)",
        "speedup"
    );

    let mut rows: Vec<SizeRow> = Vec::new();
    for &lineitems in &sizes {
        let config = StarSchemaConfig::with_scale(lineitems);
        let instance = config.generate();
        let answers = count_answers(&instance).unwrap();
        assert_eq!(
            answers, lineitems as u128,
            "star-schema output must stay linear in the fact table"
        );

        let exact_ranking = config.revenue_ranking();
        let approx_ranking = config.total_weight_ranking();

        let (exact, exact_time) = timed(|| exact_quantile(&instance, &exact_ranking, PHI).unwrap());
        let (enc, enc_time) = timed(|| {
            approximate_sum_quantile(
                &instance,
                &approx_ranking,
                PHI,
                EPSILON,
                ErrorBudget::Direct,
            )
            .unwrap()
        });
        let (row_result, row_time) = timed(|| {
            approximate_sum_quantile_via_rows(
                &instance,
                &approx_ranking,
                PHI,
                EPSILON,
                ErrorBudget::Direct,
            )
            .unwrap()
        });
        assert_pointwise(&enc, &row_result, &format!("lineitems={lineitems}"));
        let options = SamplingOptions {
            epsilon: EPSILON,
            delta: 0.01,
            seed: 0x5eed,
        };
        let (_, sampling_time) =
            timed(|| quantile_by_sampling(&instance, &approx_ranking, PHI, &options).unwrap());

        // The within-ε acceptance check runs where exact ground truth exists: the
        // approximate solver on the *tractable* ranking vs the exact answer.
        let (approx_of_exact, _) = timed(|| {
            approximate_sum_quantile(&instance, &exact_ranking, PHI, EPSILON, ErrorBudget::Direct)
                .unwrap()
        });
        let err = relative_rank_error(&instance, &exact_ranking, &approx_of_exact);
        assert!(
            err <= EPSILON,
            "approximate answer missed the ε band: rank error {err} > {EPSILON}"
        );
        assert_eq!(exact.total_answers, answers);

        let row = SizeRow {
            lineitems,
            db_tuples: instance.database_size(),
            answers,
            exact: exact_time,
            approx_encoded: enc_time,
            approx_row: row_time,
            sampling: sampling_time,
        };
        print_row(&row, rows.last());
        rows.push(row);
    }

    let largest = rows.last().expect("at least one size");
    let speedup = largest.approx_row.as_secs_f64() / largest.approx_encoded.as_secs_f64();
    println!(
        "# largest size {}: approx encoded {} ms vs row {} ms -> {:.2}x cold speedup",
        largest.lineitems,
        fmt_ms(largest.approx_encoded),
        fmt_ms(largest.approx_row),
        speedup
    );
    if smoke {
        println!(
            "# smoke mode: exact≈approx within ε and encoded==row both asserted; JSON skipped"
        );
        return;
    }
    let json = render_json(&rows, speedup);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("# wrote {out_path}"),
        Err(e) => {
            println!("# could not write {out_path} ({e}); JSON follows:");
            println!("{json}");
        }
    }
}

/// `--sizes a,b,c` and `--out path` with smoke-aware defaults.
fn parse_args(smoke: bool) -> (Vec<usize>, String) {
    let default_out = format!("{}/../../BENCH_scaling.json", env!("CARGO_MANIFEST_DIR"));
    let mut sizes: Vec<usize> = if smoke {
        vec![5_000]
    } else {
        vec![10_000, 30_000, 100_000, 300_000, 1_000_000]
    };
    let mut out = default_out;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                let list = args
                    .get(i + 1)
                    .expect("--sizes needs a comma-separated list");
                sizes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes entries must be integers"))
                    .collect();
                assert!(!sizes.is_empty(), "--sizes list must be non-empty");
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            other => panic!("unknown argument {other:?} (expected --sizes or --out)"),
        }
    }
    sizes.sort_unstable();
    (sizes, out)
}

fn assert_pointwise(a: &QuantileResult, b: &QuantileResult, context: &str) {
    assert_eq!(a.answer, b.answer, "{context}: answers diverge");
    assert_eq!(a.weight, b.weight, "{context}: weights diverge");
    assert_eq!(a.target_index, b.target_index, "{context}: targets diverge");
}

/// Nanoseconds of solve time per input tuple — flat across sizes means linear.
fn ns_per_tuple(time: Duration, tuples: usize) -> f64 {
    time.as_nanos() as f64 / tuples.max(1) as f64
}

/// The growth exponent between two rows: `log(t_b/t_a) / log(n_b/n_a)`.
/// 1.0 is exactly linear; the paper predicts O(n polylog n), so slightly above.
fn growth_exponent(a: (usize, Duration), b: (usize, Duration)) -> Option<f64> {
    let dn = (b.0 as f64 / a.0 as f64).ln();
    if dn <= 0.0 {
        return None;
    }
    Some((b.1.as_secs_f64() / a.1.as_secs_f64()).ln() / dn)
}

fn fmt_exponent(e: Option<f64>) -> String {
    e.map_or_else(|| "-".to_string(), |e| format!("{e:.2}"))
}

/// The same exponent as a JSON value (`null` for the first row).
fn json_exponent(e: Option<f64>) -> String {
    e.map_or_else(|| "null".to_string(), |e| format!("{e:.2}"))
}

fn print_row(row: &SizeRow, prev: Option<&SizeRow>) {
    let exact_exp =
        prev.and_then(|p| growth_exponent((p.db_tuples, p.exact), (row.db_tuples, row.exact)));
    let enc_exp = prev.and_then(|p| {
        growth_exponent(
            (p.db_tuples, p.approx_encoded),
            (row.db_tuples, row.approx_encoded),
        )
    });
    println!(
        "{:>10} {:>12} {:>11.1} {:>8} {:>13} {:>11.1} {:>9} {:>12} {:>8.2}",
        row.lineitems,
        fmt_ms(row.exact),
        ns_per_tuple(row.exact, row.db_tuples),
        fmt_exponent(exact_exp),
        fmt_ms(row.approx_encoded),
        ns_per_tuple(row.approx_encoded, row.db_tuples),
        fmt_exponent(enc_exp),
        fmt_ms(row.approx_row),
        row.approx_row.as_secs_f64() / row.approx_encoded.as_secs_f64()
    );
}

/// The machine-readable curve, schema-aligned with the other BENCH_*.json files.
fn render_json(rows: &[SizeRow], largest_speedup: f64) -> String {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-scaling-v1\",\n");
    out.push_str(
        "  \"description\": \"Exact and approximate cold quantile solves on the \
         orders/lineitem/part star schema as the fact table grows to 10^6 tuples. \
         Dimension keys cover the fact table's foreign keys, so |Q(D)| equals the \
         lineitem count and the output stays linear in the input. exact = SUM(wl) \
         (single-atom, tractable side of Theorem 5.6) via exact_quantile; \
         approx_encoded = SUM(wo+wl+wp) (non-adjacent atoms, exactly intractable) \
         via the encoded epsilon-sketch path (approximate_sum_quantile, eps=0.05, \
         ErrorBudget::Direct); approx_row = the same request on the \
         materialized-row reference path, asserted pointwise identical; sampling = \
         quantile_by_sampling at eps=0.05 delta=0.01. ns_per_tuple flat across \
         sizes (equivalently growth_exponent near 1.0) is the near-linearity the \
         paper's O(n polylog n) bounds predict. Regenerate with: cargo run \
         --release -p qjoin-bench --bin exp_scaling (accepts --sizes \
         10000,...,1000000; QJOIN_BENCH_SMOKE=1 for the 1-size CI assertion \
         mode).\",\n",
    );
    out.push_str("  \"recorded\": \"2026-08-08\",\n");
    out.push_str("  \"bench\": \"exp_scaling\",\n");
    out.push_str(&format!(
        "  \"host\": {{\n    \"available_parallelism\": {host_cores},\n    \
         \"note\": \"RECORDING-HOST CAVEAT: single-shot cold-solve wall times on a \
         {host_cores}-core CI container; absolute ms are host-bound, the per-size \
         ratios and growth exponents are the signal.\"\n  }},\n"
    ));
    out.push_str(&format!(
        "  \"acceptance\": {{\n    \"workload\": \"starschema lineitems={} (largest \
         swept size)\",\n    \"required_cold_approx_speedup\": 2.0,\n    \
         \"measured_cold_approx_speedup\": {:.2}\n  }},\n",
        rows.last().map_or(0, |r| r.lineitems),
        largest_speedup
    ));
    out.push_str("  \"phi\": 0.5,\n  \"epsilon\": 0.05,\n");
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| &rows[j]);
        let exact_exp =
            prev.and_then(|p| growth_exponent((p.db_tuples, p.exact), (row.db_tuples, row.exact)));
        let enc_exp = prev.and_then(|p| {
            growth_exponent(
                (p.db_tuples, p.approx_encoded),
                (row.db_tuples, row.approx_encoded),
            )
        });
        out.push_str(&format!(
            "    {{\"lineitems\": {}, \"db_tuples\": {}, \"answers\": {}, \
             \"exact_ms\": {}, \"exact_ns_per_tuple\": {:.1}, \
             \"exact_growth_exponent\": {}, \"approx_encoded_ms\": {}, \
             \"approx_encoded_ns_per_tuple\": {:.1}, \
             \"approx_encoded_growth_exponent\": {}, \"approx_row_ms\": {}, \
             \"approx_speedup_vs_row\": {:.2}, \"sampling_ms\": {}}}{}\n",
            row.lineitems,
            row.db_tuples,
            row.answers,
            fmt_ms(row.exact),
            ns_per_tuple(row.exact, row.db_tuples),
            json_exponent(exact_exp),
            fmt_ms(row.approx_encoded),
            ns_per_tuple(row.approx_encoded, row.db_tuples),
            json_exponent(enc_exp),
            fmt_ms(row.approx_row),
            row.approx_row.as_secs_f64() / row.approx_encoded.as_secs_f64(),
            fmt_ms(row.sampling),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
