//! Experiment E-T56b: the partial-SUM dichotomy classification table (Theorem 5.6).
//!
//! Prints, for a catalogue of queries and weighted-variable sets, the classification
//! produced by the implementation (tractable with a single-atom or adjacent-pair
//! cover, or intractable with the hardness witness), matching the paper's statements
//! about each query.
//!
//! Run with `cargo run -p qjoin-bench --bin exp_dichotomy`.

use qjoin_core::dichotomy::{classify_partial_sum, SumClassification};
use qjoin_query::query::{path_query, social_network_query, star_query, triangle_query};
use qjoin_query::variable::vars;
use qjoin_query::{JoinQuery, Variable};

fn main() {
    println!("# E-T56b: partial SUM dichotomy classification (Theorem 5.6)");
    println!(
        "{:<34} {:<26} {:>11}   detail",
        "query", "weighted variables", "tractable"
    );
    let cases: Vec<(String, JoinQuery, Vec<Variable>)> = vec![
        ("2-path".into(), path_query(2), path_query(2).variables()),
        ("3-path".into(), path_query(3), path_query(3).variables()),
        ("3-path".into(), path_query(3), vars(&["x1", "x2", "x3"])),
        ("3-path".into(), path_query(3), vars(&["x2", "x3"])),
        ("4-path".into(), path_query(4), vars(&["x1", "x5"])),
        ("4-path".into(), path_query(4), vars(&["x2", "x3", "x4"])),
        ("star-3".into(), star_query(3), vars(&["x1", "x2", "x3"])),
        ("star-3".into(), star_query(3), vars(&["x0", "x1"])),
        (
            "social network".into(),
            social_network_query(),
            vars(&["l2", "l3"]),
        ),
        (
            "social network".into(),
            social_network_query(),
            social_network_query().variables(),
        ),
        (
            "triangle (cyclic)".into(),
            triangle_query(),
            triangle_query().variables(),
        ),
    ];
    for (name, query, weighted) in cases {
        let classification = classify_partial_sum(&query, &weighted);
        let (tractable, detail) = describe(&query, &classification);
        let weighted_names: Vec<&str> = weighted.iter().map(|v| v.name()).collect();
        println!(
            "{:<34} {:<26} {:>11}   {detail}",
            format!("{name}: {query}"),
            weighted_names.join(","),
            tractable
        );
    }
}

fn describe(query: &JoinQuery, c: &SumClassification) -> (&'static str, String) {
    match c {
        SumClassification::TractableSingleAtom { atom } => {
            ("yes", format!("single-atom cover {}", query.atom(*atom)))
        }
        SumClassification::TractableAdjacentPair { atoms } => (
            "yes",
            format!(
                "adjacent cover {} + {}",
                query.atom(atoms.0),
                query.atom(atoms.1)
            ),
        ),
        SumClassification::IntractableCyclic => ("no", "cyclic hypergraph".into()),
        SumClassification::IntractableIndependentSet(w) => {
            ("no", format!("independent triple {w:?}"))
        }
        SumClassification::IntractableChordlessPath(p) => ("no", format!("chordless path {p:?}")),
        SumClassification::UnknownTooLarge => ("?", "query too large".into()),
    }
}
