//! Experiments E-T62 and E-RAND: deterministic ε-approximation (lossy trimmings) and
//! randomized sampling for full SUM on the 3-path join, which is intractable exactly.
//!
//! For each ε the table reports the running time and the *measured* rank error of the
//! returned answer (distance from the target index, relative to the number of
//! answers), with the brute-force baseline as ground truth and reference time.
//!
//! Run with `cargo run --release -p qjoin-bench --bin exp_approx_sum [tuples]`.

use qjoin_bench::{fmt_ms, relative_rank_error, scaling_path_config, timed};
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::sampling::{quantile_by_sampling, SamplingOptions};
use qjoin_core::solver::{approximate_sum_quantile, ErrorBudget};
use qjoin_exec::count::count_answers;
use qjoin_ranking::Ranking;

fn main() {
    let tuples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let phi = 0.5;
    let instance = scaling_path_config(tuples, 13).generate();
    let ranking = Ranking::sum(instance.query().variables());
    let answers = count_answers(&instance).unwrap();
    println!("# E-T62 / E-RAND: full SUM on the 3-path (exactly intractable)");
    println!(
        "database: {} tuples, join answers: {answers}, φ = {phi}\n",
        instance.database_size()
    );
    println!(
        "{:>28} {:>12} {:>16} {:>12}",
        "algorithm", "time (ms)", "rel. rank error", "iterations"
    );

    let (baseline, baseline_time) = timed(|| {
        quantile_by_materialization(&instance, &ranking, phi, BaselineStrategy::Selection).unwrap()
    });
    println!(
        "{:>28} {:>12} {:>16} {:>12}",
        "baseline (materialize)",
        fmt_ms(baseline_time),
        format!("{:.5}", relative_rank_error(&instance, &ranking, &baseline)),
        "-"
    );

    for epsilon in [0.25, 0.1, 0.05, 0.025] {
        let (result, time) = timed(|| {
            approximate_sum_quantile(&instance, &ranking, phi, epsilon, ErrorBudget::Direct)
                .unwrap()
        });
        println!(
            "{:>28} {:>12} {:>16} {:>12}",
            format!("deterministic ε={epsilon}"),
            fmt_ms(time),
            format!("{:.5}", relative_rank_error(&instance, &ranking, &result)),
            result.iterations
        );
    }

    for epsilon in [0.1, 0.05, 0.025] {
        let options = SamplingOptions {
            epsilon,
            delta: 0.05,
            seed: 99,
        };
        let (result, time) =
            timed(|| quantile_by_sampling(&instance, &ranking, phi, &options).unwrap());
        println!(
            "{:>28} {:>12} {:>16} {:>12}",
            format!("sampling ε={epsilon}"),
            fmt_ms(time),
            format!("{:.5}", relative_rank_error(&instance, &ranking, &result)),
            options.sample_count()
        );
    }
}
