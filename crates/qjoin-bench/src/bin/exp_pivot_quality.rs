//! Experiment E-PIVOT: pivot selection quality and cost (Lemma 4.1).
//!
//! For growing databases the table reports the pivot-selection time (expected to grow
//! linearly), the guaranteed pivot quality `c` (a function of the join-tree shape
//! only), and the *measured* fractions of answers on each side of the returned pivot,
//! which must both be at least `c`.
//!
//! Run with `cargo run --release -p qjoin-bench --bin exp_pivot_quality [max_tuples]`.

use qjoin_bench::{fmt_ms, scaling_path_config, timed};
use qjoin_core::pivot::{select_pivot, verify_pivot};
use qjoin_ranking::Ranking;

fn main() {
    let max_tuples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    println!("# E-PIVOT: pivot quality and cost, 3-path join, full SUM");
    println!(
        "{:>10} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "db tuples", "join answers", "pivot (ms)", "c guarantee", "≤ fraction", "≥ fraction"
    );
    let mut tuples = 1_000usize;
    while tuples <= max_tuples {
        let instance = scaling_path_config(tuples, 5).generate();
        let ranking = Ranking::sum(instance.query().variables());
        let (pivot, time) = timed(|| select_pivot(&instance, &ranking).unwrap());
        // Verification materializes the join; keep it to the smaller sizes.
        let (le, ge) = if pivot.total_answers <= 3_000_000 {
            verify_pivot(&instance, &ranking, &pivot).unwrap()
        } else {
            (f64::NAN, f64::NAN)
        };
        println!(
            "{:>10} {:>14} {:>12} {:>12.4} {:>12.4} {:>12.4}",
            instance.database_size(),
            pivot.total_answers,
            fmt_ms(time),
            pivot.c,
            le,
            ge
        );
        tuples *= 2;
    }
}
