//! Experiment E-SERVER: closed-loop load generation against `qjoin-server`,
//! measuring how serving throughput scales with the worker-thread count.
//!
//! For each worker count (1/2/4/8) a fresh server is bound to an **ephemeral port**
//! (`127.0.0.1:0`) with a fresh engine, the social-network workload is registered
//! over the wire, and 8 closed-loop TCP clients (connect → request → wait for the
//! reply → next request) hammer it in two modes:
//!
//! * **cold-solve** — every request carries a globally unique φ, so every request
//!   misses the result cache and runs the full §3 divide-and-conquer solve. This is
//!   the CPU-bound path: throughput should scale with workers up to the host's
//!   available parallelism.
//! * **cold-coalesced** — all 8 clients request the *same* fresh φ each round
//!   (barrier-synchronized), so the engine's in-flight gate merges them into one
//!   shared batched solve. The row also records the `coalesced_batches` /
//!   `coalesced_waiters` counter deltas observed over the phase.
//! * **warm-cache** — requests cycle through a small primed φ set, so every request
//!   is a sharded-LRU cache hit. This is the lock/syscall-bound path that measures
//!   serving overhead.
//!
//! `QJOIN_BENCH_SMOKE=1` (as CI sets) shrinks the request counts to a 1-sample
//! smoke run. The final block prints machine-readable JSON rows; the curve recorded
//! in `BENCH_server.json` at the workspace root comes from this binary.

use qjoin_bench::{fmt_ms, timed};
use qjoin_engine::cli::CliSession;
use qjoin_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

/// Closed-loop client threads (fixed across worker counts, so the offered
/// concurrency is identical and only the server's parallelism varies).
const CLIENTS: usize = 8;

/// Worker counts swept for the scaling curve.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The φ set primed and re-requested in warm-cache mode.
const WARM_PHIS: usize = 16;

fn main() {
    let smoke = std::env::var("QJOIN_BENCH_SMOKE").is_ok();
    // Per-client request counts. Cold requests each run a full solve (~ms), warm
    // requests are cache hits (~µs), so warm gets more samples.
    let (cold_per_client, warm_per_client) = if smoke { (6, 40) } else { (40, 2_000) };
    let coalesced_rounds = if smoke { 4 } else { 25 };
    let rows = if smoke { 60 } else { 120 };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# E-SERVER: closed-loop thread scaling over qjoin-server");
    println!("# social workload rows={rows}, {CLIENTS} closed-loop TCP clients");
    println!(
        "# host available_parallelism={parallelism}{}",
        if smoke { ", SMOKE MODE" } else { "" }
    );
    println!();
    println!("| workers | mode | requests | elapsed ms | req/s | speedup vs 1 |");
    println!("|---|---|---|---|---|---|");

    type Row = (usize, &'static str, usize, f64, f64, Option<(u64, u64)>);
    let mut rows_out: Vec<Row> = Vec::new();
    let mut baselines: Vec<(&str, f64)> = Vec::new(); // (mode, rps) at workers=1
    for &workers in &WORKERS {
        let (addr, join) = start_server(workers, rows);

        // Cold-solve: every request is a unique φ — a guaranteed cache miss.
        let cold_requests = CLIENTS * cold_per_client;
        let cold_elapsed = run_phase(addr, cold_per_client, move |t, i| {
            unique_phi(t * cold_per_client + i)
        });
        let cold_rps = cold_requests as f64 / cold_elapsed.as_secs_f64();

        // Cold-coalesced: every round all clients race for the same fresh φ, so
        // the in-flight gate should fold most rounds into one shared solve.
        let (batches_before, waiters_before) = coalescing_counters(addr);
        let coalesced_requests = CLIENTS * coalesced_rounds;
        let coalesced_elapsed = run_coalesced_phase(addr, coalesced_rounds);
        let coalesced_rps = coalesced_requests as f64 / coalesced_elapsed.as_secs_f64();
        let (batches_after, waiters_after) = coalescing_counters(addr);
        let coalesced_counters = (
            batches_after - batches_before,
            waiters_after - waiters_before,
        );

        // Warm-cache: prime a φ set once, then hammer it.
        {
            let mut primer = Client::connect(addr).expect("primer connect");
            let phis: Vec<f64> = (0..WARM_PHIS).map(warm_phi).collect();
            primer.batch("plan", &phis).expect("prime the cache");
            primer.quit().expect("primer quit");
        }
        let warm_requests = CLIENTS * warm_per_client;
        let warm_elapsed = run_phase(addr, warm_per_client, |t, i| warm_phi(t + i));
        let warm_rps = warm_requests as f64 / warm_elapsed.as_secs_f64();

        let stopper = Client::connect(addr).expect("stopper connect");
        stopper.shutdown().expect("shutdown");
        join.join().expect("server thread");

        for (mode, requests, elapsed, rps, counters) in [
            ("cold-solve", cold_requests, cold_elapsed, cold_rps, None),
            (
                "cold-coalesced",
                coalesced_requests,
                coalesced_elapsed,
                coalesced_rps,
                Some(coalesced_counters),
            ),
            ("warm-cache", warm_requests, warm_elapsed, warm_rps, None),
        ] {
            let speedup = baselines
                .iter()
                .find(|(m, _)| *m == mode)
                .map(|(_, base)| rps / base)
                .unwrap_or(1.0);
            if workers == 1 {
                baselines.push((mode, rps));
            }
            let extra = counters
                .map(|(b, w)| format!(" (batches={b} waiters={w})"))
                .unwrap_or_default();
            println!(
                "| {workers} | {mode} | {requests} | {} | {rps:.0} | {speedup:.2}x{extra} |",
                fmt_ms(elapsed)
            );
            rows_out.push((
                workers,
                mode,
                requests,
                elapsed.as_secs_f64() * 1e3,
                rps,
                counters,
            ));
        }
    }

    println!();
    println!("# JSON rows (for BENCH_server.json):");
    println!("[");
    for (i, (workers, mode, requests, ms, rps, counters)) in rows_out.iter().enumerate() {
        let comma = if i + 1 == rows_out.len() { "" } else { "," };
        let extra = counters
            .map(|(b, w)| format!(", \"coalesced_batches\": {b}, \"coalesced_waiters\": {w}"))
            .unwrap_or_default();
        println!(
            "  {{\"workers\": {workers}, \"mode\": \"{mode}\", \"requests\": {requests}, \
             \"elapsed_ms\": {ms:.2}, \"throughput_rps\": {rps:.1}{extra}}}{comma}"
        );
    }
    println!("]");
}

/// A φ unique per request index: low-discrepancy golden-ratio steps never repeat
/// within any realistic request count, so every cold request is a fresh cache key.
fn unique_phi(index: usize) -> f64 {
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    let phi = (0.123_456_789 + index as f64 * GOLDEN).fract();
    // Keep strictly inside (0, 1) so φ parsing and rank snapping stay happy.
    phi.clamp(1e-9, 1.0 - 1e-9)
}

/// One of the `WARM_PHIS` primed fractions.
fn warm_phi(index: usize) -> f64 {
    (index % WARM_PHIS + 1) as f64 / (WARM_PHIS + 1) as f64
}

/// A fresh φ per coalesced round, offset far past the cold-solve indices so the
/// two phases never share a cache key.
fn coalesced_phi(round: usize) -> f64 {
    unique_phi(1_000_000 + round)
}

/// Reads the engine's coalescing counters over the wire via the `stats` verb.
fn coalescing_counters(addr: SocketAddr) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("stats connect");
    let stats = client.stats().expect("stats");
    client.quit().expect("stats quit");
    let line = stats
        .iter()
        .find(|l| l.contains("coalesced_batches="))
        .expect("coalescing line in stats");
    let grab = |key: &str| -> u64 {
        line.split(key)
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .expect("counter value")
    };
    (grab("coalesced_batches="), grab("coalesced_waiters="))
}

/// Boots a server with `workers` worker threads and a registered social plan;
/// returns its (ephemeral) address and the run-thread handle.
fn start_server(
    workers: usize,
    rows: usize,
) -> (
    SocketAddr,
    std::thread::JoinHandle<qjoin_server::ServerSummary>,
) {
    let config = ServerConfig {
        workers,
        queue_depth: CLIENTS * 2,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config)
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let join = std::thread::spawn(move || server.run().expect("server run"));

    let mut setup = Client::connect(addr).expect("setup connect");
    setup
        .send(&format!("open s social rows={rows} seed=7"))
        .expect("open workload");
    setup.send("register plan s").expect("register plan");
    setup.quit().expect("setup quit");
    (addr, join)
}

/// Runs one closed-loop phase: `CLIENTS` threads, each connected once, each
/// issuing `per_client` quantile requests back-to-back (`phi_of(thread, i)` picks
/// the fraction). Returns the wall-clock time from the post-connect barrier to the
/// last reply.
fn run_phase(
    addr: SocketAddr,
    per_client: usize,
    phi_of: impl Fn(usize, usize) -> f64 + Copy + Send + 'static,
) -> std::time::Duration {
    let ready = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                ready.wait(); // start the clock only once everyone is connected
                for i in 0..per_client {
                    let phi = phi_of(t, i);
                    client.quantile("plan", phi).expect("quantile request");
                }
                client.quit().expect("client quit");
            })
        })
        .collect();
    let ((), elapsed) = timed(move || {
        ready.wait();
        for t in threads {
            t.join().expect("client thread");
        }
    });
    elapsed
}

/// Runs the cold-coalesced phase: `CLIENTS` threads, all racing for the *same*
/// fresh φ each round, re-synchronized on a barrier between rounds so every round
/// actually contends (instead of drifting apart into cache hits).
fn run_coalesced_phase(addr: SocketAddr, rounds: usize) -> std::time::Duration {
    let ready = Arc::new(Barrier::new(CLIENTS + 1));
    let gate = Arc::new(Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let ready = Arc::clone(&ready);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                ready.wait();
                for round in 0..rounds {
                    gate.wait(); // everyone fires the same φ at once
                    client
                        .quantile("plan", coalesced_phi(round))
                        .expect("quantile request");
                }
                client.quit().expect("client quit");
            })
        })
        .collect();
    let ((), elapsed) = timed(move || {
        ready.wait();
        for t in threads {
            t.join().expect("client thread");
        }
    });
    elapsed
}
