//! Experiment E-SERVER: closed-loop load generation against `qjoin-server`,
//! measuring how serving throughput scales with the worker-thread count.
//!
//! For each (worker count, mode) pair a **fresh server** is bound to an
//! ephemeral port (`127.0.0.1:0`) with a fresh engine — one server per phase so
//! each phase's latency histograms describe that phase only, not whatever ran
//! before it — the social-network workload is registered over the wire, and 8
//! closed-loop TCP clients (connect → request → wait for the reply → next
//! request) hammer it:
//!
//! * **cold-solve** — every request carries a globally unique φ, so every request
//!   misses the result cache and runs the full §3 divide-and-conquer solve. This is
//!   the CPU-bound path: throughput should scale with workers up to the host's
//!   available parallelism.
//! * **cold-coalesced** — all 8 clients request the *same* fresh φ each round
//!   (barrier-synchronized), so the engine's in-flight gate merges them into one
//!   shared batched solve. The row also records the `qjoin_coalesced_batches_total`
//!   / `qjoin_coalesced_waiters_total` counters observed over the phase.
//! * **warm-cache** — requests cycle through a small primed φ set, so every request
//!   is a sharded-LRU cache hit. This is the lock/syscall-bound path that measures
//!   serving overhead.
//!
//! Alongside throughput, every row records the server-side **p50/p99 execute
//! latency**, scraped from the `stats json` verb's `qjoin_execute_seconds`
//! histogram at the end of the phase (no client-side timestamping: the numbers
//! come from the same telemetry surface operators scrape in production).
//!
//! A final **tracing-overhead** section reruns the warm-cache phase twice at a
//! fixed worker count — flight recorder on (`tracecap=64`, the default, so
//! every request records its span trace) vs off (`tracecap=0`) — to price the
//! per-request span tracing on the overhead-dominated path. Budget: ≤ 3%.
//!
//! `QJOIN_BENCH_SMOKE=1` (as CI sets) shrinks the request counts to a 1-sample
//! smoke run. The final block prints machine-readable JSON rows; the curve recorded
//! in `BENCH_server.json` at the workspace root comes from this binary.

use qjoin_bench::{fmt_ms, timed};
use qjoin_engine::cli::CliSession;
use qjoin_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

/// Closed-loop client threads (fixed across worker counts, so the offered
/// concurrency is identical and only the server's parallelism varies).
const CLIENTS: usize = 8;

/// Worker counts swept for the scaling curve.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The φ set primed and re-requested in warm-cache mode.
const WARM_PHIS: usize = 16;

/// The flight recorder's default capacity (mirrors `EngineConfig::default`):
/// the "tracing on" arm of the overhead comparison, and what every other phase
/// runs with — the sweep prices the default configuration, not a stripped one.
const DEFAULT_TRACECAP: usize = 64;

/// Worker count for the tracing-overhead comparison (fixed so the two arms
/// differ only in the recorder capacity).
const OVERHEAD_WORKERS: usize = 2;

/// One measured phase: throughput plus the server-side latency scrape.
struct Row {
    workers: usize,
    mode: &'static str,
    requests: usize,
    elapsed_ms: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    coalesced: Option<(u64, u64)>,
}

fn main() {
    let smoke = std::env::var("QJOIN_BENCH_SMOKE").is_ok();
    // Per-client request counts. Cold requests each run a full solve (~ms), warm
    // requests are cache hits (~µs), so warm gets more samples.
    let (cold_per_client, warm_per_client) = if smoke { (6, 40) } else { (40, 2_000) };
    let coalesced_rounds = if smoke { 4 } else { 25 };
    let rows = if smoke { 60 } else { 120 };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# E-SERVER: closed-loop thread scaling over qjoin-server");
    println!("# social workload rows={rows}, {CLIENTS} closed-loop TCP clients");
    println!("# fresh server per (workers, mode); latency = server-side qjoin_execute_seconds");
    println!(
        "# host available_parallelism={parallelism}{}",
        if smoke { ", SMOKE MODE" } else { "" }
    );
    println!();
    println!("| workers | mode | requests | elapsed ms | req/s | p50 ms | p99 ms | speedup vs 1 |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut rows_out: Vec<Row> = Vec::new();
    let mut baselines: Vec<(&str, f64)> = Vec::new(); // (mode, rps) at workers=1
    for &workers in &WORKERS {
        // Cold-solve: every request is a unique φ — a guaranteed cache miss.
        let cold = {
            let (addr, join) = start_server(workers, rows);
            let requests = CLIENTS * cold_per_client;
            let elapsed = run_phase(addr, cold_per_client, move |t, i| {
                unique_phi(t * cold_per_client + i)
            });
            let json = fetch_stats_json(addr);
            stop_server(addr, join);
            phase_row(workers, "cold-solve", requests, elapsed, &json, None)
        };

        // Cold-coalesced: every round all clients race for the same fresh φ, so
        // the in-flight gate should fold most rounds into one shared solve. The
        // server is fresh, so the end-of-phase counters are the phase's own.
        let coalesced = {
            let (addr, join) = start_server(workers, rows);
            let requests = CLIENTS * coalesced_rounds;
            let elapsed = run_coalesced_phase(addr, coalesced_rounds);
            let json = fetch_stats_json(addr);
            stop_server(addr, join);
            let counters = (
                json_u64(&json, "qjoin_coalesced_batches_total"),
                json_u64(&json, "qjoin_coalesced_waiters_total"),
            );
            phase_row(
                workers,
                "cold-coalesced",
                requests,
                elapsed,
                &json,
                Some(counters),
            )
        };

        // Warm-cache: prime a φ set once, then hammer it.
        let warm = {
            let (addr, join) = start_server(workers, rows);
            {
                let mut primer = Client::connect(addr).expect("primer connect");
                let phis: Vec<f64> = (0..WARM_PHIS).map(warm_phi).collect();
                primer.batch("plan", &phis).expect("prime the cache");
                primer.quit().expect("primer quit");
            }
            let requests = CLIENTS * warm_per_client;
            let elapsed = run_phase(addr, warm_per_client, |t, i| warm_phi(t + i));
            let json = fetch_stats_json(addr);
            stop_server(addr, join);
            phase_row(workers, "warm-cache", requests, elapsed, &json, None)
        };

        for row in [cold, coalesced, warm] {
            let speedup = baselines
                .iter()
                .find(|(m, _)| *m == row.mode)
                .map(|(_, base)| row.rps / base)
                .unwrap_or(1.0);
            if workers == 1 {
                baselines.push((row.mode, row.rps));
            }
            let extra = row
                .coalesced
                .map(|(b, w)| format!(" (batches={b} waiters={w})"))
                .unwrap_or_default();
            println!(
                "| {} | {} | {} | {} | {:.0} | {:.3} | {:.3} | {speedup:.2}x{extra} |",
                row.workers,
                row.mode,
                row.requests,
                fmt_ms(std::time::Duration::from_secs_f64(row.elapsed_ms / 1e3)),
                row.rps,
                row.p50_ms,
                row.p99_ms,
            );
            rows_out.push(row);
        }
    }

    // Tracing overhead: the warm-cache phase (per-request cost dominated by
    // serving overhead, so span recording shows up loudest) with the flight
    // recorder at its default capacity vs disabled.
    println!();
    println!(
        "# tracing overhead: warm-cache at {OVERHEAD_WORKERS} workers, \
         recorder tracecap={DEFAULT_TRACECAP} (on) vs tracecap=0 (off)"
    );
    println!("| workers | mode | requests | elapsed ms | req/s | p50 ms | p99 ms |");
    println!("|---|---|---|---|---|---|---|");
    // Scheduler noise on a shared host easily exceeds the effect being priced,
    // so the two arms are interleaved over several repeats and each arm keeps
    // its best (least-interfered) run.
    let overhead_repeats = if smoke { 1 } else { 3 };
    let mut best: Vec<Option<Row>> = vec![None, None];
    for _ in 0..overhead_repeats {
        for (arm, (mode, tracecap)) in [
            ("warm-trace-on", DEFAULT_TRACECAP),
            ("warm-trace-off", 0usize),
        ]
        .into_iter()
        .enumerate()
        {
            let (addr, join) = start_server_with_tracecap(OVERHEAD_WORKERS, rows, tracecap);
            {
                let mut primer = Client::connect(addr).expect("primer connect");
                let phis: Vec<f64> = (0..WARM_PHIS).map(warm_phi).collect();
                primer.batch("plan", &phis).expect("prime the cache");
                primer.quit().expect("primer quit");
            }
            let requests = CLIENTS * warm_per_client;
            let elapsed = run_phase(addr, warm_per_client, |t, i| warm_phi(t + i));
            let json = fetch_stats_json(addr);
            stop_server(addr, join);
            let row = phase_row(OVERHEAD_WORKERS, mode, requests, elapsed, &json, None);
            if best[arm].as_ref().map(|b| row.rps > b.rps).unwrap_or(true) {
                best[arm] = Some(row);
            }
        }
    }
    let mut overhead_rps: Vec<f64> = Vec::new();
    for row in best.into_iter().flatten() {
        println!(
            "| {} | {} | {} | {} | {:.0} | {:.3} | {:.3} |",
            row.workers,
            row.mode,
            row.requests,
            fmt_ms(std::time::Duration::from_secs_f64(row.elapsed_ms / 1e3)),
            row.rps,
            row.p50_ms,
            row.p99_ms,
        );
        overhead_rps.push(row.rps);
        rows_out.push(row);
    }
    let (on, off) = (overhead_rps[0], overhead_rps[1]);
    println!(
        "# warm-path tracing overhead: {:+.2}% throughput vs recorder off \
         (best of {overhead_repeats} interleaved repeats per arm; budget: <= 3%)",
        (off - on) / off * 100.0
    );

    println!();
    println!("# JSON rows (for BENCH_server.json):");
    println!("[");
    for (i, row) in rows_out.iter().enumerate() {
        let comma = if i + 1 == rows_out.len() { "" } else { "," };
        let extra = row
            .coalesced
            .map(|(b, w)| format!(", \"coalesced_batches\": {b}, \"coalesced_waiters\": {w}"))
            .unwrap_or_default();
        println!(
            "  {{\"workers\": {}, \"mode\": \"{}\", \"requests\": {}, \
             \"elapsed_ms\": {:.2}, \"throughput_rps\": {:.1}, \
             \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}{extra}}}{comma}",
            row.workers, row.mode, row.requests, row.elapsed_ms, row.rps, row.p50_ms, row.p99_ms
        );
    }
    println!("]");
}

/// Assembles one result row from a phase's wall-clock and its `stats json` dump.
fn phase_row(
    workers: usize,
    mode: &'static str,
    requests: usize,
    elapsed: std::time::Duration,
    json: &str,
    coalesced: Option<(u64, u64)>,
) -> Row {
    Row {
        workers,
        mode,
        requests,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        rps: requests as f64 / elapsed.as_secs_f64(),
        p50_ms: histogram_field_ms(json, "qjoin_execute_seconds", "p50_seconds"),
        p99_ms: histogram_field_ms(json, "qjoin_execute_seconds", "p99_seconds"),
        coalesced,
    }
}

/// A φ unique per request index: low-discrepancy golden-ratio steps never repeat
/// within any realistic request count, so every cold request is a fresh cache key.
fn unique_phi(index: usize) -> f64 {
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    let phi = (0.123_456_789 + index as f64 * GOLDEN).fract();
    // Keep strictly inside (0, 1) so φ parsing and rank snapping stay happy.
    phi.clamp(1e-9, 1.0 - 1e-9)
}

/// One of the `WARM_PHIS` primed fractions.
fn warm_phi(index: usize) -> f64 {
    (index % WARM_PHIS + 1) as f64 / (WARM_PHIS + 1) as f64
}

/// A fresh φ per coalesced round, offset far past the cold-solve indices so the
/// two phases never share a cache key.
fn coalesced_phi(round: usize) -> f64 {
    unique_phi(1_000_000 + round)
}

/// Scrapes the one-line `stats json` dump over the wire.
fn fetch_stats_json(addr: SocketAddr) -> String {
    let mut client = Client::connect(addr).expect("stats connect");
    let payload = client.send("stats json").expect("stats json");
    client.quit().expect("stats quit");
    assert_eq!(payload.len(), 1, "stats json must be one payload line");
    payload.into_iter().next().unwrap()
}

/// Extracts an integer counter (`"key":N`) from the one-line JSON dump.
fn json_u64(json: &str, key: &str) -> u64 {
    json_number(json, &format!("\"{key}\":")) as u64
}

/// Extracts `field` (in seconds) from `series`'s histogram object in the
/// one-line JSON dump, converted to milliseconds; 0 when the series is absent
/// (e.g. no request ever recorded into it).
fn histogram_field_ms(json: &str, series: &str, field: &str) -> f64 {
    let Some(start) = json.find(&format!("\"{series}\":{{")) else {
        return 0.0;
    };
    json_number(&json[start..], &format!("\"{field}\":")) * 1e3
}

/// Parses the number that follows the first occurrence of `prefix`.
fn json_number(json: &str, prefix: &str) -> f64 {
    let start = json
        .find(prefix)
        .unwrap_or_else(|| panic!("{prefix} not found in stats json"))
        + prefix.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && c != 'e' && c != '+' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("bad number after {prefix}: {:?}", &rest[..end]))
}

/// Boots a server with `workers` worker threads and a registered social plan;
/// returns its (ephemeral) address and the run-thread handle.
fn start_server(
    workers: usize,
    rows: usize,
) -> (
    SocketAddr,
    std::thread::JoinHandle<qjoin_server::ServerSummary>,
) {
    start_server_with_tracecap(workers, rows, DEFAULT_TRACECAP)
}

/// [`start_server`] with an explicit flight-recorder capacity (the
/// tracing-overhead phases pit `DEFAULT_TRACECAP` against 0).
fn start_server_with_tracecap(
    workers: usize,
    rows: usize,
    tracecap: usize,
) -> (
    SocketAddr,
    std::thread::JoinHandle<qjoin_server::ServerSummary>,
) {
    let engine = Arc::new(qjoin_engine::Engine::with_config(
        qjoin_engine::EngineConfig {
            flight_recorder_capacity: tracecap,
            ..Default::default()
        },
    ));
    let config = ServerConfig {
        workers,
        queue_depth: CLIENTS * 2,
        ..Default::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(CliSession::with_engine(engine)),
        config,
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let join = std::thread::spawn(move || server.run().expect("server run"));

    let mut setup = Client::connect(addr).expect("setup connect");
    setup
        .send(&format!("open s social rows={rows} seed=7"))
        .expect("open workload");
    setup.send("register plan s").expect("register plan");
    setup.quit().expect("setup quit");
    (addr, join)
}

/// Shuts a phase's server down and joins its run thread.
fn stop_server(addr: SocketAddr, join: std::thread::JoinHandle<qjoin_server::ServerSummary>) {
    let stopper = Client::connect(addr).expect("stopper connect");
    stopper.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

/// Runs one closed-loop phase: `CLIENTS` threads, each connected once, each
/// issuing `per_client` quantile requests back-to-back (`phi_of(thread, i)` picks
/// the fraction). Returns the wall-clock time from the post-connect barrier to the
/// last reply.
fn run_phase(
    addr: SocketAddr,
    per_client: usize,
    phi_of: impl Fn(usize, usize) -> f64 + Copy + Send + 'static,
) -> std::time::Duration {
    let ready = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                ready.wait(); // start the clock only once everyone is connected
                for i in 0..per_client {
                    let phi = phi_of(t, i);
                    client.quantile("plan", phi).expect("quantile request");
                }
                client.quit().expect("client quit");
            })
        })
        .collect();
    let ((), elapsed) = timed(move || {
        ready.wait();
        for t in threads {
            t.join().expect("client thread");
        }
    });
    elapsed
}

/// Runs the cold-coalesced phase: `CLIENTS` threads, all racing for the *same*
/// fresh φ each round, re-synchronized on a barrier between rounds so every round
/// actually contends (instead of drifting apart into cache hits).
fn run_coalesced_phase(addr: SocketAddr, rounds: usize) -> std::time::Duration {
    let ready = Arc::new(Barrier::new(CLIENTS + 1));
    let gate = Arc::new(Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let ready = Arc::clone(&ready);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                ready.wait();
                for round in 0..rounds {
                    gate.wait(); // everyone fires the same φ at once
                    client
                        .quantile("plan", coalesced_phi(round))
                        .expect("quantile request");
                }
                client.quit().expect("client quit");
            })
        })
        .collect();
    let ((), elapsed) = timed(move || {
        ready.wait();
        for t in threads {
            t.join().expect("client thread");
        }
    });
    elapsed
}
