//! # qjoin-bench
//!
//! The experiment harness reproducing the paper's claims (see `EXPERIMENTS.md` at the
//! workspace root for the experiment index). Criterion benches live in `benches/`;
//! table-printing experiment binaries live in `src/bin/` and regenerate the rows
//! recorded in `EXPERIMENTS.md`.
//!
//! The helpers here are shared between the two: wall-clock measurement, rank-error
//! measurement against the brute-force ground truth, and the standard workload
//! configurations used across experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qjoin_core::quantile::rank_of_weight;
use qjoin_core::QuantileResult;
use qjoin_query::Instance;
use qjoin_ranking::Ranking;
use qjoin_workload::path::PathConfig;
use qjoin_workload::social::SocialConfig;
use std::time::{Duration, Instant};

/// Runs a closure once and returns its result together with the elapsed wall-clock
/// time. The experiment binaries report single-shot times (Criterion handles the
/// statistically careful measurements).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// The absolute rank error of a quantile result: the distance (in positions) between
/// the targeted index and the closest rank at which the returned weight occurs.
/// Exact algorithms must report 0.
pub fn rank_error(instance: &Instance, ranking: &Ranking, result: &QuantileResult) -> u128 {
    let (below, equal) =
        rank_of_weight(instance, ranking, &result.weight).expect("instance was evaluated before");
    let lo = below;
    let hi = below + equal.max(1) - 1;
    if result.target_index < lo {
        lo - result.target_index
    } else {
        result.target_index.saturating_sub(hi)
    }
}

/// The relative rank error (absolute error divided by the number of answers).
pub fn relative_rank_error(instance: &Instance, ranking: &Ranking, result: &QuantileResult) -> f64 {
    rank_error(instance, ranking, result) as f64 / result.total_answers.max(1) as f64
}

/// The standard 3-path workload used by the scaling experiments (E-T53, E-T56a,
/// E-LEX, E-T62): `tuples` tuples per relation, join fan-out ≈ 10.
pub fn scaling_path_config(tuples: usize, seed: u64) -> PathConfig {
    PathConfig {
        atoms: 3,
        tuples_per_relation: tuples,
        join_domain: (tuples / 10).max(2),
        weight_range: 1_000_000,
        skew: 0.2,
        seed,
    }
}

/// The standard binary-join workload (tractable full SUM), same knobs as
/// [`scaling_path_config`].
pub fn scaling_binary_config(tuples: usize, seed: u64) -> PathConfig {
    PathConfig {
        atoms: 2,
        ..scaling_path_config(tuples, seed)
    }
}

/// The standard social-network workload of experiment E-INTRO.
pub fn scaling_social_config(rows: usize, seed: u64) -> SocialConfig {
    SocialConfig {
        rows_per_relation: rows,
        users: rows.max(1),
        events: (rows / 10).max(1),
        max_likes: 1_000,
        event_skew: 0.9,
        seed,
    }
}

/// Formats a duration in milliseconds with two decimals, for the experiment tables.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_core::solver::exact_quantile;

    #[test]
    fn rank_error_is_zero_for_exact_results() {
        let instance = scaling_binary_config(100, 3).generate();
        let ranking = Ranking::sum(instance.query().variables());
        let result = exact_quantile(&instance, &ranking, 0.5).unwrap();
        assert_eq!(rank_error(&instance, &ranking, &result), 0);
        assert_eq!(relative_rank_error(&instance, &ranking, &result), 0.0);
    }

    #[test]
    fn timed_reports_elapsed_time() {
        let (value, elapsed) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn standard_configs_have_the_requested_size() {
        assert_eq!(scaling_path_config(500, 0).database_size(), 1500);
        assert_eq!(scaling_binary_config(500, 0).database_size(), 1000);
        assert_eq!(scaling_social_config(500, 0).database_size(), 1500);
    }

    #[test]
    fn fmt_ms_renders_two_decimals() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.50");
    }
}
