//! Bench E-INTRO: the paper's motivating example — the 0.1-quantile of `l2 + l3` over
//! `Admin ⋈ Share ⋈ Attend` — pivoting vs materialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_social_config;
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::solver::exact_quantile;
use std::hint::black_box;

fn bench_social(c: &mut Criterion) {
    let mut group = c.benchmark_group("social_network");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // The skewed social join fans out by three orders of magnitude, so the baseline
    // leg is only feasible at small row counts; that is exactly the asymmetry the
    // benchmark demonstrates.
    for rows in [100usize, 200, 400] {
        let config = scaling_social_config(rows, 2023);
        let instance = config.generate();
        let ranking = config.likes_ranking();
        group.bench_with_input(BenchmarkId::new("pivoting_p10", rows), &rows, |b, _| {
            b.iter(|| black_box(exact_quantile(&instance, &ranking, 0.1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("baseline_p10", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    quantile_by_materialization(
                        &instance,
                        &ranking,
                        0.1,
                        BaselineStrategy::Selection,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_social);
criterion_main!(benches);
