//! Substrate micro-benchmarks: the building blocks every quantile algorithm relies on
//! — answer counting (Example 2.1), direct-access construction (Section 3.1), semijoin
//! reduction + context construction, and exact trimming of a single inequality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_path_config;
use qjoin_core::trim::{AdjacentSumTrimmer, MinMaxTrimmer, Trimmer};
use qjoin_exec::count::count_answers;
use qjoin_exec::{DirectAccess, JoinTreeContext};
use qjoin_query::variable::vars;
use qjoin_ranking::{RankPredicate, Ranking, Weight};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for tuples in [1_000usize, 4_000] {
        let instance = scaling_path_config(tuples, 3).generate();
        group.bench_with_input(
            BenchmarkId::new("count_answers", tuples),
            &tuples,
            |b, _| b.iter(|| black_box(count_answers(&instance).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("context_build", tuples),
            &tuples,
            |b, _| b.iter(|| black_box(JoinTreeContext::build(&instance).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("direct_access_build", tuples),
            &tuples,
            |b, _| b.iter(|| black_box(DirectAccess::new(&instance).unwrap())),
        );
        let max_ranking = Ranking::max(instance.query().variables());
        group.bench_with_input(BenchmarkId::new("trim_max_gt", tuples), &tuples, |b, _| {
            b.iter(|| {
                black_box(
                    MinMaxTrimmer
                        .trim(
                            &instance,
                            &max_ranking,
                            &RankPredicate::greater_than(Weight::num(500_000.0)),
                        )
                        .unwrap(),
                )
            })
        });
        let partial_sum = Ranking::sum(vars(&["x1", "x2", "x3"]));
        group.bench_with_input(
            BenchmarkId::new("trim_adjacent_sum_lt", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    black_box(
                        AdjacentSumTrimmer
                            .trim(
                                &instance,
                                &partial_sum,
                                &RankPredicate::less_than(Weight::num(1_000_000.0)),
                            )
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
