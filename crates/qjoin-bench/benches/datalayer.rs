//! Bench E-DATALAYER: what data copying costs in the trim layer and the engine.
//!
//! The §3 recursion trims the database O(log n) times per solve; every trim used to
//! deep-copy relations the rank predicate never touches, and every plan registration
//! used to deep-copy the whole catalog database into the plan's instance. With the
//! copy-on-write data layer those copies are `Arc` pointer bumps, so:
//!
//! * `sum_solve` / `lex_solve` — trim-heavy exact solves whose per-iteration cost
//!   used to be dominated by cloning untouched relations;
//! * `register` — compiling `PLANS` prepared plans against one catalog database
//!   (tuple storage must be allocated exactly once);
//! * `replace` — swapping a database under `PLANS` dependent plans, which recompiles
//!   all of them against the replacement.
//!
//! `BENCH_datalayer.json` at the workspace root records before/after medians.
//! Set `QJOIN_BENCH_SMOKE=1` (as CI does) for a 1-sample run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::{scaling_path_config, scaling_social_config};
use qjoin_core::solver::exact_quantile;
use qjoin_data::Database;
use qjoin_engine::Engine;
use qjoin_query::query::social_network_query;
use qjoin_query::variable::vars;
use qjoin_ranking::Ranking;
use std::hint::black_box;

/// Number of prepared plans registered against the shared catalog database.
const PLANS: usize = 8;

/// A diverse plan mix over the social-network query: every ranking kind, so the
/// registration and replacement paths exercise every strategy's compile step.
fn plan_rankings() -> Vec<(String, Ranking)> {
    let all = social_network_query().variables();
    (0..PLANS)
        .map(|i| {
            let ranking = match i % 4 {
                0 => Ranking::sum(vars(&["l2", "l3"])),
                1 => Ranking::max(all.clone()),
                2 => Ranking::min(vars(&["l2"])),
                _ => Ranking::lex(vars(&["l3", "l2"])),
            };
            (format!("plan{i}"), ranking)
        })
        .collect()
}

/// An engine with one social database and the full plan mix registered.
fn engine_with_plans(database: Database) -> Engine {
    let engine = Engine::new();
    engine.create_database("social", database).unwrap();
    for (name, ranking) in plan_rankings() {
        engine
            .register(&name, "social", social_network_query(), ranking)
            .unwrap();
    }
    engine
}

fn bench_datalayer(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalayer");
    let smoke = std::env::var_os("QJOIN_BENCH_SMOKE").is_some();
    if smoke {
        group.sample_size(1);
        group.measurement_time(std::time::Duration::from_millis(50));
        group.warm_up_time(std::time::Duration::from_millis(10));
    } else {
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(300));
    }

    // Trim-heavy exact solves: SUM (adjacent pair) on the social-network join, LEX
    // on the 3-path join. Both recurse through O(log n) trimming rounds.
    let social_rows = if smoke { 60 } else { 300 };
    let social = scaling_social_config(social_rows, 2023);
    let social_instance = social.generate();
    let sum_ranking = social.likes_ranking();
    group.bench_with_input(
        BenchmarkId::new("sum_solve", social_rows),
        &social_rows,
        |b, _| b.iter(|| black_box(exact_quantile(&social_instance, &sum_ranking, 0.5).unwrap())),
    );

    let path_rows = if smoke { 100 } else { 1_000 };
    let path_instance = scaling_path_config(path_rows, 19).generate();
    let lex_ranking = Ranking::lex(vars(&["x2", "x4"]));
    group.bench_with_input(
        BenchmarkId::new("lex_solve", path_rows),
        &path_rows,
        |b, _| b.iter(|| black_box(exact_quantile(&path_instance, &lex_ranking, 0.75).unwrap())),
    );

    // Snapshot cost: cloning the whole database — the copy every trim round paid per
    // untouched relation, and every plan registration paid for the full catalog.
    let (_, database) = social.generate().into_parts();
    group.bench_with_input(
        BenchmarkId::new("db_clone", social_rows),
        &social_rows,
        |b, _| b.iter(|| black_box(database.clone())),
    );
    group.bench_with_input(BenchmarkId::new("register", PLANS), &PLANS, |b, _| {
        b.iter(|| black_box(engine_with_plans(database.clone())))
    });

    // Replacement: swap the database under PLANS dependent plans (recompiles all).
    let engine = engine_with_plans(database);
    let (_, replacement) = scaling_social_config(social_rows, 77)
        .generate()
        .into_parts();
    group.bench_with_input(BenchmarkId::new("replace", PLANS), &PLANS, |b, _| {
        b.iter(|| {
            engine
                .replace_database("social", replacement.clone())
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_datalayer);
criterion_main!(benches);
