//! Bench E-T53: MIN/MAX quantiles (Theorem 5.3) — pivoting vs materialization as the
//! database grows. The pivoting series should scale quasilinearly with the database,
//! the baseline with the (much larger) join output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_path_config;
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::solver::exact_quantile;
use qjoin_query::variable::vars;
use qjoin_ranking::Ranking;
use std::hint::black_box;

fn bench_minmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("minmax_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for tuples in [500usize, 1_000, 2_000] {
        let instance = scaling_path_config(tuples, 7).generate();
        let max_all = Ranking::max(instance.query().variables());
        let min_ends = Ranking::min(vars(&["x1", "x4"]));

        group.bench_with_input(
            BenchmarkId::new("pivoting_max_median", tuples),
            &tuples,
            |b, _| b.iter(|| black_box(exact_quantile(&instance, &max_all, 0.5).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("pivoting_min_p10", tuples),
            &tuples,
            |b, _| b.iter(|| black_box(exact_quantile(&instance, &min_ends, 0.1).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_max_median", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    black_box(
                        quantile_by_materialization(
                            &instance,
                            &max_all,
                            0.5,
                            BaselineStrategy::Selection,
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_minmax);
criterion_main!(benches);
