//! Bench E-PIVOT: pivot selection (Lemma 4.1) must cost linear time in the database,
//! independent of the number of join answers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_path_config;
use qjoin_core::pivot::select_pivot;
use qjoin_ranking::Ranking;
use std::hint::black_box;

fn bench_pivot(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_selection");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for tuples in [1_000usize, 2_000, 4_000, 8_000] {
        let instance = scaling_path_config(tuples, 5).generate();
        let sum = Ranking::sum(instance.query().variables());
        let max = Ranking::max(instance.query().variables());
        group.bench_with_input(BenchmarkId::new("full_sum", tuples), &tuples, |b, _| {
            b.iter(|| black_box(select_pivot(&instance, &sum).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("max", tuples), &tuples, |b, _| {
            b.iter(|| black_box(select_pivot(&instance, &max).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pivot);
criterion_main!(benches);
