//! Bench E-T56a: partial SUM quantiles on the tractable side of Theorem 5.6
//! (`SUM(x1, x2, x3)` on the 3-path), pivoting with the adjacent-node trimming vs the
//! materialization baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_path_config;
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::solver::exact_quantile;
use qjoin_query::variable::vars;
use qjoin_ranking::Ranking;
use std::hint::black_box;

fn bench_partial_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_sum_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for tuples in [500usize, 1_000, 2_000] {
        let instance = scaling_path_config(tuples, 11).generate();
        let ranking = Ranking::sum(vars(&["x1", "x2", "x3"]));
        group.bench_with_input(
            BenchmarkId::new("pivoting_median", tuples),
            &tuples,
            |b, _| b.iter(|| black_box(exact_quantile(&instance, &ranking, 0.5).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_median", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    black_box(
                        quantile_by_materialization(
                            &instance,
                            &ranking,
                            0.5,
                            BaselineStrategy::Selection,
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partial_sum);
criterion_main!(benches);
