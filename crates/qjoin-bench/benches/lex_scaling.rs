//! Bench E-LEX: lexicographic-order quantiles (Section 5.2) — pivoting vs the
//! materialization baseline on the 3-path join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_path_config;
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::solver::exact_quantile;
use qjoin_query::variable::vars;
use qjoin_ranking::Ranking;
use std::hint::black_box;

fn bench_lex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lex_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for tuples in [500usize, 1_000, 2_000] {
        let instance = scaling_path_config(tuples, 19).generate();
        let ranking = Ranking::lex(vars(&["x2", "x4"]));
        group.bench_with_input(BenchmarkId::new("pivoting_p75", tuples), &tuples, |b, _| {
            b.iter(|| black_box(exact_quantile(&instance, &ranking, 0.75).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("baseline_p75", tuples), &tuples, |b, _| {
            b.iter(|| {
                black_box(
                    quantile_by_materialization(
                        &instance,
                        &ranking,
                        0.75,
                        BaselineStrategy::Selection,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lex);
criterion_main!(benches);
