//! Bench E-ENGINE: batched multi-φ solving vs `k` repeated single-φ solves on the
//! social-network workload, plus the engine's warm-cache serving path.
//!
//! The batched solver shares the expensive near-root trims and the up-front counting
//! pass across all k targets, so `batched/k` should beat `repeated/k` for every
//! `k > 1` and degrade far more slowly as k grows. `engine_cached/16` shows the
//! steady-state serving cost once the LRU result cache is hot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_social_config;
use qjoin_core::solver::{exact_quantile, exact_quantile_batch};
use qjoin_engine::Engine;
use qjoin_query::query::social_network_query;
use std::hint::black_box;

/// k evenly spaced fractions in (0, 1), sorted.
fn phi_targets(k: usize) -> Vec<f64> {
    (1..=k).map(|i| i as f64 / (k + 1) as f64).collect()
}

fn bench_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let rows = 300usize;
    let config = scaling_social_config(rows, 2023);
    let instance = config.generate();
    let ranking = config.likes_ranking();

    for k in [1usize, 4, 16, 64] {
        let phis = phi_targets(k);
        group.bench_with_input(BenchmarkId::new("batched", k), &k, |b, _| {
            b.iter(|| black_box(exact_quantile_batch(&instance, &ranking, &phis).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("repeated", k), &k, |b, _| {
            b.iter(|| {
                for &phi in &phis {
                    black_box(exact_quantile(&instance, &ranking, phi).unwrap());
                }
            })
        });
    }

    // Steady-state serving: every φ answered from the engine's LRU result cache.
    let (_, database) = config.generate().into_parts();
    let engine = Engine::new();
    engine.create_database("social", database).unwrap();
    engine
        .register("likes", "social", social_network_query(), ranking.clone())
        .unwrap();
    let phis = phi_targets(16);
    engine.quantile_batch("likes", &phis).unwrap();
    group.bench_with_input(BenchmarkId::new("engine_cached", 16), &16, |b, _| {
        b.iter(|| black_box(engine.quantile_batch("likes", &phis).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_engine_batch);
criterion_main!(benches);
