//! Bench E-T62 / E-RAND: deterministic ε-approximation (lossy trimmings) and the
//! randomized sampling approximation for full SUM on the 3-path join, which is
//! intractable exactly. The deterministic series should grow as ε shrinks (roughly
//! quadratically in 1/ε), with the materialization baseline as the reference point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qjoin_bench::scaling_path_config;
use qjoin_core::baseline::{quantile_by_materialization, BaselineStrategy};
use qjoin_core::sampling::{quantile_by_sampling, SamplingOptions};
use qjoin_core::solver::{approximate_sum_quantile, ErrorBudget};
use qjoin_ranking::Ranking;
use std::hint::black_box;

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_sum");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let instance = scaling_path_config(500, 13).generate();
    let ranking = Ranking::sum(instance.query().variables());

    for epsilon in [0.25f64, 0.1, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("deterministic", format!("eps_{epsilon}")),
            &epsilon,
            |b, &eps| {
                b.iter(|| {
                    black_box(
                        approximate_sum_quantile(
                            &instance,
                            &ranking,
                            0.5,
                            eps,
                            ErrorBudget::Direct,
                        )
                        .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sampling", format!("eps_{epsilon}")),
            &epsilon,
            |b, &eps| {
                let options = SamplingOptions {
                    epsilon: eps,
                    delta: 0.05,
                    seed: 99,
                };
                b.iter(|| {
                    black_box(quantile_by_sampling(&instance, &ranking, 0.5, &options).unwrap())
                })
            },
        );
    }
    group.bench_function("baseline_exact", |b| {
        b.iter(|| {
            black_box(
                quantile_by_materialization(&instance, &ranking, 0.5, BaselineStrategy::Selection)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
