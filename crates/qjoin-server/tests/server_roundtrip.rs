//! End-to-end tests over real TCP connections: scripted sessions, concurrent
//! clients sharing one engine, error replies, and graceful shutdown.
//!
//! Every server binds `127.0.0.1:0` (an OS-assigned ephemeral port), so parallel
//! test runs and CI jobs can never collide on a port.

use qjoin_engine::cli::CliSession;
use qjoin_server::{
    Client, ClientError, Response, Server, ServerConfig, ServerHandle, ServerSummary,
    MAX_LINE_BYTES,
};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn start_server(workers: usize) -> (SocketAddr, ServerHandle, JoinHandle<ServerSummary>) {
    let config = ServerConfig {
        workers,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

#[test]
fn scripted_session_register_quantile_batch_stats_shutdown() {
    let (addr, _handle, join) = start_server(2);
    let mut client = Client::connect(addr).unwrap();

    client.ping().unwrap();
    let opened = client.send("open s social rows=80 seed=3").unwrap();
    assert_eq!(opened.len(), 1);
    assert!(opened[0].contains("240 tuples"), "{opened:?}");

    let registered = client.send("register likes s").unwrap();
    assert!(registered[0].contains("strategy=sum-adjacent-pair"));

    let answer = client.quantile("likes", 0.5).unwrap();
    assert!(answer.contains("phi=0.5000"), "{answer}");

    // The same φ again must come from the cache.
    let cached = client.quantile("likes", 0.5).unwrap();
    assert!(cached.contains("(cached)"), "{cached}");

    let batch = client.batch("likes", &[0.25, 0.5, 0.75]).unwrap();
    assert_eq!(batch.len(), 4, "3 answers + summary: {batch:?}");
    assert!(batch[3].contains("1 from cache"), "{batch:?}");

    let stats = client.stats().unwrap();
    let stats_text = stats.join("\n");
    assert!(stats_text.contains("plans:              1"), "{stats_text}");
    assert!(stats_text.contains("db s: generation=1"), "{stats_text}");

    client.shutdown().unwrap();
    let summary = join.join().unwrap();
    assert!(summary.requests >= 7, "{summary:?}");
    // The server is gone: a fresh dial must fail (or be refused immediately).
    assert!(
        Client::connect(addr).is_err() || {
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        }
    );
}

#[test]
fn remote_errors_are_reported_not_fatal() {
    let (addr, handle, join) = start_server(1);
    let mut client = Client::connect(addr).unwrap();

    // Unknown command.
    let err = client.send("frobnicate").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("unknown command")));
    // Unknown plan.
    let err = client.send("quantile nope 0.5").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("no plan")));
    // Out-of-range φ.
    let err = client.send("quantile nope 1.5").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("[0, 1]")));
    // The connection survives all of that.
    client.ping().unwrap();
    // Multi-line engine errors (e.g. help-bearing usage errors) arrive flattened.
    let err = client.send("open").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("usage")));

    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_engine_and_agree() {
    let (addr, handle, join) = start_server(4);

    // Set up the catalog once.
    let mut setup = Client::connect(addr).unwrap();
    setup.send("open s social rows=100 seed=7").unwrap();
    setup.send("register likes s").unwrap();
    let expected: Vec<String> = [0.2, 0.5, 0.8]
        .iter()
        .map(|&phi| {
            let line = setup.quantile("likes", phi).unwrap();
            line.replace(" (cached)", "")
        })
        .collect();
    setup.quit().unwrap();

    // Many clients hammer the same plan; every answer must match the serial one.
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    for (i, &phi) in [0.2, 0.5, 0.8].iter().enumerate() {
                        let line = client.quantile("likes", phi).unwrap();
                        let line = line.replace(" (cached)", "");
                        assert_eq!(line, expected[i], "round {round}");
                    }
                }
                client.quit().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // One engine served everybody: stats must show the accumulated requests.
    let mut check = Client::connect(addr).unwrap();
    let stats = check.stats().unwrap().join("\n");
    assert!(
        stats.contains("123 quantiles"),
        "3 setup + 8*5*3 hammered: {stats}"
    );
    check.quit().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn more_connections_than_workers_all_get_served() {
    // 2 workers, 6 sequential-ish clients: queued connections must be served, in
    // whatever order, without losses.
    let (addr, handle, join) = start_server(2);
    let mut setup = Client::connect(addr).unwrap();
    setup.send("open s social rows=60 seed=1").unwrap();
    setup.send("register likes s").unwrap();
    setup.quit().unwrap();

    let threads: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let answer = client.quantile("likes", 0.5).unwrap();
                assert!(answer.contains("phi=0.5000"));
                client.quit().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
    let summary = join.join().unwrap();
    assert!(summary.connections >= 7, "{summary:?}");
}

#[test]
fn shutdown_verb_from_one_client_stops_the_whole_server() {
    let (addr, handle, join) = start_server(2);
    let stopper = Client::connect(addr).unwrap();
    stopper.shutdown().unwrap();
    let summary = join.join().unwrap();
    assert!(handle.is_shutdown());
    assert_eq!(summary.requests, 1);
}

#[test]
fn over_long_lines_get_an_error_reply_before_close() {
    // Regression: a newline-free flood beyond MAX_LINE_BYTES used to close the
    // connection silently; the client must now see `err line too long` first.
    let (addr, handle, join) = start_server(2);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let flood = vec![b'x'; MAX_LINE_BYTES + 64];
    stream.write_all(&flood).unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    match Response::read_from(&mut reader) {
        Ok(Response::Err(message)) => assert_eq!(message, "line too long"),
        other => panic!("expected `err line too long`, got {other:?}"),
    }
    // After the reply the server closes: the next read is EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "nothing may follow the error: {rest:?}");

    handle.shutdown();
    let summary = join.join().unwrap();
    // The rejected flood is not a served request.
    assert_eq!(summary.requests, 0, "{summary:?}");
}

#[test]
fn empty_keepalive_lines_are_answered_but_not_counted() {
    // Regression: ServerSummary.requests used to count empty keep-alive lines
    // (and requests whose reply failed to write). Empty lines still get their
    // `ok 0` reply, but only real commands count.
    let (addr, handle, join) = start_server(2);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| -> Response {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        Response::read_from(&mut reader).unwrap()
    };
    assert_eq!(send(""), Response::Ok(vec![]));
    assert_eq!(send(""), Response::Ok(vec![]));
    assert_eq!(send("ping"), Response::Ok(vec!["pong".into()]));
    assert_eq!(send(""), Response::Ok(vec![]));
    assert_eq!(send("quit"), Response::Ok(vec!["bye".into()]));

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(
        summary.requests, 2,
        "only ping and quit are real requests: {summary:?}"
    );
}

#[test]
fn idle_connections_do_not_pin_workers() {
    // 2 workers, 8 connected-but-idle clients: under the old thread-per-connection
    // model the first two connections pinned both workers forever and a 9th client
    // hung. With the reactor, idle connections are parked buffers and the 9th
    // client is served promptly.
    let (addr, handle, join) = start_server(2);
    let idles: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();

    let mut client = Client::connect(addr).unwrap();
    // A timeout turns a regression into a clean failure instead of a hang.
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client.ping().unwrap();
    client.send("open s social rows=60 seed=2").unwrap();
    client.send("register likes s").unwrap();
    let answer = client.quantile("likes", 0.5).unwrap();
    assert!(answer.contains("phi=0.5000"), "{answer}");
    client.quit().unwrap();

    drop(idles);
    handle.shutdown();
    let summary = join.join().unwrap();
    assert!(summary.connections >= 9, "{summary:?}");
}

/// Extracts `(coalesced_batches, coalesced_waiters)` from a `stats` dump.
fn coalescing_counters(stats: &[String]) -> (u64, u64) {
    let line = stats
        .iter()
        .find(|l| l.contains("coalesced_batches="))
        .unwrap_or_else(|| panic!("no coalescing line in {stats:?}"));
    let grab = |key: &str| -> u64 {
        let rest = line.split(key).nth(1).unwrap();
        rest.split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("bad counter in {line:?}"))
    };
    (grab("coalesced_batches="), grab("coalesced_waiters="))
}

#[test]
fn concurrent_identical_cold_requests_coalesce_over_the_wire() {
    // k=8 clients fire the same cold φ at once: the engine's in-flight gate must
    // merge them into one shared batched solve, observable through the stats
    // verb's coalesced_batches / coalesced_waiters counters. Scheduling can let
    // some request finish before another arrives (a plain cache hit), so retry
    // with a fresh φ until an attempt demonstrably coalesced all eight; answer
    // agreement is asserted on every attempt.
    let k = 8;
    let (addr, handle, join) = start_server(k);
    let mut setup = Client::connect(addr).unwrap();
    // A big-enough database that one cold solve dominates client startup skew.
    setup.send("open s social rows=400 seed=11").unwrap();
    setup.send("register likes s").unwrap();

    let mut coalesced = false;
    for attempt in 0..10 {
        let phi = 0.31 + attempt as f64 * 0.029;
        let (batches_before, waiters_before) = coalescing_counters(&setup.stats().unwrap());

        let barrier = Arc::new(std::sync::Barrier::new(k));
        let threads: Vec<_> = (0..k)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    barrier.wait();
                    let line = client.quantile("likes", phi).unwrap();
                    client.quit().unwrap();
                    line.replace(" (cached)", "")
                })
            })
            .collect();
        let answers: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();

        // Every concurrent answer is identical to the (now cached) serial answer.
        let reference = setup
            .quantile("likes", phi)
            .unwrap()
            .replace(" (cached)", "");
        for answer in &answers {
            assert_eq!(answer, &reference, "attempt {attempt} phi {phi}");
        }

        let (batches_after, waiters_after) = coalescing_counters(&setup.stats().unwrap());
        if batches_after > batches_before && waiters_after - waiters_before >= (k as u64) - 1 {
            coalesced = true;
            break;
        }
    }
    assert!(
        coalesced,
        "10 attempts of 8 concurrent identical cold requests never fully coalesced"
    );

    setup.shutdown().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_batch_requests_fold_into_shared_rounds_over_the_wire() {
    // k clients fire overlapping cold `batch` requests at once: every batch's
    // miss set registers with the in-flight gate together, so the batches fold
    // into shared solve rounds instead of each running its own recursion —
    // observable as coalesced_waiters bumps on the stats verb. As above, retry
    // with fresh φ sets because scheduling can serialize the requests; answer
    // agreement is asserted on every attempt.
    let k = 6;
    let (addr, handle, join) = start_server(k);
    let mut setup = Client::connect(addr).unwrap();
    setup.send("open s social rows=400 seed=23").unwrap();
    setup.send("register likes s").unwrap();

    let mut coalesced = false;
    for attempt in 0..10 {
        let base = 0.11 + attempt as f64 * 0.031;
        // Overlapping but non-identical φ sets per client.
        let phi_sets: Vec<Vec<f64>> = (0..k)
            .map(|i| vec![base, base + 0.2, base + 0.001 * i as f64])
            .collect();
        let (batches_before, waiters_before) = coalescing_counters(&setup.stats().unwrap());

        let barrier = Arc::new(std::sync::Barrier::new(k));
        let threads: Vec<_> = phi_sets
            .iter()
            .map(|phis| {
                let barrier = Arc::clone(&barrier);
                let phis = phis.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    barrier.wait();
                    let lines = client.batch("likes", &phis).unwrap();
                    client.quit().unwrap();
                    lines
                })
            })
            .collect();
        let replies: Vec<Vec<String>> = threads.into_iter().map(|t| t.join().unwrap()).collect();

        // Every client's per-φ answers agree with the (now cached) serial ones.
        for (phis, lines) in phi_sets.iter().zip(&replies) {
            assert_eq!(lines.len(), phis.len() + 1, "answers + summary: {lines:?}");
            for (&phi, line) in phis.iter().zip(lines) {
                let reference = setup
                    .quantile("likes", phi)
                    .unwrap()
                    .replace(" (cached)", "");
                assert_eq!(line.replace(" (cached)", ""), reference, "phi {phi}");
            }
        }

        let (batches_after, waiters_after) = coalescing_counters(&setup.stats().unwrap());
        if batches_after > batches_before && waiters_after > waiters_before {
            coalesced = true;
            break;
        }
    }
    assert!(
        coalesced,
        "10 attempts of concurrent overlapping batch requests never coalesced"
    );

    setup.shutdown().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_and_stats_json_over_the_wire() {
    let (addr, handle, join) = start_server(4);
    let mut client = Client::connect(addr).unwrap();
    client.send("open s social rows=80 seed=3").unwrap();
    client.send("register likes s").unwrap();
    client.quantile("likes", 0.5).unwrap(); // cold: row of solve spans
    client.quantile("likes", 0.5).unwrap(); // warm: cache hit

    // Prometheus exposition: one `series value` per non-comment line.
    let metrics = client.send("metrics").unwrap();
    assert!(metrics.len() > 10, "{metrics:?}");
    for line in metrics.iter().filter(|l| !l.starts_with('#')) {
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
        assert!(!series.is_empty(), "{line}");
        assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "{line}");
    }
    let text = metrics.join("\n");
    // Server lifecycle series: every request so far went through the pipeline.
    assert!(text.contains("qjoin_requests_total 4"), "{text}");
    for name in [
        "qjoin_queue_wait_seconds",
        "qjoin_execute_seconds",
        "qjoin_write_seconds",
    ] {
        let count_line = metrics
            .iter()
            .find(|l| l.starts_with(&format!("{name}_count")))
            .unwrap_or_else(|| panic!("no {name}_count in {text}"));
        let count: u64 = count_line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(count >= 4, "{count_line}");
    }
    // Engine solve spans: exactly one cold solve, per-phase histograms populated.
    assert!(
        text.contains("qjoin_solve_seconds_count{plan=\"likes\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("qjoin_solve_phase_seconds_count{phase=\"prepare\",plan=\"likes\"} 1"),
        "{text}"
    );
    assert!(text.contains("qjoin_cache_hits_total 1"), "{text}");

    // The scrape itself is monotone: a second scrape sees strictly more requests.
    let text2 = client.send("metrics").unwrap().join("\n");
    assert!(text2.contains("qjoin_requests_total 5"), "{text2}");

    // `stats json`: exactly one payload line holding one JSON object.
    let json = client.send("stats json").unwrap();
    assert_eq!(json.len(), 1, "{json:?}");
    let json = &json[0];
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"qjoin_requests_total\":6"), "{json}");
    assert!(
        json.contains("\"qjoin_queue_wait_seconds\":{\"count\":"),
        "{json}"
    );

    client.shutdown().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn slowlog_captures_requests_over_the_threshold() {
    // Threshold zero: every request is a slow request.
    let config = ServerConfig {
        workers: 2,
        slow_threshold: Duration::ZERO,
        slow_log_capacity: 8,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.send("open s social rows=60 seed=3").unwrap();
    let dump = client.send("slowlog").unwrap();
    assert!(dump[0].contains("entries shown"), "{dump:?}");
    let text = dump.join("\n");
    assert!(
        text.contains("cmd=\"open s social rows=60 seed=3\""),
        "{text}"
    );
    assert!(text.contains("queue="), "{text}");
    assert!(text.contains("execute="), "{text}");

    // Default config (100ms threshold): cheap requests never land in the log.
    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
    let (addr, handle, join) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let dump = client.send("slowlog").unwrap();
    assert!(dump[0].starts_with("slowlog: 0 entries shown"), "{dump:?}");
    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn trace_verbs_and_slowlog_links_over_the_wire() {
    // Threshold zero so every request lands in the slow log with its trace id.
    let config = ServerConfig {
        workers: 2,
        slow_threshold: Duration::ZERO,
        slow_log_capacity: 16,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.send("open s social rows=80 seed=3").unwrap();
    client.send("register likes s").unwrap();
    client.quantile("likes", 0.5).unwrap(); // cold: full solve trace

    // The cold request's trace shows the whole lifecycle: server-side
    // queue-wait/execute plus the engine's solve and all four phases.
    let tree = client.send("trace last 1").unwrap().join("\n");
    for name in [
        "request",
        "queue-wait",
        "execute",
        "cache-lookup",
        "solve",
        "prepare",
        "pivot-scan",
        "trim-round",
        "materialize",
    ] {
        assert!(tree.contains(name), "no {name} span in:\n{tree}");
    }
    assert!(tree.contains("cmd=\"quantile likes 0.5\""), "{tree}");

    // The slow-log entry for the quantile links to a retained trace.
    let slowlog = client.send("slowlog").unwrap().join("\n");
    let quantile_line = slowlog
        .lines()
        .find(|l| l.contains("cmd=\"quantile likes 0.5\""))
        .unwrap_or_else(|| panic!("no quantile entry in:\n{slowlog}"));
    let trace_id = quantile_line
        .split("trace=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no trace= field in {quantile_line:?}"));
    assert_ne!(trace_id, "-", "slow quantile must carry a trace id");
    let by_id = client
        .send(&format!("trace id {trace_id}"))
        .unwrap()
        .join("\n");
    assert!(by_id.contains(&format!("trace {trace_id} (")), "{by_id}");
    assert!(by_id.contains("solve"), "{by_id}");

    // Chrome export of the linked trace is a one-line JSON array of complete
    // ("ph":"X") events.
    let chrome = client
        .send(&format!("trace chrome {trace_id}"))
        .unwrap()
        .join("\n");
    assert!(chrome.starts_with('[') && chrome.ends_with(']'), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    assert!(chrome.contains("\"name\":\"trim-round\""), "{chrome}");

    // explain works over the wire and names the §5 dichotomy class.
    let explain = client.send("explain likes 0.5").unwrap().join("\n");
    assert!(
        explain.contains("dichotomy class: sum-adjacent-pair"),
        "{explain}"
    );

    client.shutdown().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn replace_over_the_wire_invalidates_caches() {
    let (addr, handle, join) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    client.send("open s social rows=60 seed=5").unwrap();
    client.send("register likes s").unwrap();
    let before = client.quantile("likes", 0.5).unwrap();
    assert!(client.quantile("likes", 0.5).unwrap().contains("(cached)"));

    client.send("replace s social rows=60 seed=99").unwrap();
    let after = client.quantile("likes", 0.5).unwrap();
    assert!(!after.contains("(cached)"), "{after}");
    assert_ne!(before, after);

    client.shutdown().unwrap();
    handle.shutdown();
    join.join().unwrap();
}
