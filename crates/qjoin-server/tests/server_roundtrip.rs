//! End-to-end tests over real TCP connections: scripted sessions, concurrent
//! clients sharing one engine, error replies, and graceful shutdown.
//!
//! Every server binds `127.0.0.1:0` (an OS-assigned ephemeral port), so parallel
//! test runs and CI jobs can never collide on a port.

use qjoin_engine::cli::CliSession;
use qjoin_server::{Client, ClientError, Server, ServerConfig, ServerHandle, ServerSummary};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

fn start_server(workers: usize) -> (SocketAddr, ServerHandle, JoinHandle<ServerSummary>) {
    let config = ServerConfig {
        workers,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

#[test]
fn scripted_session_register_quantile_batch_stats_shutdown() {
    let (addr, _handle, join) = start_server(2);
    let mut client = Client::connect(addr).unwrap();

    client.ping().unwrap();
    let opened = client.send("open s social rows=80 seed=3").unwrap();
    assert_eq!(opened.len(), 1);
    assert!(opened[0].contains("240 tuples"), "{opened:?}");

    let registered = client.send("register likes s").unwrap();
    assert!(registered[0].contains("strategy=sum-adjacent-pair"));

    let answer = client.quantile("likes", 0.5).unwrap();
    assert!(answer.contains("phi=0.5000"), "{answer}");

    // The same φ again must come from the cache.
    let cached = client.quantile("likes", 0.5).unwrap();
    assert!(cached.contains("(cached)"), "{cached}");

    let batch = client.batch("likes", &[0.25, 0.5, 0.75]).unwrap();
    assert_eq!(batch.len(), 4, "3 answers + summary: {batch:?}");
    assert!(batch[3].contains("1 from cache"), "{batch:?}");

    let stats = client.stats().unwrap();
    let stats_text = stats.join("\n");
    assert!(stats_text.contains("plans:              1"), "{stats_text}");
    assert!(stats_text.contains("db s: generation=1"), "{stats_text}");

    client.shutdown().unwrap();
    let summary = join.join().unwrap();
    assert!(summary.requests >= 7, "{summary:?}");
    // The server is gone: a fresh dial must fail (or be refused immediately).
    assert!(
        Client::connect(addr).is_err() || {
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        }
    );
}

#[test]
fn remote_errors_are_reported_not_fatal() {
    let (addr, handle, join) = start_server(1);
    let mut client = Client::connect(addr).unwrap();

    // Unknown command.
    let err = client.send("frobnicate").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("unknown command")));
    // Unknown plan.
    let err = client.send("quantile nope 0.5").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("no plan")));
    // Out-of-range φ.
    let err = client.send("quantile nope 1.5").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("[0, 1]")));
    // The connection survives all of that.
    client.ping().unwrap();
    // Multi-line engine errors (e.g. help-bearing usage errors) arrive flattened.
    let err = client.send("open").unwrap_err();
    assert!(matches!(&err, ClientError::Remote(m) if m.contains("usage")));

    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_engine_and_agree() {
    let (addr, handle, join) = start_server(4);

    // Set up the catalog once.
    let mut setup = Client::connect(addr).unwrap();
    setup.send("open s social rows=100 seed=7").unwrap();
    setup.send("register likes s").unwrap();
    let expected: Vec<String> = [0.2, 0.5, 0.8]
        .iter()
        .map(|&phi| {
            let line = setup.quantile("likes", phi).unwrap();
            line.replace(" (cached)", "")
        })
        .collect();
    setup.quit().unwrap();

    // Many clients hammer the same plan; every answer must match the serial one.
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    for (i, &phi) in [0.2, 0.5, 0.8].iter().enumerate() {
                        let line = client.quantile("likes", phi).unwrap();
                        let line = line.replace(" (cached)", "");
                        assert_eq!(line, expected[i], "round {round}");
                    }
                }
                client.quit().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // One engine served everybody: stats must show the accumulated requests.
    let mut check = Client::connect(addr).unwrap();
    let stats = check.stats().unwrap().join("\n");
    assert!(
        stats.contains("123 quantiles"),
        "3 setup + 8*5*3 hammered: {stats}"
    );
    check.quit().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn more_connections_than_workers_all_get_served() {
    // 2 workers, 6 sequential-ish clients: queued connections must be served, in
    // whatever order, without losses.
    let (addr, handle, join) = start_server(2);
    let mut setup = Client::connect(addr).unwrap();
    setup.send("open s social rows=60 seed=1").unwrap();
    setup.send("register likes s").unwrap();
    setup.quit().unwrap();

    let threads: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let answer = client.quantile("likes", 0.5).unwrap();
                assert!(answer.contains("phi=0.5000"));
                client.quit().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
    let summary = join.join().unwrap();
    assert!(summary.connections >= 7, "{summary:?}");
}

#[test]
fn shutdown_verb_from_one_client_stops_the_whole_server() {
    let (addr, handle, join) = start_server(2);
    let stopper = Client::connect(addr).unwrap();
    stopper.shutdown().unwrap();
    let summary = join.join().unwrap();
    assert!(handle.is_shutdown());
    assert_eq!(summary.requests, 1);
}

#[test]
fn replace_over_the_wire_invalidates_caches() {
    let (addr, handle, join) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    client.send("open s social rows=60 seed=5").unwrap();
    client.send("register likes s").unwrap();
    let before = client.quantile("likes", 0.5).unwrap();
    assert!(client.quantile("likes", 0.5).unwrap().contains("(cached)"));

    client.send("replace s social rows=60 seed=99").unwrap();
    let after = client.quantile("likes", 0.5).unwrap();
    assert!(!after.contains("(cached)"), "{after}");
    assert_ne!(before, after);

    client.shutdown().unwrap();
    handle.shutdown();
    join.join().unwrap();
}
