//! A libc-free readiness layer: level-triggered probes on nonblocking sockets plus
//! a parkable waker.
//!
//! The reactor (see [`crate::server`]) needs exactly two primitives, and std
//! provides the raw material for both without any FFI:
//!
//! * **Readiness probing** — [`probe`] asks a nonblocking [`TcpStream`] "is there
//!   data to read right now?" via a 1-byte [`TcpStream::peek`], which observes
//!   without consuming. `peek` on a nonblocking socket returns `WouldBlock` when
//!   the receive buffer is empty, `Ok(0)` on a closed peer, and `Ok(n)` when bytes
//!   are waiting — a level-triggered readiness check, no `epoll`/`kqueue` needed.
//! * **Wakeable parking** — a [`Poller`] is a `Mutex<bool>` + [`Condvar`] the
//!   reactor sleeps on between sweeps; any thread holding a cloned [`Waker`]
//!   (workers finishing a request, the accept loop registering a connection,
//!   shutdown) ends the sleep immediately instead of waiting out the tick.
//!
//! The trade-off versus a real OS poller is one `peek` syscall per parked
//! connection per sweep — linear, but with wake-on-completion driving the sweep
//! cadence the sweeps happen exactly when something is likely readable, and a few
//! microseconds of syscall per idle connection is far cheaper than the worker
//! thread that connection used to pin.

use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What [`probe`] observed on a nonblocking stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readiness {
    /// Bytes are waiting in the receive buffer.
    Readable,
    /// No data right now; check again later.
    NotReady,
    /// The peer closed (or the socket failed) — the connection is done.
    Closed,
}

/// Checks a **nonblocking** stream for readable data without consuming any.
pub fn probe(stream: &TcpStream) -> Readiness {
    let mut byte = [0u8; 1];
    match stream.peek(&mut byte) {
        Ok(0) => Readiness::Closed,
        Ok(_) => Readiness::Readable,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Readiness::NotReady,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Readiness::NotReady,
        Err(_) => Readiness::Closed,
    }
}

#[derive(Debug, Default)]
struct WakeState {
    woken: Mutex<bool>,
    cv: Condvar,
}

/// The sleeping half: one thread (the reactor) parks here between sweeps.
#[derive(Debug, Default)]
pub struct Poller {
    state: Arc<WakeState>,
}

/// The waking half: any number of threads can hold a clone and end the
/// [`Poller`]'s current (or next) sleep. Wakes are sticky — a wake delivered
/// while the poller is not sleeping is consumed by its next [`Poller::wait`], so
/// no wake is ever lost to a race.
#[derive(Clone, Debug)]
pub struct Waker {
    state: Arc<WakeState>,
}

impl Waker {
    /// Ends the poller's current sleep (or pre-empts its next one). Cheap and
    /// thread-safe; never blocks beyond the flag mutex.
    pub fn wake(&self) {
        let mut woken = self.state.woken.lock().expect("waker lock poisoned");
        *woken = true;
        self.state.cv.notify_all();
    }
}

impl Poller {
    /// A fresh poller with no pending wake.
    pub fn new() -> Self {
        Poller::default()
    }

    /// A wake handle for this poller.
    pub fn waker(&self) -> Waker {
        Waker {
            state: Arc::clone(&self.state),
        }
    }

    /// Parks the calling thread until woken or until `timeout` elapses, whichever
    /// comes first, consuming any pending wake. Returns `true` if a wake was
    /// delivered (before or during the sleep), `false` on a plain timeout.
    pub fn wait(&self, timeout: Duration) -> bool {
        let mut woken = self.state.woken.lock().expect("poller lock poisoned");
        if !*woken {
            let (guard, _timed_out) = self
                .state
                .cv
                .wait_timeout(woken, timeout)
                .expect("poller lock poisoned");
            woken = guard;
        }
        std::mem::take(&mut *woken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn probe_sees_data_without_consuming_it() {
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        assert_eq!(probe(&server), Readiness::NotReady);

        client.write_all(b"ping\n").unwrap();
        // Loopback delivery is fast but asynchronous; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(2);
        while probe(&server) != Readiness::Readable {
            assert!(Instant::now() < deadline, "data never became readable");
            std::thread::yield_now();
        }
        // Probing again still sees it: peek does not consume.
        assert_eq!(probe(&server), Readiness::Readable);
    }

    #[test]
    fn probe_reports_a_closed_peer() {
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(2);
        while probe(&server) != Readiness::Closed {
            assert!(Instant::now() < deadline, "close never observed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn wait_times_out_without_a_wake() {
        let poller = Poller::new();
        let start = Instant::now();
        assert!(!poller.wait(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn a_wake_ends_the_sleep_early() {
        let poller = Poller::new();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let start = Instant::now();
        assert!(poller.wait(Duration::from_secs(10)));
        assert!(start.elapsed() < Duration::from_secs(5));
        t.join().unwrap();
    }

    #[test]
    fn wakes_are_sticky_across_the_race() {
        // A wake delivered while nobody is sleeping must be consumed by the next
        // wait instead of getting lost.
        let poller = Poller::new();
        poller.waker().wake();
        let start = Instant::now();
        assert!(poller.wait(Duration::from_secs(10)));
        assert!(start.elapsed() < Duration::from_secs(1));
        // The flag was consumed: the next wait times out.
        assert!(!poller.wait(Duration::from_millis(10)));
    }
}
