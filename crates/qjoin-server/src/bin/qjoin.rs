//! The `qjoin` binary: the engine CLI (REPL + one-shot subcommands) plus the
//! network subcommands `serve` and `client` provided by this crate.

use qjoin_server::{Client, ClientError, ServerConfig};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::time::Duration;

/// Usage text for the network subcommands (the engine's `HELP` covers the rest).
const SERVE_HELP: &str = "\
qjoin serve — run the TCP serving layer

USAGE:
  qjoin serve [addr=<host:port>] [workers=<n>] [queue=<n>] [cache=<n>]
              [slowms=<ms>] [threads=<n>] [tracecap=<n>]

  addr     bind address; port 0 (the default) picks a free ephemeral port.
           The bound address is printed as `qjoin-server listening on <addr> ...`.
  workers  worker threads executing requests (connections are multiplexed
           over a reactor, so idle connections hold no worker)  (default 4)
  queue    dispatched-request queue depth before backpressure   (default 64)
  cache    engine result-cache capacity, 0 disables   (default 1024)
  slowms   slow-query log threshold in milliseconds: requests whose
           queue-wait + execute time reaches it are kept for the
           `slowlog` verb   (default 100)
  threads  intra-solve parallelism: the engine's work-stealing chunk
           executor runs each solve over this many threads. 1 is purely
           sequential; answers are bit-identical at any setting
           (default: QJOIN_THREADS, else the host's parallelism)
  tracecap retained per-request span traces in the flight recorder, read
           back by the `trace` verbs; 0 disables span tracing entirely
           (default 64)

qjoin client — talk to a running server

USAGE:
  qjoin client <addr> [command ...]

  Each trailing argument is one full protocol command (quote it); with no
  commands, lines are read from stdin. Payload lines are printed to stdout,
  `err` replies to stderr. The exit code is 1 when the connection fails or
  any command got an `err` reply (stdin mode keeps going after remote
  errors, but still reports them in the exit code).
  See docs/PROTOCOL.md for the verbs.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | Some("-h") | Some("--help") => {
            println!("{}\n\n{SERVE_HELP}", qjoin_engine::cli::HELP);
            0
        }
        // Everything else (repl, register, quantile, batch, stats, …) is the
        // engine CLI's business.
        _ => qjoin_engine::cli::main_with_args(args),
    }
}

/// Parses `key=value` arguments against an allowed set.
fn parse_params(tokens: &[String], allowed: &[&str]) -> Result<BTreeMap<String, String>, String> {
    let mut params = BTreeMap::new();
    for token in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("expected key=value, got {token:?}"));
        };
        if !allowed.contains(&key) {
            return Err(format!(
                "unknown parameter {key:?}; expected one of: {}",
                allowed.join(", ")
            ));
        }
        params.insert(key.to_string(), value.to_string());
    }
    Ok(params)
}

fn cmd_serve(args: &[String]) -> i32 {
    let params = match parse_params(
        args,
        &[
            "addr", "workers", "queue", "cache", "slowms", "threads", "tracecap",
        ],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{SERVE_HELP}");
            return 1;
        }
    };
    let addr = params
        .get("addr")
        .map(String::as_str)
        // Ephemeral by default: parallel invocations never collide on a port.
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        match params.get(key) {
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for {key}")),
            None => Ok(default),
        }
    };
    let (workers, queue, cache, slowms, tracecap, threads) = match (|| {
        Ok::<_, String>((
            parse_usize("workers", 4)?,
            parse_usize("queue", 64)?,
            parse_usize("cache", 1024)?,
            parse_usize("slowms", 100)?,
            parse_usize("tracecap", 64)?,
            // `None` defers to the process-wide pool (QJOIN_THREADS or the
            // host's available parallelism); `threads=1` is purely sequential.
            params
                .get("threads")
                .map(|raw| {
                    raw.parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .ok_or_else(|| format!("invalid value {raw:?} for threads"))
                })
                .transpose()?,
        ))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{SERVE_HELP}");
            return 1;
        }
    };

    let engine = std::sync::Arc::new(qjoin_engine::Engine::with_config(
        qjoin_engine::EngineConfig {
            cache_capacity: cache,
            threads,
            flight_recorder_capacity: tracecap,
            ..Default::default()
        },
    ));
    let session = std::sync::Arc::new(qjoin_engine::cli::CliSession::with_engine(engine));
    let config = ServerConfig {
        workers,
        queue_depth: queue,
        slow_threshold: Duration::from_millis(slowms as u64),
        ..Default::default()
    };
    let server = match qjoin_server::Server::bind(addr.as_str(), session, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return 1;
        }
    };
    match server.local_addr() {
        Ok(bound) => {
            // CI and scripts parse this exact line to learn the ephemeral port.
            println!("qjoin-server listening on {bound} ({workers} workers)");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: cannot resolve bound address: {e}");
            return 1;
        }
    }
    match server.run() {
        Ok(summary) => {
            println!(
                "qjoin-server drained: {} connections, {} requests",
                summary.connections, summary.requests
            );
            0
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            1
        }
    }
}

/// Drives the client from a line-per-command script (stdin mode): remote `err`
/// replies are reported and the script keeps going, but any error — remote or
/// transport — makes the final exit code nonzero, so shell pipelines can tell a
/// clean run from a degraded one.
fn run_script(client: &mut Client, input: impl BufRead) -> i32 {
    let mut failed = false;
    for line in input.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match run_one(client, &line) {
            Ok(true) => return i32::from(failed),
            Ok(false) => {}
            Err(ClientError::Remote(message)) => {
                eprintln!("error: {message}");
                failed = true;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    }
    i32::from(failed)
}

/// Sends one command, prints its payload, and reports whether it ended the
/// conversation (`quit`/`exit`/`shutdown`).
fn run_one(client: &mut Client, command: &str) -> Result<bool, ClientError> {
    let verb = command.split_whitespace().next().unwrap_or("");
    let payload = client.send(command)?;
    for line in &payload {
        println!("{line}");
    }
    Ok(matches!(verb, "quit" | "exit" | "shutdown"))
}

fn cmd_client(args: &[String]) -> i32 {
    let [addr, commands @ ..] = args else {
        eprintln!("error: client needs a server address\n\n{SERVE_HELP}");
        return 1;
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return 1;
        }
    };
    // Solves can take a while on big workloads, but a hung server should not hang
    // the client forever.
    let _ = client.set_read_timeout(Some(Duration::from_secs(300)));

    if commands.is_empty() {
        // Interactive / piped mode: one command per stdin line.
        run_script(&mut client, std::io::stdin().lock())
    } else {
        // One-shot mode: each argument is a full command; stop at the first error.
        for command in commands {
            match run_one(&mut client, command) {
                Ok(true) => return 0,
                Ok(false) => {}
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
        // Close the connection politely so the server's worker is freed at once.
        let _ = client.quit();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn with_client(test: impl FnOnce(&mut Client)) {
        let server = qjoin_server::Server::bind(
            "127.0.0.1:0",
            std::sync::Arc::new(qjoin_engine::cli::CliSession::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(addr).unwrap();
        test(&mut client);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn clean_script_exits_zero() {
        with_client(|client| {
            let script = "ping\n\nopen s social rows=60 seed=3\nquit\n";
            assert_eq!(run_script(client, Cursor::new(script)), 0);
        });
    }

    #[test]
    fn script_with_a_remote_error_keeps_going_but_exits_nonzero() {
        // Regression: a failing command in stdin mode used to be reported on
        // stderr but swallowed by a 0 exit code.
        with_client(|client| {
            let script = "ping\nfrobnicate\nping\n";
            assert_eq!(run_script(client, Cursor::new(script)), 1);
        });
    }

    #[test]
    fn quit_after_a_remote_error_still_exits_nonzero() {
        with_client(|client| {
            let script = "frobnicate\nquit\n";
            assert_eq!(run_script(client, Cursor::new(script)), 1);
        });
    }
}
