//! The line-delimited wire protocol (see `docs/PROTOCOL.md` for the full spec).
//!
//! **Requests** are single lines of UTF-8 text, exactly the REPL command language
//! (`open`, `replace`, `register`, `quantile`, `batch`, `plans`, `stats`, `help`),
//! plus the connection verbs `ping`, `quit`/`exit`, and `shutdown`.
//!
//! **Responses** are framed so a client can read them without guessing:
//!
//! ```text
//! ok <n>\n        n payload lines follow, each terminated by \n
//! <line 1>\n
//! ...
//! <line n>\n
//! ```
//!
//! or, for failures, a single line:
//!
//! ```text
//! err <message>\n
//! ```
//!
//! Error messages are flattened to one line (embedded newlines become `"; "`).
//! Both sides of the protocol live here so the server, the client library, and the
//! tests cannot drift apart.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Most payload lines a client accepts in one `ok <n>` frame. Real responses are
/// tiny (answers, stats dumps, `help`); the largest legitimate frames are batch
/// replies, one line per φ, so a million lines is orders of magnitude of headroom
/// while still rejecting nonsense counts that would loop a client to EOF.
pub const MAX_PAYLOAD_LINES: usize = 1 << 20;

/// One framed reply: either a payload of zero or more lines, or an error message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success, carrying the payload lines.
    Ok(Vec<String>),
    /// Failure, carrying a one-line error message.
    Err(String),
}

impl Response {
    /// A success response from a printable text block (split into lines; an empty
    /// text becomes an empty payload).
    pub fn from_text(text: &str) -> Response {
        if text.is_empty() {
            Response::Ok(Vec::new())
        } else {
            Response::Ok(text.lines().map(str::to_string).collect())
        }
    }

    /// An error response; the message is flattened to a single line.
    pub fn error(message: impl Into<String>) -> Response {
        Response::Err(flatten(&message.into()))
    }

    /// True for [`Response::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }

    /// Serializes the response onto a writer using the framing above.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Response::Ok(lines) => {
                writeln!(w, "ok {}", lines.len())?;
                for line in lines {
                    writeln!(w, "{}", flatten(line))?;
                }
            }
            Response::Err(message) => {
                writeln!(w, "err {}", flatten(message))?;
            }
        }
        w.flush()
    }

    /// Reads one framed response from a buffered reader.
    ///
    /// The payload count is capped at [`MAX_PAYLOAD_LINES`]: a malformed or
    /// hostile header like `ok 18446744073709551615` is rejected as
    /// [`ProtocolError::Malformed`] instead of looping the client until EOF.
    pub fn read_from(r: &mut impl BufRead) -> Result<Response, ProtocolError> {
        let header = read_line(r)?;
        if let Some(count) = header.strip_prefix("ok ") {
            let count: usize = count.trim().parse().map_err(|_| {
                ProtocolError::Malformed(format!("bad payload count in {header:?}"))
            })?;
            if count > MAX_PAYLOAD_LINES {
                return Err(ProtocolError::Malformed(format!(
                    "payload count {count} exceeds the {MAX_PAYLOAD_LINES}-line cap"
                )));
            }
            let mut lines = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                lines.push(read_line(r)?);
            }
            Ok(Response::Ok(lines))
        } else if let Some(message) = header.strip_prefix("err ") {
            Ok(Response::Err(message.to_string()))
        } else {
            Err(ProtocolError::Malformed(format!(
                "expected `ok <n>` or `err <message>`, got {header:?}"
            )))
        }
    }
}

/// Reads one `\n`-terminated line, stripping the terminator (and a `\r` if present).
fn read_line(r: &mut impl BufRead) -> Result<String, ProtocolError> {
    let mut line = String::new();
    let n = r.read_line(&mut line).map_err(ProtocolError::Io)?;
    if n == 0 {
        return Err(ProtocolError::Closed);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Replaces newlines so any text fits in one wire line.
fn flatten(text: &str) -> String {
    if text.contains('\n') {
        text.replace("\r\n", "; ").replace('\n', "; ")
    } else {
        text.to_string()
    }
}

/// Errors raised while reading the wire format.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection mid-response (or before one started).
    Closed,
    /// The peer sent something that is not valid framing.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Closed => write!(f, "connection closed by peer"),
            ProtocolError::Malformed(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(response: &Response) -> Response {
        let mut wire = Vec::new();
        response.write_to(&mut wire).unwrap();
        Response::read_from(&mut BufReader::new(wire.as_slice())).unwrap()
    }

    #[test]
    fn ok_responses_roundtrip() {
        for response in [
            Response::Ok(vec![]),
            Response::Ok(vec!["one".into()]),
            Response::Ok(vec!["a".into(), "".into(), "c c c".into()]),
        ] {
            assert_eq!(roundtrip(&response), response);
        }
    }

    #[test]
    fn err_responses_roundtrip_flattened() {
        let response = Response::error("first\nsecond");
        assert_eq!(response, Response::Err("first; second".into()));
        assert_eq!(roundtrip(&response), response);
    }

    #[test]
    fn from_text_splits_lines() {
        assert_eq!(Response::from_text(""), Response::Ok(vec![]));
        assert_eq!(
            Response::from_text("a\nb"),
            Response::Ok(vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn payload_lines_are_flattened_on_write() {
        let sneaky = Response::Ok(vec!["evil\ninjection".into()]);
        let read_back = roundtrip(&sneaky);
        assert_eq!(read_back, Response::Ok(vec!["evil; injection".into()]));
    }

    #[test]
    fn malformed_headers_and_eof_are_errors() {
        let mut empty = BufReader::new(&b""[..]);
        assert!(matches!(
            Response::read_from(&mut empty),
            Err(ProtocolError::Closed)
        ));
        let mut garbage = BufReader::new(&b"what 3\n"[..]);
        assert!(matches!(
            Response::read_from(&mut garbage),
            Err(ProtocolError::Malformed(_))
        ));
        let mut truncated = BufReader::new(&b"ok 2\nonly-one\n"[..]);
        assert!(matches!(
            Response::read_from(&mut truncated),
            Err(ProtocolError::Closed)
        ));
        let mut bad_count = BufReader::new(&b"ok lots\n"[..]);
        assert!(matches!(
            Response::read_from(&mut bad_count),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_payload_counts_are_rejected_not_looped() {
        // A server claiming u64::MAX payload lines used to make the client read
        // until EOF; now the cap rejects it up front.
        let mut hostile = BufReader::new(&b"ok 18446744073709551615\nx\n"[..]);
        match Response::read_from(&mut hostile) {
            Err(ProtocolError::Malformed(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Just over the cap: rejected.
        let wire = format!("ok {}\n", MAX_PAYLOAD_LINES + 1);
        assert!(matches!(
            Response::read_from(&mut BufReader::new(wire.as_bytes())),
            Err(ProtocolError::Malformed(_))
        ));
        // At the cap the count is structurally fine (the truncated body then
        // surfaces as Closed, which is a transport-level truth, not a loop).
        let wire = format!("ok {}\n", MAX_PAYLOAD_LINES);
        assert!(matches!(
            Response::read_from(&mut BufReader::new(wire.as_bytes())),
            Err(ProtocolError::Closed)
        ));
    }
}
