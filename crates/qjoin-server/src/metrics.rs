//! Server-side request telemetry: the lifecycle of every wire request split
//! into **queue-wait → execute → write**, plus a slow-query ring buffer.
//!
//! The reactor stamps each [`crate::server`] job when it is dispatched; the
//! worker that picks it up measures how long it sat in the pool queue, how long
//! the engine took to execute it, and how long the response write took, and
//! records all three into histograms registered in the **engine's** shared
//! [`Registry`]. That makes the server series come out of the same `metrics` /
//! `stats json` scrape as the engine's solve spans — one registry, one surface:
//!
//! * `qjoin_requests_total` — non-empty commands whose reply reached the client
//!   (the live counterpart of [`crate::server::ServerSummary::requests`]);
//! * `qjoin_queue_wait_seconds` — dispatch-to-pickup latency. Pipelined lines a
//!   worker serves inline without a reactor round-trip record (near-)zero wait;
//! * `qjoin_execute_seconds` — command dispatch through the engine session;
//! * `qjoin_write_seconds` — serializing the response back onto the socket.
//!
//! * `qjoin_queue_depth` — dispatched-but-unstarted jobs currently sitting in
//!   the worker pool queue (the live backlog behind the reactor's
//!   backpressure), updated on every enqueue/pickup.
//!
//! Requests whose queue-wait + execute time reaches the configured threshold
//! additionally land in a bounded ring buffer, dumped on demand by the
//! `slowlog` protocol verb — newest first, oldest evicted. When the request
//! recorded a span trace, the slow-log line carries `trace=<id>` so the trace
//! explaining the slow request is one `trace id <id>` away (`trace=-` when
//! tracing was off).

use qjoin_telemetry::{Counter, Gauge, Histogram, Registry, TraceId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-request telemetry sinks shared by every worker (see the module docs).
pub struct ServerMetrics {
    requests: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    execute: Arc<Histogram>,
    write: Arc<Histogram>,
    /// Dispatched-but-unstarted jobs in the worker pool queue, mirrored into
    /// the `qjoin_queue_depth` gauge on every change so a scrape sees the live
    /// backlog the reactor's backpressure is holding.
    queue_depth: AtomicU64,
    queue_depth_gauge: Arc<Gauge>,
    slow: SlowLog,
}

impl ServerMetrics {
    /// Registers the server's request-lifecycle series in `registry` (the
    /// engine's, so one scrape covers both layers).
    pub fn new(registry: &Registry, slow_threshold: Duration, slow_capacity: usize) -> Self {
        ServerMetrics {
            requests: registry.counter("qjoin_requests_total", &[]),
            queue_wait: registry.histogram("qjoin_queue_wait_seconds", &[]),
            execute: registry.histogram("qjoin_execute_seconds", &[]),
            write: registry.histogram("qjoin_write_seconds", &[]),
            queue_depth: AtomicU64::new(0),
            queue_depth_gauge: registry.gauge("qjoin_queue_depth", &[]),
            slow: SlowLog::new(slow_threshold, slow_capacity),
        }
    }

    /// A job entered the worker pool queue (the reactor dispatched it).
    pub fn queue_enter(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_gauge.set(depth as f64);
    }

    /// A worker picked the job up, ending its time in the queue.
    pub fn queue_exit(&self) {
        let depth = self
            .queue_depth
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        self.queue_depth_gauge.set(depth as f64);
    }

    /// Records one served request: bumps the live counter, feeds the three
    /// lifecycle histograms, and captures a slow-log entry when queue-wait plus
    /// execute time reaches the threshold. `trace` is the request's span-trace
    /// id when one was recorded, so a slow-log line links straight to the trace
    /// that explains it.
    pub fn record(
        &self,
        command: &str,
        queue_wait: Duration,
        execute: Duration,
        write: Duration,
        trace: Option<TraceId>,
    ) {
        self.requests.inc();
        self.queue_wait.record_duration(queue_wait);
        self.execute.record_duration(execute);
        self.write.record_duration(write);
        self.slow
            .observe(command, queue_wait, execute, write, trace);
    }

    /// Renders the slow-query ring for the `slowlog` verb.
    pub fn slowlog_dump(&self) -> String {
        self.slow.dump()
    }
}

/// One captured slow request.
struct SlowEntry {
    seq: u64,
    command: String,
    queue_wait: Duration,
    execute: Duration,
    write: Duration,
    trace: Option<TraceId>,
}

/// A bounded, newest-first ring of requests that crossed the slow threshold.
struct SlowLog {
    threshold: Duration,
    capacity: usize,
    seq: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry>>,
}

/// Longer commands are truncated in slow-log entries so one pathological line
/// cannot bloat the ring.
const MAX_SLOW_COMMAND_BYTES: usize = 128;

impl SlowLog {
    fn new(threshold: Duration, capacity: usize) -> Self {
        SlowLog {
            threshold,
            capacity,
            seq: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    fn observe(
        &self,
        command: &str,
        queue_wait: Duration,
        execute: Duration,
        write: Duration,
        trace: Option<TraceId>,
    ) {
        if self.capacity == 0 || queue_wait + execute < self.threshold {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut command = command.to_string();
        if command.len() > MAX_SLOW_COMMAND_BYTES {
            let mut cut = MAX_SLOW_COMMAND_BYTES;
            while !command.is_char_boundary(cut) {
                cut -= 1;
            }
            command.truncate(cut);
            command.push('…');
        }
        let entry = SlowEntry {
            seq,
            command,
            queue_wait,
            execute,
            write,
            trace,
        };
        let mut entries = self.entries.lock().expect("slow log lock poisoned");
        if entries.len() == self.capacity {
            entries.pop_back(); // evict the oldest; newest stays at the front
        }
        entries.push_front(entry);
    }

    fn dump(&self) -> String {
        let entries = self.entries.lock().expect("slow log lock poisoned");
        let total = self.seq.load(Ordering::Relaxed);
        let mut out = format!(
            "slowlog: {} entries shown, {total} recorded (threshold {:.3}s, capacity {})",
            entries.len(),
            self.threshold.as_secs_f64(),
            self.capacity
        );
        for entry in entries.iter() {
            out.push_str(&format!(
                "\n#{} queue={:.6}s execute={:.6}s write={:.6}s trace={} cmd={:?}",
                entry.seq,
                entry.queue_wait.as_secs_f64(),
                entry.execute.as_secs_f64(),
                entry.write.as_secs_f64(),
                entry
                    .trace
                    .map_or_else(|| "-".to_string(), |id| id.to_string()),
                entry.command
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_feeds_counter_histograms_and_slow_ring() {
        let registry = Registry::new();
        let metrics = ServerMetrics::new(&registry, Duration::from_millis(5), 2);
        let ms = Duration::from_millis;
        metrics.record("quantile likes 0.5", ms(0), ms(1), ms(0), None); // fast: not logged
        metrics.record("slow one", ms(3), ms(4), ms(1), None); // queue+execute = 7ms ≥ 5ms
        metrics.record("slow two", ms(0), ms(9), ms(0), Some(TraceId(0x2a)));
        metrics.record("slow three", ms(6), ms(0), ms(0), None); // evicts "slow one"

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("qjoin_requests_total", &[]), Some(4));
        let hist = |name: &str| snapshot.histogram(name, &[]).unwrap().count();
        assert_eq!(hist("qjoin_queue_wait_seconds"), 4);
        assert_eq!(hist("qjoin_execute_seconds"), 4);
        assert_eq!(hist("qjoin_write_seconds"), 4);

        let dump = metrics.slowlog_dump();
        assert!(
            dump.starts_with("slowlog: 2 entries shown, 3 recorded"),
            "{dump}"
        );
        // Newest first; the fast request and the evicted oldest are absent.
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[1].contains("cmd=\"slow three\""), "{dump}");
        assert!(lines[1].contains("trace=- "), "{dump}");
        assert!(lines[2].contains("cmd=\"slow two\""), "{dump}");
        assert!(lines[2].contains("trace=2a "), "{dump}");
        assert!(!dump.contains("slow one"), "{dump}");
        assert!(!dump.contains("quantile"), "{dump}");
    }

    #[test]
    fn queue_depth_gauge_tracks_enqueue_and_pickup() {
        let registry = Registry::new();
        let metrics = ServerMetrics::new(&registry, Duration::from_secs(1), 4);
        metrics.queue_enter();
        metrics.queue_enter();
        assert_eq!(
            registry.snapshot().gauge("qjoin_queue_depth", &[]),
            Some(2.0)
        );
        metrics.queue_exit();
        assert_eq!(
            registry.snapshot().gauge("qjoin_queue_depth", &[]),
            Some(1.0)
        );
        metrics.queue_exit();
        assert_eq!(
            registry.snapshot().gauge("qjoin_queue_depth", &[]),
            Some(0.0)
        );
    }

    #[test]
    fn zero_capacity_disables_the_ring_and_long_commands_truncate() {
        let registry = Registry::new();
        let disabled = ServerMetrics::new(&registry, Duration::ZERO, 0);
        disabled.record(
            "anything",
            Duration::ZERO,
            Duration::ZERO,
            Duration::ZERO,
            None,
        );
        assert!(
            disabled
                .slowlog_dump()
                .starts_with("slowlog: 0 entries shown, 0 recorded"),
            "{}",
            disabled.slowlog_dump()
        );

        let logging = ServerMetrics::new(&registry, Duration::ZERO, 4);
        let long = "x".repeat(300);
        logging.record(&long, Duration::ZERO, Duration::ZERO, Duration::ZERO, None);
        let dump = logging.slowlog_dump();
        assert!(dump.contains('…'), "{dump}");
        assert!(!dump.contains(&long), "{dump}");
    }
}
