//! A blocking client for the qjoin wire protocol.
//!
//! One [`Client`] wraps one TCP connection and speaks the line protocol from
//! [`crate::protocol`]: send a command line, read one framed response. Remote
//! errors (`err ...` replies) surface as [`ClientError::Remote`], so transport
//! failures and server-side rejections stay distinguishable.

use crate::protocol::{ProtocolError, Response};
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors raised by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (dial, read, or write).
    Io(io::Error),
    /// The server replied with an `err` response; the payload is its message.
    Remote(String),
    /// The server replied with bytes that are not valid protocol framing, or the
    /// request itself cannot be represented on the wire.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(message) => write!(f, "server error: {message}"),
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(e) => ClientError::Io(e),
            ProtocolError::Closed => {
                ClientError::Protocol("connection closed mid-response".to_string())
            }
            ProtocolError::Malformed(what) => ClientError::Protocol(what),
        }
    }
}

/// A blocking connection to a qjoin server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server (e.g. the address printed by `qjoin serve`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sets (or clears) a deadline for each protocol read.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one command line and reads the framed reply. Returns the payload lines
    /// on success; a remote `err` reply becomes [`ClientError::Remote`].
    pub fn send(&mut self, command: &str) -> Result<Vec<String>, ClientError> {
        if command.contains('\n') || command.contains('\r') {
            return Err(ClientError::Protocol(
                "a command must be a single line".to_string(),
            ));
        }
        writeln!(self.writer, "{command}")?;
        self.writer.flush()?;
        match Response::read_from(&mut self.reader)? {
            Response::Ok(lines) => Ok(lines),
            Response::Err(message) => Err(ClientError::Remote(message)),
        }
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let payload = self.send("ping")?;
        if payload == ["pong"] {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "unexpected ping reply: {payload:?}"
            )))
        }
    }

    /// Serves one quantile: `quantile <plan> <phi>`; returns the answer line.
    pub fn quantile(&mut self, plan: &str, phi: f64) -> Result<String, ClientError> {
        let payload = self.send(&format!("quantile {plan} {phi}"))?;
        payload
            .into_iter()
            .next()
            .ok_or_else(|| ClientError::Protocol("empty quantile reply".to_string()))
    }

    /// Serves a batch: `batch <plan> <phi> ...`; returns all payload lines (one per
    /// φ plus the summary line).
    pub fn batch(&mut self, plan: &str, phis: &[f64]) -> Result<Vec<String>, ClientError> {
        let phi_args = phis
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        self.send(&format!("batch {plan} {phi_args}"))
    }

    /// Fetches the server's statistics dump.
    pub fn stats(&mut self) -> Result<Vec<String>, ClientError> {
        self.send("stats")
    }

    /// Politely closes this connection (`quit`). The connection is consumed.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.send("quit").map(|_| ())
    }

    /// Asks the server to shut down and drain. The connection is consumed.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send("shutdown").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_line_commands_are_rejected_client_side() {
        // Build a client over an unconnected pair is impossible with std only, so
        // validate the guard before any I/O happens: connect to a listener we
        // control and never accept from.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = Client::connect(listener.local_addr().unwrap()).unwrap();
        let err = client.send("two\nlines").unwrap_err();
        assert!(matches!(err, ClientError::Protocol(_)));
    }

    #[test]
    fn error_types_display_their_cause() {
        let io: ClientError = io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(ClientError::Remote("nope".into())
            .to_string()
            .contains("nope"));
        let from_closed: ClientError = ProtocolError::Closed.into();
        assert!(matches!(from_closed, ClientError::Protocol(_)));
    }
}
