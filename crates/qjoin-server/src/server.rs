//! The TCP server: an accept loop feeding a bounded worker pool, one session-per-
//! connection over one shared engine, and cooperative shutdown with graceful drain.
//!
//! ```text
//!            ┌──────────────────────── Server ────────────────────────┐
//!  accept ──▶│ bounded queue ─▶ worker pool (N threads)               │
//!            │                     │ per connection: read line,       │
//!            │                     ▼ intercept ping/quit/shutdown     │
//!            │              Arc<CliSession> (shared command language) │
//!            │                     │ executes against                 │
//!            │                     ▼                                  │
//!            │              Arc<Engine>  (thread-safe, &self serving) │
//!            └────────────────────────────────────────────────────────┘
//! ```
//!
//! **Ephemeral ports**: bind to port 0 and the OS picks a free port;
//! [`Server::local_addr`] exposes the real address, and `qjoin serve` prints it.
//! Tests and CI always bind port 0 so parallel runs never collide.
//!
//! **Shutdown**: any connection sending `shutdown` (or [`ServerHandle::shutdown`])
//! sets a flag and wakes the accept loop. The listener stops accepting, the queue
//! is closed, workers finish the request they are executing (in-flight solves are
//! never aborted), and [`Server::run`] joins them all before returning.

use crate::pool::WorkerPool;
use crate::protocol::Response;
use qjoin_engine::cli::CliSession;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections (each serves one connection at a time).
    pub workers: usize,
    /// Accepted-but-unstarted connections the queue holds before the accept loop
    /// blocks (backpressure instead of unbounded pile-up).
    pub queue_depth: usize,
    /// How often an idle connection checks for server shutdown (the read timeout).
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            poll_interval: Duration::from_millis(200),
        }
    }
}

/// What a finished server run observed (returned by [`Server::run`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and handed to the pool.
    pub connections: u64,
    /// Requests answered (one per protocol response written).
    pub requests: u64,
}

/// A handle that can stop a running server from any thread.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The server's bound address (the real port, even when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: sets the flag and dials the listener once so the blocking
    /// accept call wakes up and observes it. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wildcard binds (0.0.0.0 / ::) are not dialable on every platform; the
        // loopback address with the same port reaches the listener regardless.
        let mut dial = self.addr;
        if dial.ip().is_unspecified() {
            match dial {
                SocketAddr::V4(_) => dial.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => dial.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        // A failed dial is fine — it means the listener is already gone.
        let _ = TcpStream::connect_timeout(&dial, Duration::from_secs(1));
    }
}

/// A bound-but-not-yet-running server (see the module docs).
pub struct Server {
    listener: TcpListener,
    session: Arc<CliSession>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds a listener (use port 0 for an OS-assigned ephemeral port) serving the
    /// given shared session.
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: Arc<CliSession>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            session,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server from another thread (or from a connection's
    /// `shutdown` verb).
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Runs the accept loop until shutdown, then drains: already-accepted
    /// connections finish their current request before workers exit.
    pub fn run(self) -> io::Result<ServerSummary> {
        let handle = self.handle()?;
        let requests = Arc::new(AtomicU64::new(0));
        let pool = {
            let session = Arc::clone(&self.session);
            let poll_interval = self.config.poll_interval;
            let handle = handle.clone();
            let requests = Arc::clone(&requests);
            WorkerPool::new(
                "qjoin-worker",
                self.config.workers,
                self.config.queue_depth,
                move |stream: TcpStream| {
                    serve_connection(stream, &session, &handle, poll_interval, &requests);
                },
            )
        };

        let mut connections = 0u64;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break; // the waking dial (or a raced real connection) lands here
            }
            match stream {
                Ok(stream) => {
                    connections += 1;
                    if pool.submit(stream).is_err() {
                        break;
                    }
                }
                // Transient accept failures (e.g. the peer vanished between
                // accept and handshake) must not kill the server.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        pool.join(); // graceful drain
        Ok(ServerSummary {
            connections,
            requests: requests.load(Ordering::SeqCst),
        })
    }
}

/// Serves one connection: reads request lines, executes them against the shared
/// session, writes framed responses. Returns (closing the connection) on EOF,
/// transport errors, `quit`/`exit`, `shutdown`, or server shutdown.
fn serve_connection(
    stream: TcpStream,
    session: &CliSession,
    handle: &ServerHandle,
    poll_interval: Duration,
    requests: &AtomicU64,
) {
    // The read timeout doubles as the shutdown poll tick for idle connections.
    let _ = stream.set_read_timeout(Some(poll_interval));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // `read_line` appends whatever it consumed even when it then times out, so the
    // partial line survives in `pending` across poll ticks. A newline-free flood
    // would grow it forever, so over-long lines close the connection instead.
    const MAX_LINE_BYTES: usize = 64 * 1024;
    let mut pending = String::new();
    loop {
        if handle.is_shutdown() || pending.len() > MAX_LINE_BYTES {
            return;
        }
        match reader.read_line(&mut pending) {
            Ok(0) => return, // EOF: client closed cleanly
            Ok(_) if pending.len() > MAX_LINE_BYTES => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => return,
        }
        let line = std::mem::take(&mut pending);
        let line = line.trim();
        let (response, action) = dispatch(line, session);
        requests.fetch_add(1, Ordering::SeqCst);
        if response.write_to(&mut writer).is_err() {
            return;
        }
        match action {
            Action::Continue => {}
            Action::Close => return,
            Action::Shutdown => {
                handle.shutdown();
                return;
            }
        }
    }
}

/// What the connection loop does after writing a response.
enum Action {
    Continue,
    Close,
    Shutdown,
}

/// Maps one request line to a response plus the follow-up action. Connection-level
/// verbs (`ping`, `quit`/`exit`, `shutdown`) are intercepted here; everything else
/// is the shared REPL command language. The shutdown flag itself is set by the
/// caller *after* the reply is written, so the client always sees the confirmation.
fn dispatch(line: &str, session: &CliSession) -> (Response, Action) {
    match line.split_whitespace().next() {
        None => (Response::Ok(Vec::new()), Action::Continue),
        Some("ping") => (Response::Ok(vec!["pong".to_string()]), Action::Continue),
        Some("quit") | Some("exit") => (Response::Ok(vec!["bye".to_string()]), Action::Close),
        Some("shutdown") => (
            Response::Ok(vec!["shutting down".to_string()]),
            Action::Shutdown,
        ),
        Some(_) => match session.execute(line) {
            Ok(output) => (Response::from_text(&output), Action::Continue),
            // The REPL signals quit via a sentinel; treat it like `quit` for safety.
            Err(e) if e == "__quit__" => (Response::Ok(vec!["bye".to_string()]), Action::Close),
            Err(e) => (Response::error(e), Action::Continue),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server(
        config: ServerConfig,
    ) -> (ServerHandle, std::thread::JoinHandle<ServerSummary>) {
        let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run().unwrap());
        (handle, join)
    }

    #[test]
    fn binds_an_ephemeral_port_and_exposes_it() {
        let (a, ja) = spawn_server(ServerConfig::default());
        let (b, jb) = spawn_server(ServerConfig::default());
        assert_ne!(a.addr().port(), 0);
        assert_ne!(b.addr().port(), 0);
        assert_ne!(a.addr(), b.addr(), "two ephemeral servers must not collide");
        a.shutdown();
        b.shutdown();
        ja.join().unwrap();
        jb.join().unwrap();
    }

    #[test]
    fn handle_shutdown_stops_a_server_with_no_traffic() {
        let (handle, join) = spawn_server(ServerConfig::default());
        assert!(!handle.is_shutdown());
        handle.shutdown();
        let summary = join.join().unwrap();
        assert!(handle.is_shutdown());
        // The waking dial may or may not be counted as a connection, but no
        // requests were ever answered.
        assert_eq!(summary.requests, 0);
    }
}
