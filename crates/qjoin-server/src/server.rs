//! The TCP server: an accept loop feeding a **reactor** that multiplexes every
//! connection over a bounded worker pool, with cooperative shutdown and graceful
//! drain.
//!
//! ```text
//!            ┌───────────────────────── Server ──────────────────────────┐
//!  accept ──▶│ register ─▶ reactor (1 thread, owns parked nonblocking    │
//!            │             connections; probes readiness, assembles      │
//!            │             request lines)                                │
//!            │                │ one complete line = one job              │
//!            │                ▼                                          │
//!            │             worker pool (N threads): dispatch ping/quit/  │
//!            │             shutdown, else Arc<CliSession> ─▶ Arc<Engine> │
//!            │                │ write response, hand the                 │
//!            │                ▼ connection back                          │
//!            │             reactor (parks it again)                      │
//!            └───────────────────────────────────────────────────────────┘
//! ```
//!
//! **Connections are multiplexed, not pinned**: workers execute *requests*, never
//! own connections. An idle connection is a parked [`Conn`] in the reactor's
//! registry — a buffer and a socket, zero threads — so any number of idle clients
//! coexist with `workers` concurrent request executions. (The previous design
//! dedicated a worker thread to each connection for its whole lifetime, so
//! `workers` idle clients starved everyone else.)
//!
//! The reactor is std-only (see [`crate::poll`]): nonblocking sockets probed with
//! `peek`, and a condvar [`Waker`] that workers ping when they finish a request —
//! so under load the sweep cadence is event-driven, and the configurable
//! [`ServerConfig::idle_tick`] only paces truly idle periods.
//!
//! **Ephemeral ports**: bind to port 0 and the OS picks a free port;
//! [`Server::local_addr`] exposes the real address, and `qjoin serve` prints it.
//! Tests and CI always bind port 0 so parallel runs never collide.
//!
//! **Shutdown**: any connection sending `shutdown` (or [`ServerHandle::shutdown`])
//! sets a flag, wakes the reactor, and dials the listener once so the blocking
//! accept call returns. The reactor drops parked (idle) connections, workers
//! finish the requests they are executing (in-flight solves are never aborted),
//! and [`Server::run`] joins everything before returning.

use crate::conn::{Conn, FillOutcome};
use crate::metrics::ServerMetrics;
use crate::poll::{self, Poller, Readiness, Waker};
use crate::pool::WorkerPool;
use crate::protocol::Response;
use qjoin_engine::cli::CliSession;
use qjoin_telemetry::{
    with_trace_context, ArgValue, FlightRecorder, SpanId, TraceBuilder, TraceContext,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests. Workers are a concurrency limit on
    /// in-flight request execution, **not** on connections: idle connections park
    /// in the reactor and hold no worker.
    pub workers: usize,
    /// Dispatched-but-unstarted requests the worker queue holds before the
    /// reactor's dispatch blocks (backpressure instead of unbounded pile-up).
    pub queue_depth: usize,
    /// The reactor's sweep tick while connections are parked but quiet. Under
    /// load the reactor is woken by worker completions instead of waiting out the
    /// tick, so this only paces genuinely idle periods (and bounds how fast a
    /// parked connection's newly-arrived bytes are noticed in the worst case).
    pub idle_tick: Duration,
    /// Requests whose queue-wait plus execute time reaches this threshold are
    /// captured in the slow-query log (dumped by the `slowlog` verb).
    pub slow_threshold: Duration,
    /// How many slow requests the ring buffer keeps (newest win); 0 disables
    /// the slow log entirely.
    pub slow_log_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            idle_tick: Duration::from_millis(1),
            slow_threshold: Duration::from_millis(100),
            slow_log_capacity: 128,
        }
    }
}

/// What a finished server run observed (returned by [`Server::run`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and registered with the reactor.
    pub connections: u64,
    /// Requests answered: non-empty command lines whose response was successfully
    /// written back. Empty keep-alive lines and requests whose client vanished
    /// mid-reply are not counted.
    pub requests: u64,
}

/// A handle that can stop a running server from any thread.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
}

impl ServerHandle {
    /// The server's bound address (the real port, even when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: sets the flag, wakes the reactor, and dials the listener
    /// once so the blocking accept call wakes up and observes it. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        // Wildcard binds (0.0.0.0 / ::) are not dialable on every platform; the
        // loopback address with the same port reaches the listener regardless.
        let mut dial = self.addr;
        if dial.ip().is_unspecified() {
            match dial {
                SocketAddr::V4(_) => dial.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => dial.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        // A failed dial is fine — it means the listener is already gone.
        let _ = TcpStream::connect_timeout(&dial, Duration::from_secs(1));
    }
}

/// A bound-but-not-yet-running server (see the module docs).
pub struct Server {
    listener: TcpListener,
    session: Arc<CliSession>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
}

/// One unit of worker work: a connection plus the complete request line the
/// reactor assembled for it. The worker owns the connection exclusively while
/// executing (it was removed from the reactor's registry), which is what makes
/// response writes race-free without per-connection locks.
struct Job {
    conn: Conn,
    line: String,
    /// When the reactor handed the line to the pool — the start of queue-wait.
    enqueued: Instant,
    /// The request's span trace, started by the reactor at dispatch with its
    /// epoch at `enqueued` (so the queue-wait span starts at offset 0). `None`
    /// when the flight recorder is disabled or the line is empty.
    trace: Option<(TraceBuilder, SpanId)>,
}

/// Starts a request span trace whose offsets are measured from `epoch` (the
/// enqueue instant), returning the builder plus the pre-allocated root span id
/// that the lifecycle spans parent to. `None` when tracing is disabled.
fn start_request_trace(
    recorder: &FlightRecorder,
    epoch: Instant,
) -> Option<(TraceBuilder, SpanId)> {
    if !recorder.is_enabled() {
        return None;
    }
    let builder = TraceBuilder::with_epoch(recorder.next_trace_id(), epoch);
    let root = builder.next_span_id();
    Some((builder, root))
}

/// Reactor inbox traffic.
enum ReactorMsg {
    /// A freshly accepted connection to adopt.
    Register(TcpStream),
    /// A connection coming back from a worker that finished its request.
    Done(Conn),
}

impl Server {
    /// Binds a listener (use port 0 for an OS-assigned ephemeral port) serving the
    /// given shared session.
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: Arc<CliSession>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            session,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            poller: Poller::new(),
        })
    }

    /// The actually-bound address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server from another thread (or from a connection's
    /// `shutdown` verb).
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            waker: self.poller.waker(),
        })
    }

    /// Runs the accept loop until shutdown, then drains: requests already
    /// dispatched to workers finish before the pool exits; parked idle
    /// connections are dropped.
    pub fn run(self) -> io::Result<ServerSummary> {
        let handle = self.handle()?;
        let requests = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<ReactorMsg>();
        let waker = self.poller.waker();
        // Request-lifecycle series live in the engine's registry so the
        // `metrics` / `stats json` verbs expose both layers in one scrape.
        let metrics = Arc::new(ServerMetrics::new(
            self.session.engine().registry(),
            self.config.slow_threshold,
            self.config.slow_log_capacity,
        ));

        let pool = {
            let session = Arc::clone(&self.session);
            let handle = handle.clone();
            let requests = Arc::clone(&requests);
            let waker = waker.clone();
            let metrics = Arc::clone(&metrics);
            // Workers return connections through the reactor's inbox. The sender
            // sits behind a mutex only to satisfy the pool's `Sync` handler bound.
            let done_tx = Mutex::new(tx.clone());
            WorkerPool::new(
                "qjoin-worker",
                self.config.workers,
                self.config.queue_depth,
                move |job: Job| {
                    execute_job(
                        job, &session, &handle, &requests, &metrics, &done_tx, &waker,
                    );
                },
            )
        };

        let reactor = Reactor {
            conns: Vec::new(),
            inbox: rx,
            poller: self.poller,
            pool,
            handle: handle.clone(),
            idle_tick: self.config.idle_tick,
            recorder: Arc::clone(self.session.engine().recorder()),
            metrics: Arc::clone(&metrics),
        };
        let reactor_thread = std::thread::Builder::new()
            .name("qjoin-reactor".to_string())
            .spawn(move || reactor.run())?;
        let finish = |connections: u64| -> ServerSummary {
            // Reactor first (it owns the pool), then drain in-flight requests.
            let pool = reactor_thread.join().expect("reactor thread panicked");
            pool.join();
            ServerSummary {
                connections,
                requests: requests.load(Ordering::SeqCst),
            }
        };

        let mut connections = 0u64;
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break; // the waking dial (or a raced real connection) lands here
            }
            match stream {
                Ok(stream) => {
                    connections += 1;
                    if tx.send(ReactorMsg::Register(stream)).is_err() {
                        break; // reactor gone — only happens on shutdown
                    }
                    waker.wake();
                }
                // Transient accept failures (e.g. the peer vanished between
                // accept and handshake) must not kill the server.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    handle.shutdown();
                    drop(tx);
                    finish(connections);
                    return Err(e);
                }
            }
        }
        drop(tx); // after this only workers hold inbox senders
        waker.wake(); // make sure the reactor observes the shutdown flag
        Ok(finish(connections))
    }
}

/// Executes one dispatched request on a worker: write the reply, then either hand
/// the connection back to the reactor or drop it. Already-buffered pipelined
/// lines are served inline (no reactor round-trip) — bounded by what the reactor
/// buffered, since workers never read from the socket.
fn execute_job(
    job: Job,
    session: &CliSession,
    handle: &ServerHandle,
    requests: &AtomicU64,
    metrics: &ServerMetrics,
    done_tx: &Mutex<Sender<ReactorMsg>>,
    waker: &Waker,
) {
    // This job just left the pool queue (pipelined follow-up lines below are
    // served inline and never enter it).
    metrics.queue_exit();
    let recorder = Arc::clone(session.engine().recorder());
    let Job {
        mut conn,
        mut line,
        mut enqueued,
        mut trace,
    } = job;
    loop {
        let picked_up = Instant::now();
        let queue_wait = picked_up.saturating_duration_since(enqueued);
        let trimmed = line.trim();
        // The reactor started the first line's trace at dispatch (epoch =
        // enqueue); pipelined lines start theirs here with (near-)zero wait.
        let trace_now = trace.take().or_else(|| {
            if trimmed.is_empty() {
                None
            } else {
                start_request_trace(&recorder, enqueued)
            }
        });
        // Execute under the request's trace context, so the engine's
        // cache-lookup / coalesce-wait / solve spans attach to this request.
        let (response, action) = match &trace_now {
            Some((builder, root)) => {
                builder.record_new(Some(*root), "queue-wait", enqueued, queue_wait, Vec::new());
                with_trace_context(
                    TraceContext {
                        builder: builder.clone(),
                        parent: *root,
                    },
                    || dispatch(trimmed, session, metrics),
                )
            }
            None => dispatch(trimmed, session, metrics),
        };
        let executed = Instant::now();
        let wrote = conn.write_response(&response).is_ok();
        let write_time = executed.elapsed();
        let trace_id = trace_now.as_ref().map(|(builder, _)| builder.id());
        if let Some((builder, root)) = trace_now {
            builder.record_new(
                Some(root),
                "execute",
                picked_up,
                executed.saturating_duration_since(picked_up),
                Vec::new(),
            );
            builder.record_new(
                Some(root),
                "write",
                executed,
                write_time,
                vec![("ok", ArgValue::Bool(wrote))],
            );
            let mut cmd = trimmed.to_string();
            if cmd.len() > 64 {
                let mut cut = 64;
                while !cmd.is_char_boundary(cut) {
                    cut -= 1;
                }
                cmd.truncate(cut);
            }
            builder.record(
                root,
                None,
                "request",
                enqueued,
                enqueued.elapsed(),
                vec![("cmd", ArgValue::Str(cmd))],
            );
            recorder.push(builder.finish());
        }
        // Count only real served requests: non-empty commands whose reply made it
        // back to the client.
        if wrote && !trimmed.is_empty() {
            requests.fetch_add(1, Ordering::SeqCst);
            metrics.record(
                trimmed,
                queue_wait,
                executed.saturating_duration_since(picked_up),
                write_time,
                trace_id,
            );
        }
        if !wrote {
            return; // client vanished mid-reply; drop the connection
        }
        match action {
            Action::Continue => {}
            Action::Close => return,
            Action::Shutdown => {
                handle.shutdown();
                return;
            }
        }
        match conn.next_line() {
            Some(next) => {
                // Pipelined request served inline: it never sat in the pool
                // queue, so its queue-wait is (near-)zero by construction.
                line = next;
                enqueued = Instant::now();
            }
            None => break,
        }
    }
    if done_tx
        .lock()
        .expect("reactor inbox sender lock poisoned")
        .send(ReactorMsg::Done(conn))
        .is_ok()
    {
        waker.wake();
    }
    // A failed send means the reactor already exited (shutdown): drop the conn.
}

/// What one reactor pass decided about a parked connection.
enum ConnVerdict {
    /// Still parked (index unchanged).
    Parked,
    /// Removed from the registry: dispatched to a worker, closed, or rejected.
    Removed,
}

/// How many consecutive quiet sweeps the reactor spins (with `yield_now`) before
/// parking on the waker. Spinning briefly after activity catches the closed-loop
/// pattern — client reads our response and immediately sends the next request —
/// without eating a full idle tick of latency per request.
const SPIN_SWEEPS: u32 = 64;

/// The reactor: sole owner of every parked connection and of the worker pool.
/// Returns the pool on exit so the server can drain in-flight requests.
struct Reactor {
    conns: Vec<Conn>,
    inbox: Receiver<ReactorMsg>,
    poller: Poller,
    pool: WorkerPool<Job>,
    handle: ServerHandle,
    idle_tick: Duration,
    /// The engine's flight recorder: request traces are started here at
    /// dispatch so queue-wait is measured from the true enqueue instant.
    recorder: Arc<FlightRecorder>,
    /// Queue-depth accounting (enter at dispatch, exit at worker pickup).
    metrics: Arc<ServerMetrics>,
}

impl Reactor {
    fn run(mut self) -> WorkerPool<Job> {
        let mut quiet_sweeps = 0u32;
        loop {
            // Drain the inbox: adopt new connections, re-park finished ones.
            loop {
                match self.inbox.try_recv() {
                    Ok(ReactorMsg::Register(stream)) => {
                        if let Ok(conn) = Conn::new(stream) {
                            self.conns.push(conn);
                        }
                        quiet_sweeps = 0;
                    }
                    Ok(ReactorMsg::Done(conn)) => {
                        self.conns.push(conn);
                        quiet_sweeps = 0;
                    }
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            if self.handle.is_shutdown() {
                // Parked connections are idle by definition — drop them (clients
                // see EOF). In-flight requests drain in the pool join.
                return self.pool;
            }
            // Sweep every parked connection once.
            let mut any_activity = false;
            let mut i = 0;
            while i < self.conns.len() {
                match self.service(i) {
                    ConnVerdict::Parked => i += 1,
                    ConnVerdict::Removed => any_activity = true, // swap_remove'd at i
                }
            }
            if any_activity {
                quiet_sweeps = 0;
                continue;
            }
            quiet_sweeps += 1;
            if quiet_sweeps < SPIN_SWEEPS {
                std::thread::yield_now();
                continue;
            }
            // Long quiet: park. Worker completions, registrations, and shutdown
            // all wake us early; the tick only bounds discovery of bytes that
            // arrive on parked connections with nothing else going on.
            let tick = if self.conns.is_empty() {
                Duration::from_millis(200)
            } else {
                self.idle_tick
            };
            if self.poller.wait(tick) {
                quiet_sweeps = 0;
            }
        }
    }

    /// One pass over one parked connection: enforce the line-length bound, pop a
    /// complete line (dispatch it), otherwise probe + pull in available bytes.
    fn service(&mut self, i: usize) -> ConnVerdict {
        if self.conns[i].over_line_limit() {
            return self.reject_flood(i);
        }
        if let Some(line) = self.conns[i].next_line() {
            return self.dispatch(i, line);
        }
        match poll::probe(self.conns[i].stream()) {
            Readiness::NotReady => return ConnVerdict::Parked,
            Readiness::Closed => {
                self.conns.swap_remove(i);
                return ConnVerdict::Removed;
            }
            Readiness::Readable => {}
        }
        match self.conns[i].fill() {
            FillOutcome::Closed => {
                self.conns.swap_remove(i);
                ConnVerdict::Removed
            }
            FillOutcome::Progress | FillOutcome::Idle => {
                if self.conns[i].over_line_limit() {
                    return self.reject_flood(i);
                }
                match self.conns[i].next_line() {
                    Some(line) => self.dispatch(i, line),
                    None => ConnVerdict::Parked, // partial line stays buffered
                }
            }
        }
    }

    /// Hands a complete request line to the pool. The connection moves out of the
    /// registry — the worker owns it exclusively until it comes back via `Done`.
    /// Blocks when the queue is full: natural backpressure, bounded by
    /// `queue_depth` dispatched-but-unstarted requests.
    fn dispatch(&mut self, i: usize, line: String) -> ConnVerdict {
        let conn = self.conns.swap_remove(i);
        let enqueued = Instant::now();
        // Start the request's trace now so its queue-wait span measures the
        // full dispatch-to-pickup latency (empty keep-alive lines are never
        // traced; they are not requests).
        let trace = if line.trim().is_empty() {
            None
        } else {
            start_request_trace(&self.recorder, enqueued)
        };
        self.metrics.queue_enter();
        // Submit can only fail after the pool shut down, which cannot happen
        // while the reactor owns it; the conn would just be dropped.
        let _ = self.pool.submit(Job {
            conn,
            line,
            enqueued,
            trace,
        });
        ConnVerdict::Removed
    }

    /// An over-long request line: say why, then close. (The old server closed
    /// silently, leaving clients to guess.)
    fn reject_flood(&mut self, i: usize) -> ConnVerdict {
        let mut conn = self.conns.swap_remove(i);
        let _ = conn.write_response(&Response::error("line too long"));
        ConnVerdict::Removed
    }
}

/// What the worker does after writing a response.
enum Action {
    Continue,
    Close,
    Shutdown,
}

/// Maps one request line to a response plus the follow-up action. Connection-level
/// verbs (`ping`, `quit`/`exit`, `shutdown`, `slowlog`) are intercepted here;
/// everything else is the shared REPL command language. The shutdown flag itself
/// is set by the caller *after* the reply is written, so the client always sees
/// the confirmation.
fn dispatch(line: &str, session: &CliSession, metrics: &ServerMetrics) -> (Response, Action) {
    match line.split_whitespace().next() {
        None => (Response::Ok(Vec::new()), Action::Continue),
        Some("ping") => (Response::Ok(vec!["pong".to_string()]), Action::Continue),
        Some("quit") | Some("exit") => (Response::Ok(vec!["bye".to_string()]), Action::Close),
        Some("shutdown") => (
            Response::Ok(vec!["shutting down".to_string()]),
            Action::Shutdown,
        ),
        Some("slowlog") => (
            Response::from_text(&metrics.slowlog_dump()),
            Action::Continue,
        ),
        Some(_) => match session.execute(line) {
            Ok(output) => (Response::from_text(&output), Action::Continue),
            // The REPL signals quit via a sentinel; treat it like `quit` for safety.
            Err(e) if e == "__quit__" => (Response::Ok(vec!["bye".to_string()]), Action::Close),
            Err(e) => (Response::error(e), Action::Continue),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server(
        config: ServerConfig,
    ) -> (ServerHandle, std::thread::JoinHandle<ServerSummary>) {
        let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), config).unwrap();
        let handle = server.handle().unwrap();
        let join = std::thread::spawn(move || server.run().unwrap());
        (handle, join)
    }

    #[test]
    fn binds_an_ephemeral_port_and_exposes_it() {
        let (a, ja) = spawn_server(ServerConfig::default());
        let (b, jb) = spawn_server(ServerConfig::default());
        assert_ne!(a.addr().port(), 0);
        assert_ne!(b.addr().port(), 0);
        assert_ne!(a.addr(), b.addr(), "two ephemeral servers must not collide");
        a.shutdown();
        b.shutdown();
        ja.join().unwrap();
        jb.join().unwrap();
    }

    #[test]
    fn handle_shutdown_stops_a_server_with_no_traffic() {
        let (handle, join) = spawn_server(ServerConfig::default());
        assert!(!handle.is_shutdown());
        handle.shutdown();
        let summary = join.join().unwrap();
        assert!(handle.is_shutdown());
        // The waking dial may or may not be counted as a connection, but no
        // requests were ever answered.
        assert_eq!(summary.requests, 0);
    }
}
