//! One multiplexed connection: a nonblocking [`TcpStream`] plus its line-assembly
//! buffer.
//!
//! In the readiness-based server no thread ever blocks on a connection read.
//! Instead the reactor [`Conn::fill`]s whatever bytes are available right now,
//! [`Conn::next_line`] pops complete request lines out of the buffer, and partial
//! lines simply stay buffered until more bytes arrive — a connection that goes
//! idle mid-line costs a parked `Conn` in the reactor's registry, not a worker
//! thread.
//!
//! Flood protection: a single request line may not exceed [`MAX_LINE_BYTES`].
//! [`Conn::over_line_limit`] flags a violation (whether the newline eventually
//! arrived or not) and the server replies `err line too long` before dropping the
//! connection — the one protocol error that is fatal to the conversation.

use crate::protocol::Response;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted request line (bytes, including the terminator). Anything
/// larger is answered with `err line too long` and the connection is closed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long [`Conn::write_response`] retries `WouldBlock` before giving up.
/// Responses are small (a handful of short lines), so a full send buffer clears
/// in microseconds unless the client has genuinely stalled.
const WRITE_PATIENCE: Duration = Duration::from_secs(5);

/// What one [`Conn::fill`] call observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// At least one byte was read into the buffer.
    Progress,
    /// Nothing available right now (`WouldBlock`).
    Idle,
    /// EOF or a transport error — the connection is done.
    Closed,
}

/// A nonblocking connection with buffered line assembly (see the module docs).
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream, switching it to nonblocking mode.
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// The underlying stream (for readiness probing).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads everything currently available into the buffer without blocking.
    pub fn fill(&mut self) -> FillOutcome {
        let mut chunk = [0u8; 4096];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut chunk) {
                // EOF after progress: report the progress first so already-received
                // complete lines get served; the close is re-observed next sweep.
                Ok(0) if progressed => break,
                Ok(0) => return FillOutcome::Closed,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                    if self.over_line_limit() {
                        // Stop buffering a flood; the caller replies and drops us.
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FillOutcome::Closed,
            }
        }
        if progressed {
            FillOutcome::Progress
        } else {
            FillOutcome::Idle
        }
    }

    /// True when the buffered (complete or still-partial) first line exceeds
    /// [`MAX_LINE_BYTES`]. Check this **before** [`Conn::next_line`].
    pub fn over_line_limit(&self) -> bool {
        match self.buf.iter().position(|&b| b == b'\n') {
            Some(pos) => pos > MAX_LINE_BYTES,
            None => self.buf.len() > MAX_LINE_BYTES,
        }
    }

    /// Pops the first complete line out of the buffer, if one is there. The
    /// terminator (and a preceding `\r`) is stripped; invalid UTF-8 is replaced
    /// lossily (the dispatcher then rejects the garbled verb).
    pub fn next_line(&mut self) -> Option<String> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let raw: Vec<u8> = self.buf.drain(..=pos).collect();
        let mut line = String::from_utf8_lossy(&raw).into_owned();
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Some(line)
    }

    /// Writes one framed response, retrying `WouldBlock` (bounded by a 5-second
    /// patience deadline) since the stream is nonblocking.
    pub fn write_response(&mut self, response: &Response) -> io::Result<()> {
        let mut wire = Vec::new();
        response.write_to(&mut wire)?;
        self.write_all_nonblocking(&wire)
    }

    fn write_all_nonblocking(&mut self, mut data: &[u8]) -> io::Result<()> {
        let deadline = Instant::now() + WRITE_PATIENCE;
        while !data.is_empty() {
            match self.stream.write(data) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => data = &data[n..],
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::ErrorKind::TimedOut.into());
                    }
                    // The kernel send buffer is full; tiny responses clear fast.
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, Conn::new(server).unwrap())
    }

    fn fill_until_progress(conn: &mut Conn) {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match conn.fill() {
                FillOutcome::Progress => return,
                FillOutcome::Idle => {
                    assert!(Instant::now() < deadline, "no bytes ever arrived");
                    std::thread::yield_now();
                }
                FillOutcome::Closed => panic!("peer closed unexpectedly"),
            }
        }
    }

    #[test]
    fn assembles_lines_across_partial_reads() {
        let (mut client, mut conn) = pair();
        client.write_all(b"pi").unwrap();
        fill_until_progress(&mut conn);
        assert_eq!(conn.next_line(), None, "half a line is not a line");

        client.write_all(b"ng\r\nquit\n").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let line = loop {
            if let Some(line) = conn.next_line() {
                break line;
            }
            assert!(Instant::now() < deadline, "line never completed");
            conn.fill();
        };
        assert_eq!(line, "ping", "terminators (\\r\\n) must be stripped");
        assert_eq!(conn.next_line().as_deref(), Some("quit"));
    }

    #[test]
    fn reports_eof_as_closed() {
        let (client, mut conn) = pair();
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(2);
        while conn.fill() != FillOutcome::Closed {
            assert!(Instant::now() < deadline);
            std::thread::yield_now();
        }
    }

    #[test]
    fn flags_over_long_lines_with_and_without_newline() {
        let (mut client, mut conn) = pair();
        // A newline-free flood just over the limit.
        let flood = vec![b'x'; MAX_LINE_BYTES + 10];
        client.write_all(&flood).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !conn.over_line_limit() {
            assert!(Instant::now() < deadline, "flood never tripped the limit");
            conn.fill();
        }
        assert!(conn.next_line().is_none() || conn.over_line_limit());
    }

    #[test]
    fn short_lines_under_the_limit_are_fine() {
        let (mut client, mut conn) = pair();
        client.write_all(b"hello world\n").unwrap();
        fill_until_progress(&mut conn);
        assert!(!conn.over_line_limit());
        assert_eq!(conn.next_line().as_deref(), Some("hello world"));
    }

    #[test]
    fn writes_responses_the_blocking_client_can_read() {
        let (client, mut conn) = pair();
        conn.write_response(&Response::Ok(vec!["pong".into()]))
            .unwrap();
        let mut reader = std::io::BufReader::new(client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok 1\n");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "pong\n");
    }
}
