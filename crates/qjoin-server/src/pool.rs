//! A bounded worker thread pool, std-only.
//!
//! Jobs are fed through an [`mpsc::sync_channel`], so [`WorkerPool::submit`] blocks
//! once the queue holds `queue_depth` unstarted jobs — natural backpressure for the
//! accept loop instead of unbounded connection pile-up. Workers share the receiver
//! behind a mutex and run the (shared) handler on each job.
//!
//! Dropping or [`WorkerPool::join`]ing the pool closes the channel; workers drain
//! whatever is already queued, then exit, and `join` waits for them — this is the
//! mechanism behind the server's graceful shutdown.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// A fixed-size pool of named worker threads consuming jobs from a bounded queue.
pub struct WorkerPool<T: Send + 'static> {
    sender: Option<mpsc::SyncSender<T>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads (at least 1) named `{name}-{i}`, each running
    /// `handler` on every job it pulls. The queue holds at most `queue_depth`
    /// not-yet-started jobs (at least 1).
    pub fn new(
        name: &str,
        workers: usize,
        queue_depth: usize,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> Self {
        let (sender, receiver) = mpsc::sync_channel::<T>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while popping, never while
                        // handling, so other workers keep draining the queue.
                        let job = receiver.lock().unwrap().recv();
                        match job {
                            Ok(job) => handler(job),
                            Err(_) => break, // channel closed and drained
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job, blocking while the queue is full. Returns the job back if the
    /// pool is already shut down (cannot happen while the pool is alive, since `join`
    /// consumes it — but kept total for safety).
    pub fn submit(&self, job: T) -> Result<(), T> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }

    /// Closes the queue, lets the workers drain every already-queued job, and waits
    /// for them to exit.
    pub fn join(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        drop(self.sender.take()); // closes the channel
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_jobs_run_even_across_join() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("t", 4, 8, move |n: usize| {
                thread::sleep(Duration::from_millis(n as u64 % 3));
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        for i in 0..32 {
            pool.submit(i).unwrap();
        }
        pool.join(); // must drain everything queued before returning
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new("t", 0, 0, move |_: ()| {
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert_eq!(pool.workers(), 1);
        pool.submit(()).unwrap();
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn submit_blocks_on_a_full_queue_instead_of_dropping() {
        // 1 worker, queue depth 1. The worker is parked on a gate, so: job 1 is
        // being handled (blocked), job 2 fills the queue, and job 3's submit must
        // *block* until the worker frees a slot — never drop or error.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let handled = Arc::new(AtomicUsize::new(0));
        let pool = Arc::new({
            let (gate, handled) = (Arc::clone(&gate), Arc::clone(&handled));
            WorkerPool::new("t", 1, 1, move |n: usize| {
                if n == 0 {
                    gate.wait(); // hold the worker until the test releases it
                }
                handled.fetch_add(1, Ordering::SeqCst);
            })
        });
        pool.submit(0).unwrap(); // picked up by the worker, which parks on `gate`
        pool.submit(1).unwrap(); // sits in the queue (now full)
        let blocked_submit = {
            let pool = Arc::clone(&pool);
            let submitted = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let flag = Arc::clone(&submitted);
            let t = thread::spawn(move || {
                pool.submit(2).unwrap();
                flag.store(true, Ordering::SeqCst);
            });
            (t, submitted)
        };
        // The third submit must still be blocked while the queue is full.
        thread::sleep(Duration::from_millis(100));
        assert!(
            !blocked_submit.1.load(Ordering::SeqCst),
            "submit returned with the queue still full"
        );
        assert_eq!(handled.load(Ordering::SeqCst), 0);
        // Release the worker: the queue drains and the blocked submit completes.
        gate.wait();
        blocked_submit.0.join().unwrap();
        assert!(blocked_submit.1.load(Ordering::SeqCst));
        let pool = Arc::try_unwrap(pool).unwrap_or_else(|_| panic!("pool still shared"));
        pool.join();
        assert_eq!(handled.load(Ordering::SeqCst), 3, "no job was dropped");
    }

    #[test]
    fn jobs_are_distributed_across_workers() {
        // With 4 workers and jobs that block until all workers are busy, every
        // worker must pick up work (a single-threaded pool would deadlock here,
        // so completing at all proves distribution).
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let pool = {
            let barrier = Arc::clone(&barrier);
            WorkerPool::new("t", 4, 4, move |_: ()| {
                barrier.wait();
            })
        };
        for _ in 0..4 {
            pool.submit(()).unwrap();
        }
        pool.join();
    }
}
