//! # qjoin-server
//!
//! A **concurrent network serving layer** over the thread-safe quantile engine:
//! where `qjoin-engine` answers quantile requests in-process, this crate puts a TCP
//! front end on one shared [`qjoin_engine::Engine`] so many clients can probe
//! quantiles at once — the serving workload the paper's near-linear per-query
//! bounds make attractive.
//!
//! Everything is **std-only**: `std::net` sockets, `std::thread` workers, a
//! libc-free readiness layer, and a line-delimited text protocol. Connections are
//! **multiplexed**: a reactor thread parks nonblocking connections and dispatches
//! complete request lines to the worker pool, so idle connections cost zero
//! worker threads, and concurrent cold requests for the same quantile coalesce
//! into one shared batched solve inside the engine. The pieces:
//!
//! | Component | Module |
//! |---|---|
//! | wire format (framing, verbs, errors) | [`protocol`] |
//! | readiness probing + wakeable parking (std-only) | [`poll`] |
//! | nonblocking connection + line assembly | [`conn`] |
//! | bounded worker thread pool | [`pool`] |
//! | accept loop + reactor + graceful drain | [`server`] |
//! | request lifecycle timing + slow-query log | [`metrics`] |
//! | blocking client library | [`client`] |
//!
//! The crate also ships the `qjoin` binary: all of the engine CLI's subcommands
//! (REPL, one-shot `register`/`quantile`/`batch`/`stats`) plus `qjoin serve` and
//! `qjoin client` for the network path.
//!
//! ## Quick example
//!
//! ```
//! use qjoin_engine::cli::CliSession;
//! use qjoin_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! // Bind an ephemeral port (never collides across parallel test runs).
//! let server = Server::bind("127.0.0.1:0", Arc::new(CliSession::new()), ServerConfig::default())
//!     .unwrap();
//! let addr = server.local_addr().unwrap();
//! let join = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! client.send("open s social rows=60 seed=3").unwrap();
//! client.send("register likes s").unwrap();
//! let answer = client.quantile("likes", 0.5).unwrap();
//! assert!(answer.contains("phi=0.5000"));
//! client.shutdown().unwrap();   // drains workers and stops the accept loop
//! join.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod metrics;
pub mod poll;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use conn::{Conn, MAX_LINE_BYTES};
pub use metrics::ServerMetrics;
pub use poll::{Poller, Readiness, Waker};
pub use pool::WorkerPool;
pub use protocol::{ProtocolError, Response, MAX_PAYLOAD_LINES};
pub use server::{Server, ServerConfig, ServerHandle, ServerSummary};
