//! Attribute-weight → tuple-weight conversion for SUM (Section 2.2, "Tuple weights").
//!
//! Several constructions (the adjacent-node SUM trimming of Lemma 5.5 and the lossy
//! trimming of Algorithm 4) reason about the *partial sum carried by one tuple*. To
//! avoid counting a variable's weight more than once when it occurs in several atoms,
//! the paper fixes a mapping `μ` assigning every weighted variable to exactly one atom
//! that contains it; the weight of a tuple of relation `R` is then the sum of the
//! weights of the variables assigned to `R`.

use crate::Ranking;
use qjoin_data::Tuple;
use qjoin_query::{JoinQuery, Variable};

/// The per-atom partial-sum evaluator induced by a mapping `μ` from weighted variables
/// to atoms.
///
/// This type is specific to SUM-like (numeric, additive) rankings; MIN/MAX and LEX
/// trimmings operate on per-variable unary predicates and do not need tuple weights.
#[derive(Clone, Debug)]
pub struct SumTupleWeights {
    /// For every atom index: the weighted variables assigned to it by `μ`, with the
    /// position at which each occurs in that atom.
    per_atom: Vec<Vec<(Variable, usize)>>,
}

impl SumTupleWeights {
    /// Builds the default mapping `μ`: every weighted variable is assigned to the
    /// first atom (by index) containing it. The query must contain every weighted
    /// variable; variables it does not contain are ignored.
    pub fn new(query: &JoinQuery, ranking: &Ranking) -> Self {
        Self::with_preferred_atoms(query, ranking, &[])
    }

    /// Builds a mapping `μ` that prefers the given atoms: a weighted variable occurring
    /// in one of `preferred` (in order) is assigned there; otherwise it falls back to
    /// its first containing atom. The adjacent-node SUM trimming uses this to force all
    /// weighted variables onto the two adjacent join-tree nodes it operates on.
    pub fn with_preferred_atoms(query: &JoinQuery, ranking: &Ranking, preferred: &[usize]) -> Self {
        let mut per_atom: Vec<Vec<(Variable, usize)>> = vec![Vec::new(); query.num_atoms()];
        for var in ranking.weighted_vars() {
            let preferred_home = preferred
                .iter()
                .copied()
                .find(|&a| query.atom(a).contains(var));
            let home = preferred_home.or_else(|| query.atoms_containing(var).first().copied());
            if let Some(atom_idx) = home {
                let pos = query.atom(atom_idx).positions_of(var)[0];
                per_atom[atom_idx].push((var.clone(), pos));
            }
        }
        SumTupleWeights { per_atom }
    }

    /// The weighted variables assigned to the given atom.
    pub fn vars_of_atom(&self, atom_idx: usize) -> impl Iterator<Item = &Variable> {
        self.per_atom[atom_idx].iter().map(|(v, _)| v)
    }

    /// True if no weighted variable is assigned to the given atom (its tuples all have
    /// partial sum 0).
    pub fn atom_is_unweighted(&self, atom_idx: usize) -> bool {
        self.per_atom[atom_idx].is_empty()
    }

    /// The partial sum `w_R(t)` carried by a tuple of the given atom.
    pub fn tuple_sum(&self, ranking: &Ranking, atom_idx: usize, tuple: &Tuple) -> f64 {
        self.per_atom[atom_idx]
            .iter()
            .map(|(var, pos)| ranking.var_weight(var, &tuple[*pos]))
            .sum()
    }

    /// The atoms that received at least one weighted variable.
    pub fn weighted_atoms(&self) -> Vec<usize> {
        self.per_atom
            .iter()
            .enumerate()
            .filter(|(_, vars)| !vars.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_data::Value;
    use qjoin_query::query::{path_query, social_network_query};
    use qjoin_query::variable::vars;

    #[test]
    fn each_weighted_variable_is_assigned_exactly_once() {
        // In the 3-path, x2 occurs in R1 and R2; with full SUM it must contribute once.
        let q = path_query(3);
        let r = Ranking::sum(q.variables());
        let tw = SumTupleWeights::new(&q, &r);
        let total_assigned: usize = (0..q.num_atoms()).map(|a| tw.vars_of_atom(a).count()).sum();
        assert_eq!(total_assigned, q.variables().len());
        // Summing tuple sums over one answer equals the answer's SUM weight.
        let t1 = Tuple::from(vec![1i64, 2]);
        let t2 = Tuple::from(vec![2i64, 3]);
        let t3 = Tuple::from(vec![3i64, 4]);
        let total = tw.tuple_sum(&r, 0, &t1) + tw.tuple_sum(&r, 1, &t2) + tw.tuple_sum(&r, 2, &t3);
        assert_eq!(total, 1.0 + 2.0 + 3.0 + 4.0);
    }

    #[test]
    fn partial_sum_ignores_unweighted_variables() {
        let q = social_network_query();
        let r = Ranking::sum(vars(&["l2", "l3"]));
        let tw = SumTupleWeights::new(&q, &r);
        // Admin(u1, e) carries no weighted variable.
        assert!(tw.atom_is_unweighted(0));
        assert_eq!(tw.weighted_atoms(), vec![1, 2]);
        let share_tuple = Tuple::from(vec![7i64, 100, 42]);
        assert_eq!(tw.tuple_sum(&r, 1, &share_tuple), 42.0);
    }

    #[test]
    fn preferred_atoms_override_first_occurrence() {
        // x2 occurs in atoms 0 and 1 of the 2-path; prefer atom 1.
        let q = path_query(2);
        let r = Ranking::sum(vars(&["x2"]));
        let tw = SumTupleWeights::with_preferred_atoms(&q, &r, &[1]);
        assert!(tw.atom_is_unweighted(0));
        assert_eq!(tw.weighted_atoms(), vec![1]);
        assert_eq!(
            tw.tuple_sum(&r, 1, &Tuple::from(vec![5i64, 9])),
            5.0,
            "x2 is the first column of R2"
        );
    }

    #[test]
    fn custom_weight_functions_flow_through() {
        let q = path_query(2);
        let r = Ranking::sum(vars(&["x1", "x3"])).with_weight_fn(
            qjoin_query::Variable::new("x3"),
            crate::WeightFn::Affine {
                scale: 10.0,
                offset: 0.0,
            },
        );
        let tw = SumTupleWeights::new(&q, &r);
        assert_eq!(tw.tuple_sum(&r, 0, &Tuple::from(vec![2i64, 7])), 2.0);
        assert_eq!(tw.tuple_sum(&r, 1, &Tuple::from(vec![7i64, 3])), 30.0);
    }

    #[test]
    fn variables_missing_from_query_are_ignored() {
        let q = path_query(2);
        let r = Ranking::sum(vars(&["x1", "zz"]));
        let tw = SumTupleWeights::new(&q, &r);
        let total_assigned: usize = (0..q.num_atoms()).map(|a| tw.vars_of_atom(a).count()).sum();
        assert_eq!(total_assigned, 1);
    }

    #[test]
    fn non_numeric_values_contribute_zero_under_identity() {
        let q = path_query(2);
        let r = Ranking::sum(vars(&["x1", "x2"]));
        let tw = SumTupleWeights::new(&q, &r);
        let t = Tuple::new(vec![Value::from("a"), Value::from(4)]);
        assert_eq!(tw.tuple_sum(&r, 0, &t), 4.0);
    }
}
