//! Ranking predicates `w(U_w) ≺ λ` and `w(U_w) ≻ λ`.

use crate::{Ranking, Weight, WeightBound};
use std::fmt;

/// The comparison direction of a ranking predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `w(U_w) ≺ λ` — keep answers strictly below the bound.
    Lt,
    /// `w(U_w) ≻ λ` — keep answers strictly above the bound.
    Gt,
}

impl CmpOp {
    /// The opposite direction.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
        }
    }
}

/// A predicate comparing the ranking weight of an answer against a bound.
///
/// These are exactly the predicates the partitioning step of the divide-and-conquer
/// framework produces (Section 3): the less-than and greater-than splits around a pivot
/// weight, and the `low` / `high` bounds accumulated across iterations. A bound may be
/// the sentinel `⊥` or `⊤`, in which case the predicate is trivially true for `≻ ⊥` and
/// `≺ ⊤` (and trimming it is a no-op).
#[derive(Clone, Debug, PartialEq)]
pub struct RankPredicate {
    /// Comparison direction.
    pub op: CmpOp,
    /// The bound `λ`.
    pub bound: WeightBound,
}

impl RankPredicate {
    /// `w(U_w) ≺ λ`.
    pub fn less_than(bound: impl Into<WeightBound>) -> Self {
        RankPredicate {
            op: CmpOp::Lt,
            bound: bound.into(),
        }
    }

    /// `w(U_w) ≻ λ`.
    pub fn greater_than(bound: impl Into<WeightBound>) -> Self {
        RankPredicate {
            op: CmpOp::Gt,
            bound: bound.into(),
        }
    }

    /// True if the predicate holds for every possible weight (so trimming it changes
    /// nothing): `≺ ⊤` or `≻ ⊥`.
    pub fn is_trivial(&self) -> bool {
        matches!(
            (self.op, &self.bound),
            (CmpOp::Lt, WeightBound::PosInf) | (CmpOp::Gt, WeightBound::NegInf)
        )
    }

    /// True if the predicate can never hold: `≺ ⊥` or `≻ ⊤`.
    pub fn is_unsatisfiable(&self) -> bool {
        matches!(
            (self.op, &self.bound),
            (CmpOp::Lt, WeightBound::NegInf) | (CmpOp::Gt, WeightBound::PosInf)
        )
    }

    /// Evaluates the predicate on a concrete answer weight.
    pub fn satisfied_by(&self, ranking: &Ranking, weight: &Weight) -> bool {
        match (&self.bound, self.op) {
            (WeightBound::NegInf, CmpOp::Lt) | (WeightBound::PosInf, CmpOp::Gt) => false,
            (WeightBound::NegInf, CmpOp::Gt) | (WeightBound::PosInf, CmpOp::Lt) => true,
            (WeightBound::Finite(bound), CmpOp::Lt) => {
                ranking.compare(weight, bound) == std::cmp::Ordering::Less
            }
            (WeightBound::Finite(bound), CmpOp::Gt) => {
                ranking.compare(weight, bound) == std::cmp::Ordering::Greater
            }
        }
    }

    /// The finite bound, if the predicate has one.
    pub fn finite_bound(&self) -> Option<&Weight> {
        self.bound.as_finite()
    }
}

impl fmt::Display for RankPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        };
        write!(f, "w(U_w) {op} {}", self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_query::variable::vars;

    #[test]
    fn satisfied_by_compares_against_finite_bounds() {
        let r = Ranking::sum(vars(&["x"]));
        let lt = RankPredicate::less_than(Weight::num(5.0));
        assert!(lt.satisfied_by(&r, &Weight::num(4.9)));
        assert!(!lt.satisfied_by(&r, &Weight::num(5.0)));
        let gt = RankPredicate::greater_than(Weight::num(5.0));
        assert!(gt.satisfied_by(&r, &Weight::num(5.1)));
        assert!(!gt.satisfied_by(&r, &Weight::num(5.0)));
    }

    #[test]
    fn sentinel_bounds_are_trivial_or_unsatisfiable() {
        let trivially_true = RankPredicate {
            op: CmpOp::Gt,
            bound: WeightBound::NegInf,
        };
        assert!(trivially_true.is_trivial());
        assert!(!trivially_true.is_unsatisfiable());

        let never = RankPredicate {
            op: CmpOp::Lt,
            bound: WeightBound::NegInf,
        };
        assert!(never.is_unsatisfiable());
        let r = Ranking::sum(vars(&["x"]));
        assert!(!never.satisfied_by(&r, &Weight::num(-1e300)));
        assert!(trivially_true.satisfied_by(&r, &Weight::num(-1e300)));
    }

    #[test]
    fn flipped_swaps_direction() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Gt.flipped(), CmpOp::Lt);
    }

    #[test]
    fn lex_predicates_compare_vectors() {
        let r = Ranking::lex(vars(&["a", "b"]));
        let p = RankPredicate::less_than(Weight::Vec(vec![2.0, 0.0]));
        assert!(p.satisfied_by(&r, &Weight::Vec(vec![1.0, 100.0])));
        assert!(!p.satisfied_by(&r, &Weight::Vec(vec![2.0, 0.0])));
    }

    #[test]
    fn display_shows_direction_and_bound() {
        assert_eq!(
            RankPredicate::less_than(Weight::num(3.0)).to_string(),
            "w(U_w) < 3"
        );
        assert_eq!(
            RankPredicate::greater_than(WeightBound::NegInf).to_string(),
            "w(U_w) > ⊥"
        );
    }

    #[test]
    fn finite_bound_accessor() {
        assert_eq!(
            RankPredicate::less_than(Weight::num(1.0)).finite_bound(),
            Some(&Weight::num(1.0))
        );
        assert_eq!(
            RankPredicate::greater_than(WeightBound::PosInf).finite_bound(),
            None
        );
    }
}
