//! The weight domain `dom_w` and its total order.

use std::cmp::Ordering;
use std::fmt;

/// A weight from the weight domain `dom_w`.
///
/// Two shapes are supported, matching the concrete ranking functions of the paper:
///
/// * [`Weight::Num`] — a real number, used by SUM, MIN, and MAX;
/// * [`Weight::Vec`] — a vector of reals compared lexicographically, used by LEX.
///
/// The total order is implemented with [`f64::total_cmp`], so `NaN`s (which the
/// library never produces) would still order deterministically. A single ranking
/// function only ever produces one of the two shapes; across shapes, numbers order
/// before vectors so that [`Ord`] stays total.
#[derive(Clone, Debug, PartialEq)]
pub enum Weight {
    /// A scalar weight.
    Num(f64),
    /// A vector weight compared lexicographically (shorter vectors are padded with
    /// zeros conceptually; in practice all vectors of one ranking share a length).
    Vec(Vec<f64>),
}

impl Weight {
    /// Builds a scalar weight.
    pub fn num(x: f64) -> Self {
        Weight::Num(x)
    }

    /// The scalar payload, if this is a scalar weight.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Weight::Num(x) => Some(*x),
            Weight::Vec(_) => None,
        }
    }

    /// The vector payload, if this is a vector weight.
    pub fn as_vec(&self) -> Option<&[f64]> {
        match self {
            Weight::Num(_) => None,
            Weight::Vec(v) => Some(v),
        }
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Weight::Num(a), Weight::Num(b)) => a.total_cmp(b),
            (Weight::Vec(a), Weight::Vec(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Weight::Num(_), Weight::Vec(_)) => Ordering::Less,
            (Weight::Vec(_), Weight::Num(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Weight::Num(x) => write!(f, "{x}"),
            Weight::Vec(v) => {
                write!(f, "(")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A weight extended with the `⊥` (below everything) and `⊤` (above everything)
/// sentinels.
///
/// The quantile driver (Algorithm 1) tracks the candidate region with two bounds
/// `low` and `high`, initialized to `⊥` and `⊤`; trimming against a sentinel bound is
/// a no-op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WeightBound {
    /// Below every weight.
    NegInf,
    /// An ordinary weight.
    Finite(Weight),
    /// Above every weight.
    PosInf,
}

impl WeightBound {
    /// The finite payload, if any.
    pub fn as_finite(&self) -> Option<&Weight> {
        match self {
            WeightBound::Finite(w) => Some(w),
            _ => None,
        }
    }

    /// True for `⊥` or `⊤`.
    pub fn is_infinite(&self) -> bool {
        !matches!(self, WeightBound::Finite(_))
    }
}

impl PartialOrd for WeightBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WeightBound {
    fn cmp(&self, other: &Self) -> Ordering {
        use WeightBound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl From<Weight> for WeightBound {
    fn from(w: Weight) -> Self {
        WeightBound::Finite(w)
    }
}

impl fmt::Display for WeightBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightBound::NegInf => write!(f, "⊥"),
            WeightBound::Finite(w) => write!(f, "{w}"),
            WeightBound::PosInf => write!(f, "⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_weights_order_numerically() {
        assert!(Weight::num(1.0) < Weight::num(2.0));
        assert!(Weight::num(-5.0) < Weight::num(0.0));
        assert_eq!(Weight::num(3.0), Weight::num(3.0));
    }

    #[test]
    fn vector_weights_order_lexicographically() {
        let a = Weight::Vec(vec![1.0, 9.0]);
        let b = Weight::Vec(vec![2.0, 0.0]);
        let c = Weight::Vec(vec![1.0, 10.0]);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
        assert!(Weight::Vec(vec![1.0]) < Weight::Vec(vec![1.0, 0.0]));
    }

    #[test]
    fn mixed_shapes_have_a_deterministic_order() {
        assert!(Weight::num(1e12) < Weight::Vec(vec![0.0]));
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Weight::num(2.5).as_num(), Some(2.5));
        assert_eq!(Weight::num(2.5).as_vec(), None);
        assert_eq!(Weight::Vec(vec![1.0]).as_vec(), Some(&[1.0][..]));
    }

    #[test]
    fn bounds_sandwich_all_finite_weights() {
        let w = WeightBound::Finite(Weight::num(1e300));
        assert!(WeightBound::NegInf < w);
        assert!(w < WeightBound::PosInf);
        assert!(WeightBound::NegInf < WeightBound::PosInf);
        assert_eq!(
            WeightBound::Finite(Weight::num(1.0)).cmp(&WeightBound::Finite(Weight::num(1.0))),
            Ordering::Equal
        );
    }

    #[test]
    fn bound_accessors() {
        assert!(WeightBound::NegInf.is_infinite());
        assert!(!WeightBound::Finite(Weight::num(0.0)).is_infinite());
        assert_eq!(
            WeightBound::Finite(Weight::num(2.0)).as_finite(),
            Some(&Weight::num(2.0))
        );
        assert_eq!(WeightBound::PosInf.as_finite(), None);
    }

    #[test]
    fn display_renders_sentinels() {
        assert_eq!(WeightBound::NegInf.to_string(), "⊥");
        assert_eq!(WeightBound::PosInf.to_string(), "⊤");
        assert_eq!(Weight::Vec(vec![1.0, 2.0]).to_string(), "(1, 2)");
    }

    #[test]
    fn sorting_weights_is_stable_and_total() {
        let mut ws = vec![
            Weight::num(3.0),
            Weight::num(-1.0),
            Weight::num(2.0),
            Weight::num(2.0),
        ];
        ws.sort();
        assert_eq!(
            ws,
            vec![
                Weight::num(-1.0),
                Weight::num(2.0),
                Weight::num(2.0),
                Weight::num(3.0)
            ]
        );
    }
}
