//! Per-variable input-weight functions `w_x : dom → ℝ`.

use qjoin_data::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An input-weight function assigning a real weight to every domain value of one
/// variable (Section 2.2, "Weight aggregation model").
///
/// The worked examples of the paper use "attribute weights equal to their values",
/// which is [`WeightFn::Identity`]; the other variants cover constants, affine
/// re-scaling, explicit lookup tables, and arbitrary user code.
#[derive(Clone, Default)]
pub enum WeightFn {
    /// `w_x(v) = v` for integer values; non-numeric values map to 0.
    #[default]
    Identity,
    /// `w_x(v) = c` for every value.
    Constant(f64),
    /// `w_x(v) = scale · v + offset` for integer values; non-numeric values map to
    /// `offset`.
    Affine {
        /// Multiplicative factor applied to the numeric value.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
    /// Explicit lookup table with a default for unmapped values.
    Table {
        /// Value-to-weight table.
        table: Arc<HashMap<Value, f64>>,
        /// Weight of values missing from the table.
        default: f64,
    },
    /// Arbitrary user-provided weight function.
    Custom(Arc<dyn Fn(&Value) -> f64 + Send + Sync>),
}

impl WeightFn {
    /// Builds a lookup-table weight function.
    pub fn table(entries: impl IntoIterator<Item = (Value, f64)>, default: f64) -> Self {
        WeightFn::Table {
            table: Arc::new(entries.into_iter().collect()),
            default,
        }
    }

    /// Builds a custom weight function from a closure.
    pub fn custom(f: impl Fn(&Value) -> f64 + Send + Sync + 'static) -> Self {
        WeightFn::Custom(Arc::new(f))
    }

    /// Evaluates the weight of a value.
    pub fn apply(&self, value: &Value) -> f64 {
        match self {
            WeightFn::Identity => value.as_f64().unwrap_or(0.0),
            WeightFn::Constant(c) => *c,
            WeightFn::Affine { scale, offset } => value
                .as_f64()
                .map(|v| scale * v + offset)
                .unwrap_or(*offset),
            WeightFn::Table { table, default } => *table.get(value).unwrap_or(default),
            WeightFn::Custom(f) => f(value),
        }
    }
}

impl fmt::Debug for WeightFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightFn::Identity => write!(f, "Identity"),
            WeightFn::Constant(c) => write!(f, "Constant({c})"),
            WeightFn::Affine { scale, offset } => write!(f, "Affine({scale}·v + {offset})"),
            WeightFn::Table { table, default } => {
                write!(f, "Table({} entries, default {default})", table.len())
            }
            WeightFn::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_uses_the_numeric_value() {
        assert_eq!(WeightFn::Identity.apply(&Value::from(7)), 7.0);
        assert_eq!(WeightFn::Identity.apply(&Value::from(-3)), -3.0);
        assert_eq!(WeightFn::Identity.apply(&Value::from("a")), 0.0);
    }

    #[test]
    fn constant_ignores_the_value() {
        let f = WeightFn::Constant(2.5);
        assert_eq!(f.apply(&Value::from(7)), 2.5);
        assert_eq!(f.apply(&Value::from("anything")), 2.5);
    }

    #[test]
    fn affine_rescales_numeric_values() {
        let f = WeightFn::Affine {
            scale: 2.0,
            offset: 1.0,
        };
        assert_eq!(f.apply(&Value::from(3)), 7.0);
        assert_eq!(f.apply(&Value::from("x")), 1.0);
    }

    #[test]
    fn table_lookups_fall_back_to_default() {
        let f = WeightFn::table(
            [(Value::from("gold"), 10.0), (Value::from("silver"), 5.0)],
            1.0,
        );
        assert_eq!(f.apply(&Value::from("gold")), 10.0);
        assert_eq!(f.apply(&Value::from("bronze")), 1.0);
    }

    #[test]
    fn custom_functions_run_user_code() {
        let f = WeightFn::custom(|v| v.as_int().map(|i| (i * i) as f64).unwrap_or(-1.0));
        assert_eq!(f.apply(&Value::from(4)), 16.0);
        assert_eq!(f.apply(&Value::from("x")), -1.0);
    }

    #[test]
    fn debug_output_is_compact() {
        assert_eq!(format!("{:?}", WeightFn::Identity), "Identity");
        assert!(format!("{:?}", WeightFn::table([], 0.0)).contains("0 entries"));
    }
}
