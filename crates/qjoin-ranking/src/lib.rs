//! # qjoin-ranking
//!
//! Ranking functions and the weight model of Section 2.2 of *"Efficient Computation of
//! Quantiles over Joins"* (PODS 2023).
//!
//! A ranking function is a pair `(w, ⪯)`: a weight function mapping query answers to a
//! weight domain, and a total order on that domain. This crate implements the
//! *aggregate* ranking functions the paper studies:
//!
//! * **SUM** — full or partial sums of per-variable weights,
//! * **MIN / MAX** — minimum or maximum of per-variable weights,
//! * **LEX** — lexicographic orders over a sequence of variables,
//!
//! together with:
//!
//! * per-variable input-weight functions `w_x : dom → ℝ` ([`WeightFn`]),
//! * the weight domain [`Weight`] and its total order, plus [`WeightBound`] which adds
//!   the `⊥` / `⊤` sentinels used by the quantile driver,
//! * the attribute-weight → tuple-weight conversion of Section 2.2
//!   ([`SumTupleWeights`]),
//! * ranking predicates `w(U_w) ≺ λ` / `w(U_w) ≻ λ` ([`RankPredicate`]) that the
//!   trimming subroutines materialize away.
//!
//! All ranking functions implemented here are **subset-monotone** (Section 2.2), which
//! is the property the generic pivot-selection algorithm of Section 4 relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod predicate;
mod ranking;
mod tuple_weights;
mod weight;
mod weight_fn;

pub use predicate::{CmpOp, RankPredicate};
pub use ranking::{AggregateKind, Ranking};
pub use tuple_weights::SumTupleWeights;
pub use weight::{Weight, WeightBound};
pub use weight_fn::WeightFn;
