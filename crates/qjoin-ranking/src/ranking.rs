//! Aggregate ranking functions over query answers.

use crate::{Weight, WeightFn};
use qjoin_data::Value;
use qjoin_query::{Assignment, Variable};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// The aggregate used to combine per-variable weights into an answer weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// Summation (full SUM when `U_w = var(Q)`, partial SUM otherwise).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Lexicographic order over the weighted variables, in their given order.
    Lex,
}

/// An aggregate ranking function `(w, ⪯)` over query answers (Section 2.2).
///
/// The weight of an answer `q` is `agg_w({w_x(q[x]) | x ∈ U_w})`, where `U_w` is the
/// set of *weighted variables* and `w_x` the per-variable input-weight functions.
/// Partial answers (assignments binding only some of `U_w`) also receive weights by
/// aggregating over the bound variables only; subset-monotonicity makes comparisons of
/// such partial weights meaningful, which is exactly what the pivot-selection algorithm
/// exploits.
#[derive(Clone, Debug)]
pub struct Ranking {
    kind: AggregateKind,
    weighted_vars: Vec<Variable>,
    weight_fns: HashMap<Variable, WeightFn>,
}

impl Ranking {
    /// Creates a ranking function with identity weight functions for all variables.
    pub fn new(kind: AggregateKind, weighted_vars: Vec<Variable>) -> Self {
        Ranking {
            kind,
            weighted_vars,
            weight_fns: HashMap::new(),
        }
    }

    /// SUM over the given variables with identity weights.
    pub fn sum(weighted_vars: Vec<Variable>) -> Self {
        Ranking::new(AggregateKind::Sum, weighted_vars)
    }

    /// MIN over the given variables with identity weights.
    pub fn min(weighted_vars: Vec<Variable>) -> Self {
        Ranking::new(AggregateKind::Min, weighted_vars)
    }

    /// MAX over the given variables with identity weights.
    pub fn max(weighted_vars: Vec<Variable>) -> Self {
        Ranking::new(AggregateKind::Max, weighted_vars)
    }

    /// Lexicographic order over the given variables (most-significant first) with
    /// identity weights.
    pub fn lex(weighted_vars: Vec<Variable>) -> Self {
        Ranking::new(AggregateKind::Lex, weighted_vars)
    }

    /// Overrides the weight function of one variable.
    pub fn with_weight_fn(mut self, var: Variable, f: WeightFn) -> Self {
        self.weight_fns.insert(var, f);
        self
    }

    /// The aggregate kind.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// The weighted variables `U_w` (order is significant for LEX).
    pub fn weighted_vars(&self) -> &[Variable] {
        &self.weighted_vars
    }

    /// The weight function of a variable ([`WeightFn::Identity`] unless overridden).
    pub fn weight_fn(&self, var: &Variable) -> &WeightFn {
        static IDENTITY: WeightFn = WeightFn::Identity;
        self.weight_fns.get(var).unwrap_or(&IDENTITY)
    }

    /// The input weight `w_x(value)` of one variable.
    pub fn var_weight(&self, var: &Variable, value: &Value) -> f64 {
        self.weight_fn(var).apply(value)
    }

    /// True if the variable participates in the ranking.
    pub fn is_weighted(&self, var: &Variable) -> bool {
        self.weighted_vars.contains(var)
    }

    /// The neutral weight of the aggregate: the weight of an answer binding none of
    /// the weighted variables.
    pub fn identity(&self) -> Weight {
        match self.kind {
            AggregateKind::Sum => Weight::Num(0.0),
            AggregateKind::Min => Weight::Num(f64::INFINITY),
            AggregateKind::Max => Weight::Num(f64::NEG_INFINITY),
            AggregateKind::Lex => Weight::Vec(vec![0.0; self.weighted_vars.len()]),
        }
    }

    /// Combines two (partial) weights with the aggregate. This is the subset-monotone
    /// combination used when gluing partial answers from different join-tree branches.
    pub fn combine(&self, a: &Weight, b: &Weight) -> Weight {
        match self.kind {
            AggregateKind::Sum => {
                Weight::Num(a.as_num().unwrap_or(0.0) + b.as_num().unwrap_or(0.0))
            }
            AggregateKind::Min => Weight::Num(
                a.as_num()
                    .unwrap_or(f64::INFINITY)
                    .min(b.as_num().unwrap_or(f64::INFINITY)),
            ),
            AggregateKind::Max => Weight::Num(
                a.as_num()
                    .unwrap_or(f64::NEG_INFINITY)
                    .max(b.as_num().unwrap_or(f64::NEG_INFINITY)),
            ),
            AggregateKind::Lex => {
                let zero = vec![0.0; self.weighted_vars.len()];
                let av = a.as_vec().unwrap_or(&zero);
                let bv = b.as_vec().unwrap_or(&zero);
                Weight::Vec(
                    (0..self.weighted_vars.len())
                        .map(|i| {
                            av.get(i).copied().unwrap_or(0.0) + bv.get(i).copied().unwrap_or(0.0)
                        })
                        .collect(),
                )
            }
        }
    }

    /// The contribution of binding one weighted variable to one value. For LEX this is
    /// the "one-hot" vector of Section 2.2; for the scalar aggregates it is the scalar
    /// weight.
    pub fn contribution(&self, var: &Variable, value: &Value) -> Weight {
        let w = self.var_weight(var, value);
        match self.kind {
            AggregateKind::Sum | AggregateKind::Min | AggregateKind::Max => Weight::Num(w),
            AggregateKind::Lex => {
                let mut vec = vec![0.0; self.weighted_vars.len()];
                if let Some(pos) = self.weighted_vars.iter().position(|v| v == var) {
                    vec[pos] = w;
                }
                Weight::Vec(vec)
            }
        }
    }

    /// The weight of a (possibly partial) assignment: the aggregate over the weighted
    /// variables bound by it.
    pub fn weight_of(&self, assignment: &Assignment) -> Weight {
        let mut acc = self.identity();
        for var in &self.weighted_vars {
            if let Some(value) = assignment.get(var) {
                let contribution = self.contribution(var, value);
                acc = self.combine(&acc, &contribution);
            }
        }
        acc
    }

    /// The weight of a positional row laid out according to `schema`.
    pub fn weight_of_row(&self, schema: &[Variable], row: &[Value]) -> Weight {
        let mut acc = self.identity();
        for var in &self.weighted_vars {
            if let Some(pos) = schema.iter().position(|v| v == var) {
                let contribution = self.contribution(var, &row[pos]);
                acc = self.combine(&acc, &contribution);
            }
        }
        acc
    }

    /// Compares two weights under the ranking's total order `⪯`.
    pub fn compare(&self, a: &Weight, b: &Weight) -> Ordering {
        a.cmp(b)
    }

    /// All ranking functions in this crate are subset-monotone: if
    /// `agg(L1) ⪯ agg(L2)` then `agg(L ⊎ L1) ⪯ agg(L ⊎ L2)` for every multiset `L`.
    pub fn is_subset_monotone(&self) -> bool {
        true
    }
}

impl fmt::Display for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.kind {
            AggregateKind::Sum => "SUM",
            AggregateKind::Min => "MIN",
            AggregateKind::Max => "MAX",
            AggregateKind::Lex => "LEX",
        };
        write!(f, "{name}(")?;
        for (i, v) in self.weighted_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_query::variable::vars;

    fn asg(pairs: &[(&str, i64)]) -> Assignment {
        Assignment::from_pairs(
            pairs
                .iter()
                .map(|(name, v)| (Variable::new(name), Value::from(*v))),
        )
    }

    #[test]
    fn sum_weights_add_up() {
        let r = Ranking::sum(vars(&["x", "y"]));
        assert_eq!(r.weight_of(&asg(&[("x", 3), ("y", 4)])), Weight::num(7.0));
        // Partial assignment: only x bound.
        assert_eq!(r.weight_of(&asg(&[("x", 3)])), Weight::num(3.0));
        // Unweighted variables are ignored.
        assert_eq!(r.weight_of(&asg(&[("x", 3), ("z", 100)])), Weight::num(3.0));
    }

    #[test]
    fn min_and_max_weights() {
        let mn = Ranking::min(vars(&["a", "b", "c"]));
        let mx = Ranking::max(vars(&["a", "b", "c"]));
        let a = asg(&[("a", 5), ("b", 2), ("c", 9)]);
        assert_eq!(mn.weight_of(&a), Weight::num(2.0));
        assert_eq!(mx.weight_of(&a), Weight::num(9.0));
        assert_eq!(
            mn.weight_of(&Assignment::empty()),
            Weight::num(f64::INFINITY)
        );
        assert_eq!(
            mx.weight_of(&Assignment::empty()),
            Weight::num(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn lex_weights_are_positional() {
        let r = Ranking::lex(vars(&["x", "y"]));
        let w1 = r.weight_of(&asg(&[("x", 1), ("y", 100)]));
        let w2 = r.weight_of(&asg(&[("x", 2), ("y", 0)]));
        assert!(w1 < w2, "x dominates y in the lexicographic order");
        assert_eq!(w1, Weight::Vec(vec![1.0, 100.0]));
        // A partial answer binding only y leaves x's position at 0.
        assert_eq!(r.weight_of(&asg(&[("y", 7)])), Weight::Vec(vec![0.0, 7.0]));
    }

    #[test]
    fn custom_weight_functions_apply() {
        let r = Ranking::sum(vars(&["x", "y"]))
            .with_weight_fn(Variable::new("y"), WeightFn::Constant(10.0));
        assert_eq!(
            r.weight_of(&asg(&[("x", 1), ("y", 999)])),
            Weight::num(11.0)
        );
    }

    #[test]
    fn weight_of_row_matches_weight_of_assignment() {
        let r = Ranking::sum(vars(&["x", "z"]));
        let schema = vars(&["x", "y", "z"]);
        let row = vec![Value::from(1), Value::from(2), Value::from(3)];
        assert_eq!(
            r.weight_of_row(&schema, &row),
            r.weight_of(&asg(&[("x", 1), ("y", 2), ("z", 3)]))
        );
    }

    #[test]
    fn subset_monotonicity_spot_checks() {
        // For each aggregate: if w(L1) <= w(L2) then w(L ∪ L1) <= w(L ∪ L2).
        for kind in [
            AggregateKind::Sum,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Lex,
        ] {
            let r = Ranking::new(kind, vars(&["a", "b", "c"]));
            let l1 = r.weight_of(&asg(&[("b", 2)]));
            let l2 = r.weight_of(&asg(&[("b", 5)]));
            assert!(l1 <= l2);
            let with_l1 = r.combine(&r.weight_of(&asg(&[("a", 3)])), &l1);
            let with_l2 = r.combine(&r.weight_of(&asg(&[("a", 3)])), &l2);
            assert!(
                with_l1 <= with_l2,
                "subset monotonicity violated for {kind:?}"
            );
            assert!(r.is_subset_monotone());
        }
    }

    #[test]
    fn combine_is_associative_for_sum_and_min_max() {
        let vals = [Weight::num(1.0), Weight::num(5.0), Weight::num(-2.0)];
        for kind in [AggregateKind::Sum, AggregateKind::Min, AggregateKind::Max] {
            let r = Ranking::new(kind, vars(&["a"]));
            let left = r.combine(&r.combine(&vals[0], &vals[1]), &vals[2]);
            let right = r.combine(&vals[0], &r.combine(&vals[1], &vals[2]));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn display_names_the_aggregate() {
        assert_eq!(Ranking::sum(vars(&["l2", "l3"])).to_string(), "SUM(l2, l3)");
        assert_eq!(Ranking::max(vars(&["w", "h"])).to_string(), "MAX(w, h)");
    }

    #[test]
    fn identity_is_neutral_for_combine() {
        for kind in [
            AggregateKind::Sum,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Lex,
        ] {
            let r = Ranking::new(kind, vars(&["a", "b"]));
            let w = r.weight_of(&asg(&[("a", 4), ("b", -1)]));
            assert_eq!(r.combine(&r.identity(), &w), w);
            assert_eq!(r.combine(&w, &r.identity()), w);
        }
    }
}
