//! The long-lived engine: catalog + prepared plans + result cache + solvers.
//!
//! An [`Engine`] owns a [`Catalog`] of named databases and a set of [`PreparedPlan`]s
//! compiled against them. Quantile requests hit, in order:
//!
//! 1. the **LRU result cache**, keyed by `(plan id, database generation, φ, accuracy)`
//!    — replacing a database bumps its generation, so stale results can never be
//!    served;
//! 2. the **batched multi-φ solver** for cache misses: a batch request solves all of
//!    its missing fractions in one shared §3 recursion pass;
//! 3. the **prepared plan**, which already paid for validation, the join tree, the
//!    Yannakakis counts, and the §5 dichotomy at registration time.

use crate::cache::{CacheStats, LruCache};
use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::plan::{Accuracy, PreparedPlan};
use qjoin_core::batch::quantile_batch_by_pivoting;
use qjoin_core::quantile::quantile_by_pivoting;
use qjoin_core::{PivotingOptions, QuantileResult};
use qjoin_data::Database;
use qjoin_query::JoinQuery;
use qjoin_ranking::Ranking;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// `(plan id, database generation, φ bits, accuracy bits)`.
type CacheKey = (u64, u64, u64, Option<u64>);

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Maximum number of cached quantile results (0 disables the cache).
    pub cache_capacity: usize,
    /// Options forwarded to the §3 pivoting driver.
    pub pivoting: PivotingOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 1024,
            pivoting: PivotingOptions::default(),
        }
    }
}

/// One served quantile: the algorithmic result plus serving metadata.
#[derive(Clone, Debug)]
pub struct EngineAnswer {
    /// The plan that served the request.
    pub plan: String,
    /// The requested fraction.
    pub phi: f64,
    /// The accuracy the request asked for.
    pub accuracy: Accuracy,
    /// True when the answer came from the result cache.
    pub from_cache: bool,
    /// The quantile itself.
    pub result: QuantileResult,
}

/// Monotonic serving counters (part of [`EngineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Individual φ requests served (single and batched).
    pub quantile_requests: u64,
    /// Batch API calls served.
    pub batch_requests: u64,
    /// φ values actually solved by the recursion (cache misses).
    pub solved: u64,
    /// Plan compilations, including recompilations after database replacement.
    pub plan_compilations: u64,
}

/// Storage accounting for one prepared plan: how many of its instance's relations
/// share tuple storage with the catalog database (pointer-identical `Arc`s) versus
/// privately own a copy, and the estimated resident bytes on each side. With the
/// copy-on-write data layer every plan should report zero owned relations — a plan
/// is a view over the catalog's storage, not a snapshot.
#[derive(Clone, Debug)]
pub struct PlanStorageStats {
    /// The plan's registration name.
    pub plan: String,
    /// The catalog database the plan reads.
    pub database: String,
    /// Relations whose tuple storage is shared with the catalog database.
    pub shared_relations: usize,
    /// Relations holding private tuple storage (copies attributable to this plan).
    pub owned_relations: usize,
    /// Estimated tuple bytes of the shared relations (resident once, in the catalog).
    pub shared_bytes: usize,
    /// Estimated tuple bytes of the privately owned relations (extra resident cost).
    pub owned_bytes: usize,
}

/// A point-in-time snapshot of the engine's state and counters.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Catalogued databases.
    pub databases: usize,
    /// Registered plans.
    pub plans: usize,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Configured cache capacity.
    pub cache_capacity: usize,
    /// Cache hit/miss/eviction/invalidation counts.
    pub cache: CacheStats,
    /// Serving counters.
    pub counters: EngineCounters,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "databases:          {}", self.databases)?;
        writeln!(f, "plans:              {}", self.plans)?;
        writeln!(
            f,
            "cache:              {}/{} entries, {} hits, {} misses, {} evictions, {} invalidations",
            self.cache_entries,
            self.cache_capacity,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.invalidations
        )?;
        writeln!(
            f,
            "requests:           {} quantiles ({} batch calls), {} solved by recursion",
            self.counters.quantile_requests, self.counters.batch_requests, self.counters.solved
        )?;
        write!(f, "plan compilations:  {}", self.counters.plan_compilations)
    }
}

/// A persistent quantile-query engine (see the module docs).
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
    catalog: Catalog,
    plans: BTreeMap<String, PreparedPlan>,
    next_plan_id: u64,
    cache: LruCache<CacheKey, QuantileResult>,
    counters: EngineCounters,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default configuration.
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let cache = LruCache::new(config.cache_capacity);
        Engine {
            config,
            catalog: Catalog::new(),
            plans: BTreeMap::new(),
            next_plan_id: 0,
            cache,
            counters: EngineCounters::default(),
        }
    }

    /// Adds a database to the catalog under a fresh name. Accepts an owned
    /// [`Database`] or an `Arc<Database>` that is already shared.
    pub fn create_database(
        &mut self,
        name: &str,
        database: impl Into<Arc<Database>>,
    ) -> Result<(), EngineError> {
        self.catalog.create(name, database)
    }

    /// Replaces a catalogued database, recompiling every dependent plan against the
    /// new contents and invalidating their cached results. All recompiled plans share
    /// the replacement database by handle — the relation data is stored once, no
    /// matter how many plans depend on it. The operation is atomic: if any dependent
    /// plan fails to recompile (e.g. the new database no longer matches a registered
    /// query's schema), nothing changes.
    pub fn replace_database(
        &mut self,
        name: &str,
        database: impl Into<Arc<Database>>,
    ) -> Result<(), EngineError> {
        let database: Arc<Database> = database.into();
        let entry = self.catalog.get(name)?;
        let new_generation = entry.generation + 1;
        let mut recompiled = Vec::new();
        for plan in self.plans.values().filter(|p| p.database == name) {
            recompiled.push(PreparedPlan::compile(
                &plan.name,
                plan.id,
                name,
                new_generation,
                plan.instance.query().clone(),
                plan.ranking.clone(),
                &database,
            )?);
        }
        self.catalog.replace(name, database)?;
        for plan in recompiled {
            self.cache.invalidate(|key| key.0 == plan.id);
            self.counters.plan_compilations += 1;
            self.plans.insert(plan.name.clone(), plan);
        }
        Ok(())
    }

    /// Registers a `(query, ranking)` pair against a catalogued database, compiling it
    /// into a prepared plan.
    pub fn register(
        &mut self,
        plan_name: &str,
        database_name: &str,
        query: JoinQuery,
        ranking: Ranking,
    ) -> Result<&PreparedPlan, EngineError> {
        if self.plans.contains_key(plan_name) {
            return Err(EngineError::DuplicatePlan(plan_name.to_string()));
        }
        let entry = self.catalog.get(database_name)?;
        let id = self.next_plan_id;
        let plan = PreparedPlan::compile(
            plan_name,
            id,
            database_name,
            entry.generation,
            query,
            ranking,
            &entry.database,
        )?;
        self.next_plan_id += 1;
        self.counters.plan_compilations += 1;
        Ok(self.plans.entry(plan_name.to_string()).or_insert(plan))
    }

    /// Drops a plan and its cached results.
    pub fn drop_plan(&mut self, plan_name: &str) -> Result<(), EngineError> {
        let plan = self
            .plans
            .remove(plan_name)
            .ok_or_else(|| EngineError::UnknownPlan(plan_name.to_string()))?;
        self.cache.invalidate(|key| key.0 == plan.id);
        Ok(())
    }

    /// Looks up a prepared plan by name.
    pub fn plan(&self, plan_name: &str) -> Result<&PreparedPlan, EngineError> {
        self.plans
            .get(plan_name)
            .ok_or_else(|| EngineError::UnknownPlan(plan_name.to_string()))
    }

    /// Iterates over the registered plans in name order.
    pub fn plans(&self) -> impl Iterator<Item = &PreparedPlan> {
        self.plans.values()
    }

    /// The database catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Serves an exact φ-quantile from a prepared plan (cache-aware).
    pub fn quantile(&mut self, plan_name: &str, phi: f64) -> Result<EngineAnswer, EngineError> {
        self.quantile_with(plan_name, phi, Accuracy::Exact)
    }

    /// Serves a φ-quantile at the requested accuracy (cache-aware).
    pub fn quantile_with(
        &mut self,
        plan_name: &str,
        phi: f64,
        accuracy: Accuracy,
    ) -> Result<EngineAnswer, EngineError> {
        let plan = self
            .plans
            .get(plan_name)
            .ok_or_else(|| EngineError::UnknownPlan(plan_name.to_string()))?;
        self.counters.quantile_requests += 1;
        let key = (plan.id, plan.generation, phi.to_bits(), accuracy.key_bits());
        if let Some(result) = self.cache.get(&key) {
            return Ok(EngineAnswer {
                plan: plan_name.to_string(),
                phi,
                accuracy,
                from_cache: true,
                result,
            });
        }
        let trimmer = plan.trimmer_for(accuracy)?;
        let result = quantile_by_pivoting(
            &plan.instance,
            &plan.ranking,
            phi,
            trimmer.as_ref(),
            &self.config.pivoting,
        )?;
        self.counters.solved += 1;
        self.cache.insert(key, result.clone());
        Ok(EngineAnswer {
            plan: plan_name.to_string(),
            phi,
            accuracy,
            from_cache: false,
            result,
        })
    }

    /// Serves many exact φ-quantiles from a prepared plan. Cached fractions are
    /// answered from the cache; all remaining fractions are solved together in **one**
    /// shared divide-and-conquer pass (see [`qjoin_core::batch`]).
    pub fn quantile_batch(
        &mut self,
        plan_name: &str,
        phis: &[f64],
    ) -> Result<Vec<EngineAnswer>, EngineError> {
        self.quantile_batch_with(plan_name, phis, Accuracy::Exact)
    }

    /// [`Engine::quantile_batch`] at an explicit accuracy.
    pub fn quantile_batch_with(
        &mut self,
        plan_name: &str,
        phis: &[f64],
        accuracy: Accuracy,
    ) -> Result<Vec<EngineAnswer>, EngineError> {
        let plan = self
            .plans
            .get(plan_name)
            .ok_or_else(|| EngineError::UnknownPlan(plan_name.to_string()))?;
        self.counters.batch_requests += 1;
        self.counters.quantile_requests += phis.len() as u64;

        let mut answers: Vec<Option<EngineAnswer>> = vec![None; phis.len()];
        let mut missing: Vec<(usize, f64)> = Vec::new();
        for (pos, &phi) in phis.iter().enumerate() {
            let key = (plan.id, plan.generation, phi.to_bits(), accuracy.key_bits());
            match self.cache.get(&key) {
                Some(result) => {
                    answers[pos] = Some(EngineAnswer {
                        plan: plan_name.to_string(),
                        phi,
                        accuracy,
                        from_cache: true,
                        result,
                    });
                }
                None => missing.push((pos, phi)),
            }
        }
        if !missing.is_empty() {
            let miss_phis: Vec<f64> = missing.iter().map(|&(_, phi)| phi).collect();
            let trimmer = plan.trimmer_for(accuracy)?;
            let results = quantile_batch_by_pivoting(
                &plan.instance,
                &plan.ranking,
                &miss_phis,
                trimmer.as_ref(),
                &self.config.pivoting,
            )?;
            self.counters.solved += results.len() as u64;
            for ((pos, phi), result) in missing.into_iter().zip(results) {
                let key = (plan.id, plan.generation, phi.to_bits(), accuracy.key_bits());
                self.cache.insert(key, result.clone());
                answers[pos] = Some(EngineAnswer {
                    plan: plan_name.to_string(),
                    phi,
                    accuracy,
                    from_cache: false,
                    result,
                });
            }
        }
        Ok(answers
            .into_iter()
            .map(|a| a.expect("every φ answered from cache or batch solve"))
            .collect())
    }

    /// Per-plan storage accounting: for every registered plan, how many of its
    /// relations share tuple storage with the plan's catalog database and how many
    /// are private copies, with estimated byte totals. Sharing is checked by pointer
    /// equality on the underlying storage, so this is a direct observation of the
    /// copy-on-write invariant from the serving layer.
    pub fn plan_storage_stats(&self) -> Vec<PlanStorageStats> {
        self.plans
            .values()
            .map(|plan| {
                let catalog_db = self
                    .catalog
                    .get(&plan.database)
                    .map(|entry| Arc::clone(&entry.database))
                    .ok();
                let mut stats = PlanStorageStats {
                    plan: plan.name.clone(),
                    database: plan.database.clone(),
                    shared_relations: 0,
                    owned_relations: 0,
                    shared_bytes: 0,
                    owned_bytes: 0,
                };
                for rel in plan.instance.database().relations() {
                    let shared = catalog_db
                        .as_deref()
                        .and_then(|db| db.relation(rel.name()).ok())
                        .is_some_and(|catalog_rel| rel.shares_tuples_with(catalog_rel));
                    let bytes = rel.estimated_tuple_bytes();
                    if shared {
                        stats.shared_relations += 1;
                        stats.shared_bytes += bytes;
                    } else {
                        stats.owned_relations += 1;
                        stats.owned_bytes += bytes;
                    }
                }
                stats
            })
            .collect()
    }

    /// A snapshot of the engine's state and counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            databases: self.catalog.len(),
            plans: self.plans.len(),
            cache_entries: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            cache: self.cache.stats(),
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_core::solver::exact_quantile;
    use qjoin_query::query::{path_query, social_network_query};
    use qjoin_query::variable::vars;
    use qjoin_workload::social::SocialConfig;

    fn social_engine(rows: usize, seed: u64) -> (Engine, SocialConfig) {
        let config = SocialConfig {
            rows_per_relation: rows,
            seed,
            ..Default::default()
        };
        let (_, database) = config.generate().into_parts();
        let mut engine = Engine::new();
        engine.create_database("social", database).unwrap();
        engine
            .register(
                "likes",
                "social",
                social_network_query(),
                Ranking::sum(vars(&["l2", "l3"])),
            )
            .unwrap();
        (engine, config)
    }

    #[test]
    fn serves_quantiles_identical_to_the_one_shot_solver() {
        let (mut engine, config) = social_engine(150, 42);
        let instance = config.generate();
        let ranking = config.likes_ranking();
        for phi in [0.1, 0.5, 0.9] {
            let served = engine.quantile("likes", phi).unwrap();
            let direct = exact_quantile(&instance, &ranking, phi).unwrap();
            assert_eq!(served.result.weight, direct.weight, "phi {phi}");
            assert_eq!(served.result.total_answers, direct.total_answers);
            assert!(!served.from_cache);
        }
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let (mut engine, _) = social_engine(100, 7);
        let first = engine.quantile("likes", 0.5).unwrap();
        let second = engine.quantile("likes", 0.5).unwrap();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.result.weight, second.result.weight);
        let stats = engine.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.counters.solved, 1);
        assert_eq!(stats.counters.quantile_requests, 2);
    }

    #[test]
    fn batch_mixes_cache_hits_with_one_shared_solve() {
        let (mut engine, _) = social_engine(100, 9);
        engine.quantile("likes", 0.5).unwrap();
        let answers = engine.quantile_batch("likes", &[0.25, 0.5, 0.75]).unwrap();
        assert!(!answers[0].from_cache);
        assert!(answers[1].from_cache);
        assert!(!answers[2].from_cache);
        // Batched answers equal single-φ answers.
        for answer in &answers {
            let single = engine.quantile("likes", answer.phi).unwrap();
            assert_eq!(single.result.weight, answer.result.weight);
        }
        assert_eq!(engine.stats().counters.batch_requests, 1);
    }

    #[test]
    fn replace_database_invalidates_cached_results() {
        let (mut engine, _) = social_engine(80, 1);
        let before = engine.quantile("likes", 0.5).unwrap();
        assert!(engine.quantile("likes", 0.5).unwrap().from_cache);

        let other = SocialConfig {
            rows_per_relation: 80,
            seed: 999,
            ..Default::default()
        };
        let (_, new_db) = other.generate().into_parts();
        engine.replace_database("social", new_db).unwrap();

        let after = engine.quantile("likes", 0.5).unwrap();
        assert!(
            !after.from_cache,
            "replacement must invalidate cached results"
        );
        assert_eq!(engine.catalog().get("social").unwrap().generation, 2);
        assert_eq!(engine.plan("likes").unwrap().generation, 2);
        // Different seeds virtually always shift the median.
        assert_ne!(
            (before.result.total_answers, before.result.weight.clone()),
            (after.result.total_answers, after.result.weight.clone())
        );
        assert!(engine.stats().cache.invalidations > 0);
    }

    #[test]
    fn replace_database_is_atomic_on_recompile_failure() {
        let (mut engine, _) = social_engine(60, 3);
        let before_gen = engine.plan("likes").unwrap().generation;
        // A database missing the registered query's relations cannot recompile.
        let bad = Database::new();
        assert!(engine.replace_database("social", bad).is_err());
        assert_eq!(engine.plan("likes").unwrap().generation, before_gen);
        assert_eq!(engine.catalog().get("social").unwrap().generation, 1);
        assert!(engine.quantile("likes", 0.5).is_ok());
    }

    #[test]
    fn intractable_plans_serve_approximate_only() {
        let config = qjoin_workload::path::PathConfig {
            atoms: 3,
            tuples_per_relation: 40,
            join_domain: 5,
            weight_range: 100,
            skew: 0.0,
            seed: 5,
        };
        let instance = config.generate();
        let (query, database) = instance.into_parts();
        let mut engine = Engine::new();
        engine.create_database("paths", database).unwrap();
        engine
            .register(
                "fullsum",
                "paths",
                query.clone(),
                Ranking::sum(query.variables()),
            )
            .unwrap();
        assert!(matches!(
            engine.quantile("fullsum", 0.5).unwrap_err(),
            EngineError::PlanCannotServe { .. }
        ));
        let approx = engine
            .quantile_with("fullsum", 0.5, Accuracy::Approximate { epsilon: 0.1 })
            .unwrap();
        assert!(approx.result.total_answers > 0);
        // Approximate results are cached under their own key.
        let again = engine
            .quantile_with("fullsum", 0.5, Accuracy::Approximate { epsilon: 0.1 })
            .unwrap();
        assert!(again.from_cache);
    }

    #[test]
    fn plans_share_the_catalog_database_by_pointer() {
        let (mut engine, _) = social_engine(80, 5);
        engine
            .register(
                "maxlikes",
                "social",
                social_network_query(),
                Ranking::max(social_network_query().variables()),
            )
            .unwrap();
        let catalog_db = Arc::clone(&engine.catalog().get("social").unwrap().database);
        for plan in engine.plans() {
            assert!(
                Arc::ptr_eq(plan.instance.shared_database(), &catalog_db),
                "plan {} must share the catalog database, not copy it",
                plan.name
            );
        }
        for stats in engine.plan_storage_stats() {
            assert_eq!(stats.owned_relations, 0, "plan {}", stats.plan);
            assert_eq!(stats.owned_bytes, 0);
            assert_eq!(stats.shared_relations, 3);
            assert!(stats.shared_bytes > 0);
        }

        // Replacement moves every dependent plan onto one new shared handle.
        let (_, new_db) = SocialConfig {
            rows_per_relation: 80,
            seed: 123,
            ..Default::default()
        }
        .generate()
        .into_parts();
        engine.replace_database("social", new_db).unwrap();
        let new_catalog_db = Arc::clone(&engine.catalog().get("social").unwrap().database);
        assert!(!Arc::ptr_eq(&catalog_db, &new_catalog_db));
        for plan in engine.plans() {
            assert!(Arc::ptr_eq(
                plan.instance.shared_database(),
                &new_catalog_db
            ));
        }
    }

    #[test]
    fn unknown_names_and_duplicates_error() {
        let (mut engine, _) = social_engine(60, 2);
        assert!(matches!(
            engine.quantile("nope", 0.5).unwrap_err(),
            EngineError::UnknownPlan(_)
        ));
        assert!(matches!(
            engine
                .register(
                    "likes",
                    "social",
                    social_network_query(),
                    Ranking::sum(vars(&["l2", "l3"]))
                )
                .unwrap_err(),
            EngineError::DuplicatePlan(_)
        ));
        assert!(matches!(
            engine
                .register("p2", "missing", path_query(2), Ranking::sum(vars(&["x1"])))
                .unwrap_err(),
            EngineError::UnknownDatabase(_)
        ));
        engine.drop_plan("likes").unwrap();
        assert!(matches!(
            engine.drop_plan("likes").unwrap_err(),
            EngineError::UnknownPlan(_)
        ));
    }
}
