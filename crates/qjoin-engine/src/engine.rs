//! The long-lived engine: catalog + prepared plans + result cache + solvers.
//!
//! An [`Engine`] owns a [`Catalog`] of named databases and a set of [`PreparedPlan`]s
//! compiled against them. Quantile requests hit, in order:
//!
//! 1. the **LRU result cache**, keyed by `(plan id, database generation, φ, accuracy)`
//!    — replacing a database bumps its generation, so stale results can never be
//!    served;
//! 2. the **in-flight coalescing gate** for cold exact requests: concurrent misses
//!    against the same `(plan, generation)` merge into **one** shared batched solve —
//!    the first arrival leads, everyone else is served from its batch (the paper's
//!    §4 batching theorem applied *across* requests; see the `coalesce` module);
//! 3. the **batched multi-φ solver** for cache misses: a batch request solves all of
//!    its missing fractions in one shared §3 recursion pass;
//! 4. the **prepared plan**, which already paid for validation, the join tree, the
//!    Yannakakis counts, and the §5 dichotomy at registration time.
//!
//! ## Concurrency
//!
//! The engine is **thread-safe**: every serving method takes `&self`, and
//! `Engine: Send + Sync`, so one engine can be shared across threads behind an
//! [`Arc`] (this is how `qjoin-server` serves many connections at once).
//!
//! * The catalog and plan table live behind one [`RwLock`]. Readers (`quantile`,
//!   `quantile_batch`, `stats`, …) take a brief read lock to clone the plan's
//!   `Arc<PreparedPlan>` handle, then solve entirely outside the lock over the
//!   plan's immutable `Arc`-shared relations.
//! * The result cache is **sharded by plan id** ([`ShardedLru`]): each shard has its
//!   own mutex, so concurrent requests against different plans never serialize on
//!   one cache lock, and a hot plan only contends on its own shard.
//! * Writers (`register`, `replace_database`, `drop_plan`) take the write lock and
//!   keep the existing atomic generation-bump semantics: a replacement recompiles
//!   every dependent plan before anything becomes visible, so a concurrent reader
//!   sees either the old generation's plan handle or the new one — never a mix. An
//!   in-flight solve that grabbed the old handle finishes against the old
//!   generation's immutable data and caches under the old generation's key, which
//!   can never satisfy a post-replacement lookup.
//! * Serving counters are relaxed atomics ([`EngineCounters`] snapshots them).

use crate::cache::{CacheStats, ShardedLru};
use crate::catalog::Catalog;
use crate::coalesce::Gate;
use crate::error::EngineError;
use crate::plan::{Accuracy, PreparedPlan};
use crate::telemetry::{RecordingTracer, RegistryTracer};
use qjoin_core::batch::quantile_batch_by_pivoting_traced;
use qjoin_core::{CoreError, PivotingOptions, QuantileResult};
use qjoin_data::Database;
use qjoin_query::JoinQuery;
use qjoin_ranking::Ranking;
use qjoin_telemetry::{
    current_trace_context, with_trace_context, ArgValue, FlightRecorder, Histogram,
    MetricsSnapshot, Registry, TraceBuilder, TraceContext,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// `(plan id, database generation, φ bits, accuracy bits)`.
type CacheKey = (u64, u64, u64, Option<u64>);

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Maximum number of cached quantile results across all shards (0 disables the
    /// cache).
    pub cache_capacity: usize,
    /// Number of independent cache shards (selected by plan id). More shards means
    /// less lock contention between plans; 1 degenerates to a single locked LRU.
    pub cache_shards: usize,
    /// Options forwarded to the §3 pivoting driver.
    pub pivoting: PivotingOptions,
    /// Intra-solve parallelism degree. `Some(t)` gives the engine its own
    /// work-stealing pool of `t` threads (`1` is guaranteed purely sequential —
    /// no worker threads are spawned and every parallel surface runs inline);
    /// `None` uses the process-wide pool sized by `QJOIN_THREADS` (or the host's
    /// available parallelism). Answers are bit-identical at any setting.
    pub threads: Option<usize>,
    /// Capacity of the per-request span-trace flight recorder (newest-first
    /// eviction). `0` disables span tracing entirely — no trace is built and
    /// requests pay nothing beyond one atomic load, the configuration the
    /// tracing-overhead benchmark compares against.
    pub flight_recorder_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 1024,
            cache_shards: 8,
            pivoting: PivotingOptions::default(),
            threads: None,
            flight_recorder_capacity: 64,
        }
    }
}

/// One served quantile: the algorithmic result plus serving metadata.
#[derive(Clone, Debug)]
pub struct EngineAnswer {
    /// The plan that served the request.
    pub plan: String,
    /// The database generation the answer was computed against.
    pub generation: u64,
    /// The requested fraction.
    pub phi: f64,
    /// The accuracy the request asked for.
    pub accuracy: Accuracy,
    /// True when the answer came from the result cache.
    pub from_cache: bool,
    /// The quantile itself.
    pub result: QuantileResult,
}

/// Monotonic serving counters (part of [`EngineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Individual φ requests served (single and batched).
    pub quantile_requests: u64,
    /// Batch API calls served.
    pub batch_requests: u64,
    /// φ values actually solved by the recursion (cache misses).
    pub solved: u64,
    /// Plan compilations, including recompilations after database replacement.
    pub plan_compilations: u64,
    /// Coalesced solve rounds: shared batched solves that served at least one
    /// waiter in addition to the leader (see the `coalesce` module).
    pub coalesced_batches: u64,
    /// Requests answered from another request's shared batch instead of running
    /// their own solve.
    pub coalesced_waiters: u64,
}

/// Lock-free counter cells behind the `&self` serving methods; [`AtomicCounters::snapshot`]
/// materializes them into the public [`EngineCounters`].
#[derive(Debug, Default)]
struct AtomicCounters {
    quantile_requests: AtomicU64,
    batch_requests: AtomicU64,
    solved: AtomicU64,
    plan_compilations: AtomicU64,
    coalesced_batches: AtomicU64,
    coalesced_waiters: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> EngineCounters {
        EngineCounters {
            quantile_requests: self.quantile_requests.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
            plan_compilations: self.plan_compilations.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            coalesced_waiters: self.coalesced_waiters.load(Ordering::Relaxed),
        }
    }
}

/// Storage accounting for one prepared plan: how many of its instance's relations
/// share tuple storage with the catalog database (pointer-identical `Arc`s) versus
/// privately own a copy, and the estimated resident bytes on each side. With the
/// copy-on-write data layer every plan should report zero owned relations — a plan
/// is a view over the catalog's storage, not a snapshot.
#[derive(Clone, Debug)]
pub struct PlanStorageStats {
    /// The plan's registration name.
    pub plan: String,
    /// The catalog database the plan reads.
    pub database: String,
    /// Relations whose tuple storage is shared with the catalog database.
    pub shared_relations: usize,
    /// Relations holding private tuple storage (copies attributable to this plan).
    pub owned_relations: usize,
    /// Estimated tuple bytes of the shared relations (resident once, in the catalog).
    pub shared_bytes: usize,
    /// Estimated tuple bytes of the privately owned relations (extra resident cost).
    pub owned_bytes: usize,
}

/// A point-in-time snapshot of the engine's state and counters.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Catalogued databases.
    pub databases: usize,
    /// Registered plans.
    pub plans: usize,
    /// Live cache entries (across all shards).
    pub cache_entries: usize,
    /// Configured cache capacity (across all shards).
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
    /// Cache hit/miss/eviction/invalidation counts, aggregated over shards.
    pub cache: CacheStats,
    /// Serving counters.
    pub counters: EngineCounters,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "databases:          {}", self.databases)?;
        writeln!(f, "plans:              {}", self.plans)?;
        writeln!(
            f,
            "cache:              {}/{} entries in {} shards, {} hits, {} misses, {} evictions, {} invalidations",
            self.cache_entries,
            self.cache_capacity,
            self.cache_shards,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.invalidations
        )?;
        writeln!(
            f,
            "requests:           {} quantiles ({} batch calls), {} solved by recursion",
            self.counters.quantile_requests, self.counters.batch_requests, self.counters.solved
        )?;
        writeln!(
            f,
            "coalescing:         coalesced_batches={} coalesced_waiters={}",
            self.counters.coalesced_batches, self.counters.coalesced_waiters
        )?;
        write!(f, "plan compilations:  {}", self.counters.plan_compilations)
    }
}

/// The lock-protected mutable core: the catalog and the plan table. Everything else
/// on [`Engine`] is either immutable configuration, a sharded lock (the cache), or
/// an atomic (the counters).
#[derive(Debug, Default)]
struct EngineState {
    catalog: Catalog,
    plans: BTreeMap<String, Arc<PreparedPlan>>,
    next_plan_id: u64,
}

/// A persistent, thread-safe quantile-query engine (see the module docs).
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    state: RwLock<EngineState>,
    cache: ShardedLru<CacheKey, QuantileResult>,
    counters: AtomicCounters,
    /// In-flight gate coalescing concurrent cold exact solves per
    /// `(plan id, generation)`.
    gate: Gate<QuantileResult, EngineError>,
    /// The shared metric registry: live solve/cache histograms plus counters
    /// published from [`AtomicCounters`] at scrape time (see
    /// [`Engine::metrics_snapshot`]). The serving layer registers its own
    /// request-lifecycle metrics here, so one scrape covers the whole stack.
    registry: Arc<Registry>,
    /// Result-cache lookup latency (the "cache" span of a request).
    cache_lookup: Arc<Histogram>,
    /// The engine's own chunk-executor pool when `config.threads` is set;
    /// `None` delegates to the process-wide [`qjoin_par::global`] pool.
    pool: Option<qjoin_par::Pool>,
    /// The per-request span-trace ring: completed request traces land here and
    /// the `trace` verbs read them back. Also the trace-id allocator.
    recorder: Arc<FlightRecorder>,
    /// Live per-plan cold-solve concurrency, published as
    /// `qjoin_inflight_solves{plan}` at scrape time (the first observable for
    /// per-plan admission control).
    inflight_solves: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Construction time, for the uptime gauge.
    started: Instant,
}

/// RAII decrement for one plan's in-flight cold-solve counter.
struct InflightGuard(Arc<AtomicU64>);

impl InflightGuard {
    fn enter(cell: Arc<AtomicU64>) -> Self {
        cell.fetch_add(1, Ordering::Relaxed);
        InflightGuard(cell)
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

// The whole point of the `&self` refactor: an `Engine` can be shared across threads.
// This is a compile-time assertion; `tests/concurrency.rs` re-checks it publicly.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default configuration.
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let cache = ShardedLru::new(config.cache_capacity, config.cache_shards);
        let registry = Arc::new(Registry::new());
        let cache_lookup = registry.histogram("qjoin_cache_lookup_seconds", &[]);
        let pool = config.threads.map(qjoin_par::Pool::new);
        let recorder = Arc::new(FlightRecorder::new(config.flight_recorder_capacity));
        Engine {
            config,
            state: RwLock::new(EngineState::default()),
            cache,
            counters: AtomicCounters::default(),
            gate: Gate::new(),
            registry,
            cache_lookup,
            pool,
            recorder,
            inflight_solves: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// The per-request span-trace flight recorder (capacity 0 when tracing is
    /// disabled). The serving layers allocate trace ids from it and the `trace`
    /// verbs read completed traces back out.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Runs `f` under a request-scoped trace context. When the caller already
    /// installed an ambient context (the server traces the whole request
    /// lifecycle), it is reused untouched; otherwise — engine-direct callers
    /// like the REPL — a fresh root trace is created, `f`'s spans attach to its
    /// root span, and the completed trace lands in the flight recorder. With
    /// the recorder disabled this is a single atomic load plus the call.
    fn with_request_trace<R>(
        &self,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
        f: impl FnOnce() -> R,
    ) -> R {
        if !self.recorder.is_enabled() || current_trace_context().is_some() {
            return f();
        }
        let builder = TraceBuilder::new(self.recorder.next_trace_id());
        let root = builder.next_span_id();
        let started = builder.epoch();
        let result = with_trace_context(
            TraceContext {
                builder: builder.clone(),
                parent: root,
            },
            f,
        );
        builder.record(root, None, name, started, started.elapsed(), args);
        self.recorder.push(builder.finish());
        result
    }

    /// Runs `f` with the engine's executor pool installed as the thread's current
    /// pool: the engine's own pool when `config.threads` is set, the process-wide
    /// one otherwise. Every compute entry point (solving, encoding) goes through
    /// here so the `threads` knob governs all intra-engine parallelism.
    fn run_pooled<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => qjoin_par::with_pool(pool, f),
            None => qjoin_par::with_pool(qjoin_par::global(), f),
        }
    }

    /// The executor's counters: the engine's own pool when configured, the
    /// process-wide pool otherwise.
    pub fn pool_stats(&self) -> qjoin_par::PoolStats {
        match &self.pool {
            Some(pool) => pool.stats(),
            None => qjoin_par::global().stats(),
        }
    }

    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, EngineState> {
        self.state.read().expect("engine state lock poisoned")
    }

    fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, EngineState> {
        self.state.write().expect("engine state lock poisoned")
    }

    /// Adds a database to the catalog under a fresh name. Accepts an owned
    /// [`Database`] or an `Arc<Database>` that is already shared.
    pub fn create_database(
        &self,
        name: &str,
        database: impl Into<Arc<Database>>,
    ) -> Result<(), EngineError> {
        self.write_state().catalog.create(name, database)
    }

    /// Replaces a catalogued database, recompiling every dependent plan against the
    /// new contents and invalidating their cached results. All recompiled plans share
    /// the replacement database by handle — the relation data is stored once, no
    /// matter how many plans depend on it. The operation is atomic: if any dependent
    /// plan fails to recompile (e.g. the new database no longer matches a registered
    /// query's schema), nothing changes. Concurrent readers see either the old
    /// generation's plans or the new ones, never a mixture.
    pub fn replace_database(
        &self,
        name: &str,
        database: impl Into<Arc<Database>>,
    ) -> Result<(), EngineError> {
        let database: Arc<Database> = database.into();
        // Validate the name before paying the encoding pass (the write path below
        // re-checks under the lock).
        self.read_state().catalog.get(name)?;
        // One encoding pass per generation, shared by every recompiled plan.
        let encoded = self.run_pooled(|| {
            qjoin_data::EncodedDatabase::encode(&database)
                .ok()
                .map(Arc::new)
        });
        let mut state = self.write_state();
        let entry = state.catalog.get(name)?;
        let new_generation = entry.generation + 1;
        let mut recompiled = Vec::new();
        for plan in state.plans.values().filter(|p| p.database == name) {
            recompiled.push(self.run_pooled(|| {
                PreparedPlan::compile(
                    &plan.name,
                    plan.id,
                    name,
                    new_generation,
                    plan.instance.query().clone(),
                    plan.ranking.clone(),
                    &database,
                    encoded.as_ref(),
                )
            })?);
        }
        state.catalog.replace_with(name, database, encoded)?;
        for plan in recompiled {
            self.cache.invalidate(|key| key.0 == plan.id);
            self.counters
                .plan_compilations
                .fetch_add(1, Ordering::Relaxed);
            state.plans.insert(plan.name.clone(), Arc::new(plan));
        }
        Ok(())
    }

    /// Registers a `(query, ranking)` pair against a catalogued database, compiling it
    /// into a prepared plan. Returns a shared handle to the compiled plan.
    pub fn register(
        &self,
        plan_name: &str,
        database_name: &str,
        query: JoinQuery,
        ranking: Ranking,
    ) -> Result<Arc<PreparedPlan>, EngineError> {
        let mut state = self.write_state();
        if state.plans.contains_key(plan_name) {
            return Err(EngineError::DuplicatePlan(plan_name.to_string()));
        }
        let entry = state.catalog.get(database_name)?;
        let (generation, database) = (entry.generation, Arc::clone(&entry.database));
        let encoded = entry.encoded.clone();
        let id = state.next_plan_id;
        let plan = Arc::new(self.run_pooled(|| {
            PreparedPlan::compile(
                plan_name,
                id,
                database_name,
                generation,
                query,
                ranking,
                &database,
                encoded.as_ref(),
            )
        })?);
        state.next_plan_id += 1;
        self.counters
            .plan_compilations
            .fetch_add(1, Ordering::Relaxed);
        state.plans.insert(plan_name.to_string(), Arc::clone(&plan));
        Ok(plan)
    }

    /// Drops a plan and its cached results.
    pub fn drop_plan(&self, plan_name: &str) -> Result<(), EngineError> {
        let mut state = self.write_state();
        let plan = state
            .plans
            .remove(plan_name)
            .ok_or_else(|| EngineError::UnknownPlan(plan_name.to_string()))?;
        self.cache.invalidate(|key| key.0 == plan.id);
        Ok(())
    }

    /// Looks up a prepared plan by name, returning a shared handle.
    pub fn plan(&self, plan_name: &str) -> Result<Arc<PreparedPlan>, EngineError> {
        self.read_state()
            .plans
            .get(plan_name)
            .map(Arc::clone)
            .ok_or_else(|| EngineError::UnknownPlan(plan_name.to_string()))
    }

    /// A snapshot of the registered plans in name order.
    pub fn plans(&self) -> Vec<Arc<PreparedPlan>> {
        self.read_state().plans.values().map(Arc::clone).collect()
    }

    /// A snapshot of the database catalog. Entries hold `Arc<Database>` handles, so
    /// the snapshot is cheap (no tuple data is copied) and immutable-consistent: it
    /// reflects one instant of catalog state.
    pub fn catalog(&self) -> Catalog {
        self.read_state().catalog.clone()
    }

    /// Serves an exact φ-quantile from a prepared plan (cache-aware).
    pub fn quantile(&self, plan_name: &str, phi: f64) -> Result<EngineAnswer, EngineError> {
        self.quantile_with(plan_name, phi, Accuracy::Exact)
    }

    /// Serves a φ-quantile at the requested accuracy (cache-aware).
    ///
    /// Concurrency: the plan handle is cloned under a brief read lock; the solve runs
    /// entirely outside any lock against the handle's immutable generation of data.
    /// Cold **exact** requests additionally pass through the in-flight coalescing
    /// gate: concurrent misses against the same `(plan, generation)` merge into one
    /// shared batched solve instead of each paying a full recursion.
    pub fn quantile_with(
        &self,
        plan_name: &str,
        phi: f64,
        accuracy: Accuracy,
    ) -> Result<EngineAnswer, EngineError> {
        self.with_request_trace(
            "request",
            vec![
                ("verb", ArgValue::Str("quantile".to_string())),
                ("plan", ArgValue::Str(plan_name.to_string())),
                ("phi", ArgValue::F64(phi)),
            ],
            || self.quantile_with_inner(plan_name, phi, accuracy),
        )
    }

    fn quantile_with_inner(
        &self,
        plan_name: &str,
        phi: f64,
        accuracy: Accuracy,
    ) -> Result<EngineAnswer, EngineError> {
        let plan = self.plan(plan_name)?;
        self.counters
            .quantile_requests
            .fetch_add(1, Ordering::Relaxed);
        let key = (plan.id, plan.generation, phi.to_bits(), accuracy.key_bits());
        if let Some(result) = self.cache_get_timed(plan.id, &key) {
            return Ok(EngineAnswer {
                plan: plan_name.to_string(),
                generation: plan.generation,
                phi,
                accuracy,
                from_cache: true,
                result,
            });
        }
        let result = match accuracy {
            Accuracy::Exact => {
                let gate_entered = Instant::now();
                let outcome = self.gate.serve((plan.id, plan.generation), phi, |phis| {
                    let results = self.solve_batch_uncached(&plan, phis, Accuracy::Exact)?;
                    // Publish to the LRU before the gate publishes to waiters, so
                    // requests arriving after the round closes still hit the cache.
                    for (&target, result) in phis.iter().zip(&results) {
                        let key = (
                            plan.id,
                            plan.generation,
                            target.to_bits(),
                            Accuracy::Exact.key_bits(),
                        );
                        self.insert_cached(&plan, key, result.clone());
                    }
                    // Tag the published results with the leader's trace id so
                    // follower traces can point at the solve they rode on.
                    let tag = current_trace_context()
                        .map(|ctx| ctx.builder.id().0)
                        .unwrap_or(0);
                    Ok((results, tag))
                });
                self.counters
                    .coalesced_batches
                    .fetch_add(outcome.coalesced_rounds, Ordering::Relaxed);
                if outcome.was_follower {
                    self.counters
                        .coalesced_waiters
                        .fetch_add(1, Ordering::Relaxed);
                    self.record_coalesce_wait(gate_entered, outcome.leader_tag);
                }
                outcome.result?
            }
            // Approximate and sampled requests skip the coalescing gate: their
            // answers depend on the request's own (ε, δ, seed) parameters, so
            // rounds cannot be shared across requests with different budgets.
            _ => {
                let mut results = self.solve_batch_uncached(&plan, &[phi], accuracy)?;
                let result = results.pop().expect("one result per requested φ");
                self.insert_cached(&plan, key, result.clone());
                result
            }
        };
        Ok(EngineAnswer {
            plan: plan_name.to_string(),
            generation: plan.generation,
            phi,
            accuracy,
            from_cache: false,
            result,
        })
    }

    /// Solves a batch of fractions against a plan handle, bypassing the cache: the
    /// shared miss path of [`Engine::quantile_with`], [`Engine::quantile_batch_with`],
    /// and the coalescing gate's leader rounds. Returns one result per φ, in input
    /// order, and bumps the `solved` counter.
    fn solve_batch_uncached(
        &self,
        plan: &PreparedPlan,
        phis: &[f64],
        accuracy: Accuracy,
    ) -> Result<Vec<QuantileResult>, EngineError> {
        // Validate up front; randomized sampling requests have no trimmer (the
        // sampler serves them directly), so the trimmer is only selected for the
        // exact and deterministic-ε routes.
        let trimmer = match accuracy {
            Accuracy::Bounded { epsilon, delta, .. } => {
                plan.validate_bounded(epsilon, delta)?;
                None
            }
            _ => Some(plan.trimmer_for(accuracy)?),
        };
        // When a request trace is live, allocate the solve span up front so the
        // per-phase child spans the drivers emit can parent to it; the span
        // itself is recorded below once the solve's duration and backend are
        // known (children may be recorded before their parent).
        let ambient = current_trace_context();
        let solve_span = ambient
            .as_ref()
            .map(|ctx| (ctx.builder.clone(), ctx.parent, ctx.builder.next_span_id()));
        let tracer = RecordingTracer::new(
            RegistryTracer::for_plan(&self.registry, &plan.name),
            solve_span
                .as_ref()
                .map(|(builder, _, span)| (builder.clone(), *span)),
        );
        let _inflight = InflightGuard::enter(self.inflight_cell(&plan.name));
        let solve_started = Instant::now();
        // Exact and deterministic-ε requests run on the plan's cached encoded
        // instance (built once per catalog generation); un-encodable instances use
        // the row path. Both return pointwise-identical answers. Randomized
        // sampling requests run on the encoded direct-access structure, with a
        // seed-identical row fallback.
        let row_solve = || {
            quantile_batch_by_pivoting_traced(
                &plan.instance,
                &plan.ranking,
                phis,
                trimmer
                    .as_deref()
                    .expect("row solves serve trimmer-based accuracies"),
                &self.config.pivoting,
                &tracer,
            )
        };
        // The `or_row_fallback` dispatch policy, inlined so the tracer can
        // attribute the solve to whichever path actually produced the answers.
        // The whole solve runs with the engine's executor pool installed, so the
        // `threads` knob (and `QJOIN_THREADS`) governs every chunked hot loop.
        let (results, used_encoded_path) =
            self.run_pooled(|| -> Result<(Vec<QuantileResult>, bool), EngineError> {
                match (&accuracy, &plan.encoded_instance) {
                    (Accuracy::Exact, Some(encoded)) => {
                        match qjoin_core::encoded::exact_quantile_batch_encoded_traced(
                            encoded,
                            &plan.ranking,
                            phis,
                            &self.config.pivoting,
                            &tracer,
                        ) {
                            Err(CoreError::EncodedUnsupported(_)) => Ok((row_solve()?, false)),
                            other => Ok((other?, true)),
                        }
                    }
                    (Accuracy::Approximate { epsilon }, Some(encoded)) => {
                        match qjoin_core::encoded::approximate_sum_quantile_batch_encoded_traced(
                            encoded,
                            &plan.ranking,
                            phis,
                            *epsilon,
                            &self.config.pivoting,
                            &tracer,
                        ) {
                            Err(CoreError::EncodedUnsupported(_)) => Ok((row_solve()?, false)),
                            other => Ok((other?, true)),
                        }
                    }
                    (
                        Accuracy::Bounded {
                            epsilon,
                            delta,
                            seed,
                        },
                        encoded,
                    ) => {
                        let options = qjoin_core::sampling::SamplingOptions {
                            epsilon: *epsilon,
                            delta: *delta,
                            seed: *seed,
                        };
                        let row_sample = || {
                            qjoin_core::sampling::quantile_by_sampling_batch_via_rows(
                                &plan.instance,
                                &plan.ranking,
                                phis,
                                &options,
                            )
                        };
                        match encoded {
                            Some(encoded) => {
                                match qjoin_core::sampling::quantile_by_sampling_batch_encoded(
                                    encoded,
                                    &plan.ranking,
                                    phis,
                                    &options,
                                ) {
                                    Err(CoreError::EncodedUnsupported(_)) => {
                                        Ok((row_sample()?, false))
                                    }
                                    other => Ok((other?, true)),
                                }
                            }
                            None => Ok((row_sample()?, false)),
                        }
                    }
                    _ => Ok((row_solve()?, false)),
                }
            })?;
        let solve_elapsed = solve_started.elapsed();
        tracer.registry().finish(solve_elapsed, used_encoded_path);
        if let Some((builder, parent, span)) = solve_span {
            builder.record(
                span,
                Some(parent),
                "solve",
                solve_started,
                solve_elapsed,
                vec![
                    ("plan", ArgValue::Str(plan.name.clone())),
                    (
                        "backend",
                        ArgValue::Str(
                            if used_encoded_path { "encoded" } else { "row" }.to_string(),
                        ),
                    ),
                    ("phis", ArgValue::U64(phis.len() as u64)),
                    ("rounds", ArgValue::U64(tracer.registry().rounds())),
                ],
            );
        }
        self.counters
            .solved
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        Ok(results)
    }

    /// Runs one **uncached** solve for `explain analyze` under a dedicated span
    /// trace — bypassing the result cache and the coalescing gate, so the trace
    /// always observes the plan's own rounds — and returns the completed trace.
    /// The trace also lands in the flight recorder (when enabled), so the
    /// `trace` verbs can replay exactly the solve the report summarizes.
    pub(crate) fn traced_uncached_solve(
        &self,
        plan: &Arc<PreparedPlan>,
        phi: f64,
        accuracy: Accuracy,
    ) -> Result<qjoin_telemetry::Trace, EngineError> {
        let builder = TraceBuilder::new(self.recorder.next_trace_id());
        let root = builder.next_span_id();
        let started = builder.epoch();
        let result = with_trace_context(
            TraceContext {
                builder: builder.clone(),
                parent: root,
            },
            || self.solve_batch_uncached(plan, &[phi], accuracy),
        );
        builder.record(
            root,
            None,
            "explain-analyze",
            started,
            started.elapsed(),
            vec![
                ("plan", ArgValue::Str(plan.name.clone())),
                ("phi", ArgValue::F64(phi)),
            ],
        );
        let trace = builder.finish();
        if self.recorder.is_enabled() {
            self.recorder.push(trace.clone());
        }
        result?;
        Ok(trace)
    }

    /// The shared in-flight counter cell for one plan (created on first use;
    /// cells persist so the `qjoin_inflight_solves{plan}` gauge keeps reporting
    /// an explicit zero once a plan has solved at least once).
    fn inflight_cell(&self, plan: &str) -> Arc<AtomicU64> {
        let mut map = self
            .inflight_solves
            .lock()
            .expect("inflight map never poisoned");
        Arc::clone(
            map.entry(plan.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Records a follower's time blocked in the coalescing gate as a
    /// `coalesce-wait` span, referencing the leader's trace id when the leader
    /// was itself traced.
    fn record_coalesce_wait(&self, entered: Instant, leader_tag: Option<u64>) {
        if let Some(ctx) = current_trace_context() {
            let mut args = Vec::new();
            if let Some(tag) = leader_tag {
                args.push(("leader_trace", ArgValue::Str(format!("{tag:x}"))));
            }
            ctx.builder.record_new(
                Some(ctx.parent),
                "coalesce-wait",
                entered,
                entered.elapsed(),
                args,
            );
        }
    }

    /// A cache lookup timed into the `qjoin_cache_lookup_seconds` histogram —
    /// the "cache" span of a request's lifecycle.
    fn cache_get_timed(&self, plan_id: u64, key: &CacheKey) -> Option<QuantileResult> {
        let started = Instant::now();
        let result = self.cache.get(plan_id, key);
        self.cache_lookup.record_duration(started.elapsed());
        if let Some(ctx) = current_trace_context() {
            ctx.builder.record_new(
                Some(ctx.parent),
                "cache-lookup",
                started,
                started.elapsed(),
                vec![("hit", ArgValue::Bool(result.is_some()))],
            );
        }
        result
    }

    /// Caches a solved result — but only if the plan's generation is still the
    /// catalog's current one. A solve that raced `replace_database` must not
    /// resurrect a dead-generation entry after the replacement's invalidation
    /// sweep: the sweep runs under the state write lock, so holding the read lock
    /// across the generation check *and* the insert makes the two atomic with
    /// respect to any replacement.
    fn insert_cached(&self, plan: &PreparedPlan, key: CacheKey, result: QuantileResult) {
        let state = self.read_state();
        let current = state.catalog.get(&plan.database).map(|e| e.generation);
        if current == Ok(plan.generation) {
            self.cache.insert(plan.id, key, result);
        }
    }

    /// Serves many exact φ-quantiles from a prepared plan. Cached fractions are
    /// answered from the cache; all remaining fractions are solved together in **one**
    /// shared divide-and-conquer pass (see [`qjoin_core::batch`]).
    pub fn quantile_batch(
        &self,
        plan_name: &str,
        phis: &[f64],
    ) -> Result<Vec<EngineAnswer>, EngineError> {
        self.quantile_batch_with(plan_name, phis, Accuracy::Exact)
    }

    /// [`Engine::quantile_batch`] at an explicit accuracy. Every answer in the batch
    /// derives from the same plan handle, i.e. one database generation.
    pub fn quantile_batch_with(
        &self,
        plan_name: &str,
        phis: &[f64],
        accuracy: Accuracy,
    ) -> Result<Vec<EngineAnswer>, EngineError> {
        self.with_request_trace(
            "request",
            vec![
                ("verb", ArgValue::Str("batch".to_string())),
                ("plan", ArgValue::Str(plan_name.to_string())),
                ("phis", ArgValue::U64(phis.len() as u64)),
            ],
            || self.quantile_batch_with_inner(plan_name, phis, accuracy),
        )
    }

    fn quantile_batch_with_inner(
        &self,
        plan_name: &str,
        phis: &[f64],
        accuracy: Accuracy,
    ) -> Result<Vec<EngineAnswer>, EngineError> {
        let plan = self.plan(plan_name)?;
        self.counters.batch_requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .quantile_requests
            .fetch_add(phis.len() as u64, Ordering::Relaxed);

        let mut answers: Vec<Option<EngineAnswer>> = vec![None; phis.len()];
        let mut missing: Vec<(usize, f64)> = Vec::new();
        for (pos, &phi) in phis.iter().enumerate() {
            let key = (plan.id, plan.generation, phi.to_bits(), accuracy.key_bits());
            match self.cache_get_timed(plan.id, &key) {
                Some(result) => {
                    answers[pos] = Some(EngineAnswer {
                        plan: plan_name.to_string(),
                        generation: plan.generation,
                        phi,
                        accuracy,
                        from_cache: true,
                        result,
                    });
                }
                None => missing.push((pos, phi)),
            }
        }
        if !missing.is_empty() {
            let miss_phis: Vec<f64> = missing.iter().map(|&(_, phi)| phi).collect();
            // Cold exact misses go through the same in-flight gate as single-φ
            // requests: the whole miss set registers with the flight at once, so
            // concurrent batch requests fold into one shared solve round.
            let results = match accuracy {
                Accuracy::Exact => {
                    let gate_entered = Instant::now();
                    let outcome =
                        self.gate
                            .serve_many((plan.id, plan.generation), &miss_phis, |phis| {
                                let results =
                                    self.solve_batch_uncached(&plan, phis, Accuracy::Exact)?;
                                for (&target, result) in phis.iter().zip(&results) {
                                    let key = (
                                        plan.id,
                                        plan.generation,
                                        target.to_bits(),
                                        Accuracy::Exact.key_bits(),
                                    );
                                    self.insert_cached(&plan, key, result.clone());
                                }
                                let tag = current_trace_context()
                                    .map(|ctx| ctx.builder.id().0)
                                    .unwrap_or(0);
                                Ok((results, tag))
                            });
                    self.counters
                        .coalesced_batches
                        .fetch_add(outcome.coalesced_rounds, Ordering::Relaxed);
                    if outcome.was_follower {
                        self.counters
                            .coalesced_waiters
                            .fetch_add(1, Ordering::Relaxed);
                        self.record_coalesce_wait(gate_entered, outcome.leader_tag);
                    }
                    outcome.results?
                }
                _ => self.solve_batch_uncached(&plan, &miss_phis, accuracy)?,
            };
            for ((pos, phi), result) in missing.into_iter().zip(results) {
                let key = (plan.id, plan.generation, phi.to_bits(), accuracy.key_bits());
                self.insert_cached(&plan, key, result.clone());
                answers[pos] = Some(EngineAnswer {
                    plan: plan_name.to_string(),
                    generation: plan.generation,
                    phi,
                    accuracy,
                    from_cache: false,
                    result,
                });
            }
        }
        Ok(answers
            .into_iter()
            .map(|a| a.expect("every φ answered from cache or batch solve"))
            .collect())
    }

    /// Per-plan storage accounting: for every registered plan, how many of its
    /// relations share tuple storage with the plan's catalog database and how many
    /// are private copies, with estimated byte totals. Sharing is checked by pointer
    /// equality on the underlying storage, so this is a direct observation of the
    /// copy-on-write invariant from the serving layer.
    pub fn plan_storage_stats(&self) -> Vec<PlanStorageStats> {
        let state = self.read_state();
        state
            .plans
            .values()
            .map(|plan| {
                let catalog_db = state
                    .catalog
                    .get(&plan.database)
                    .map(|entry| Arc::clone(&entry.database))
                    .ok();
                let mut stats = PlanStorageStats {
                    plan: plan.name.clone(),
                    database: plan.database.clone(),
                    shared_relations: 0,
                    owned_relations: 0,
                    shared_bytes: 0,
                    owned_bytes: 0,
                };
                for rel in plan.instance.database().relations() {
                    let shared = catalog_db
                        .as_deref()
                        .and_then(|db| db.relation(rel.name()).ok())
                        .is_some_and(|catalog_rel| rel.shares_tuples_with(catalog_rel));
                    let bytes = rel.estimated_tuple_bytes();
                    if shared {
                        stats.shared_relations += 1;
                        stats.shared_bytes += bytes;
                    } else {
                        stats.owned_relations += 1;
                        stats.owned_bytes += bytes;
                    }
                }
                stats
            })
            .collect()
    }

    /// The cache's aggregated hit/miss/eviction/invalidation counters, as a
    /// machine-readable struct (also embedded in [`Engine::stats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard cache counters, in shard order (shard = plan id mod shard count).
    pub fn cache_shard_stats(&self) -> Vec<CacheStats> {
        self.cache.shard_stats()
    }

    /// A snapshot of the engine's state and counters.
    pub fn stats(&self) -> EngineStats {
        let (databases, plans) = {
            let state = self.read_state();
            (state.catalog.len(), state.plans.len())
        };
        EngineStats {
            databases,
            plans,
            cache_entries: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            cache_shards: self.cache.shards(),
            cache: self.cache.stats(),
            counters: self.counters.snapshot(),
        }
    }

    /// The engine's shared metric registry. Layers above the engine (the server's
    /// request-lifecycle timing, its slow-query log) register their metrics here,
    /// so one [`Engine::metrics_snapshot`] scrape covers the whole stack.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Time since the engine was constructed.
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Live entries per cache shard, in shard order.
    pub fn cache_shard_lens(&self) -> Vec<usize> {
        self.cache.shard_lens()
    }

    /// Publishes the engine's counters, cache statistics, catalog gauges, and
    /// uptime into the registry, then snapshots **everything** registered there
    /// (including live solve histograms and any server-side metrics).
    ///
    /// Every exposition surface — the human `stats` dump's derived lines, `stats
    /// json`, and the Prometheus `metrics` verb — renders from this one snapshot,
    /// so the surfaces cannot diverge. The engine's atomic counters remain the
    /// single source of truth; the registry copies are overwritten on every call.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let registry = &self.registry;
        let counters = self.counters.snapshot();
        registry.publish_counter(
            "qjoin_quantile_requests_total",
            &[],
            counters.quantile_requests,
        );
        registry.publish_counter("qjoin_batch_requests_total", &[], counters.batch_requests);
        registry.publish_counter("qjoin_solved_total", &[], counters.solved);
        registry.publish_counter(
            "qjoin_plan_compilations_total",
            &[],
            counters.plan_compilations,
        );
        registry.publish_counter(
            "qjoin_coalesced_batches_total",
            &[],
            counters.coalesced_batches,
        );
        registry.publish_counter(
            "qjoin_coalesced_waiters_total",
            &[],
            counters.coalesced_waiters,
        );

        {
            let inflight = self
                .inflight_solves
                .lock()
                .expect("inflight map never poisoned");
            for (plan, cell) in inflight.iter() {
                registry.publish_gauge(
                    "qjoin_inflight_solves",
                    &[("plan", plan)],
                    cell.load(Ordering::Relaxed) as f64,
                );
            }
        }

        let cache = self.cache.stats();
        registry.publish_counter("qjoin_cache_hits_total", &[], cache.hits);
        registry.publish_counter("qjoin_cache_misses_total", &[], cache.misses);
        registry.publish_counter("qjoin_cache_evictions_total", &[], cache.evictions);
        registry.publish_counter("qjoin_cache_invalidations_total", &[], cache.invalidations);
        registry.publish_gauge("qjoin_cache_entries", &[], self.cache.len() as f64);
        registry.publish_gauge("qjoin_cache_capacity", &[], self.cache.capacity() as f64);
        for (shard, len) in self.cache.shard_lens().into_iter().enumerate() {
            let shard = shard.to_string();
            registry.publish_gauge(
                "qjoin_cache_shard_entries",
                &[("shard", &shard)],
                len as f64,
            );
        }

        {
            let state = self.read_state();
            registry.publish_gauge("qjoin_databases", &[], state.catalog.len() as f64);
            registry.publish_gauge("qjoin_plans", &[], state.plans.len() as f64);
            for (name, entry) in state.catalog.iter() {
                registry.publish_gauge(
                    "qjoin_db_generation",
                    &[("db", name)],
                    entry.generation as f64,
                );
            }
        }
        registry.publish_gauge(
            "qjoin_uptime_seconds",
            &[],
            self.started.elapsed().as_secs_f64(),
        );

        // Executor counters: chunk tasks executed and cross-worker steals on the
        // pool this engine solves with (its own when `threads` is configured, the
        // process-wide pool otherwise).
        let pool = self.pool_stats();
        registry.publish_gauge("qjoin_threads", &[], pool.threads as f64);
        registry.publish_counter("qjoin_parallel_tasks_total", &[], pool.tasks);
        registry.publish_counter("qjoin_parallel_steals_total", &[], pool.steals);
        registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qjoin_core::solver::exact_quantile;
    use qjoin_query::query::{path_query, social_network_query};
    use qjoin_query::variable::vars;
    use qjoin_workload::social::SocialConfig;

    fn social_engine(rows: usize, seed: u64) -> (Engine, SocialConfig) {
        let config = SocialConfig {
            rows_per_relation: rows,
            seed,
            ..Default::default()
        };
        let (_, database) = config.generate().into_parts();
        let engine = Engine::new();
        engine.create_database("social", database).unwrap();
        engine
            .register(
                "likes",
                "social",
                social_network_query(),
                Ranking::sum(vars(&["l2", "l3"])),
            )
            .unwrap();
        (engine, config)
    }

    #[test]
    fn serves_quantiles_identical_to_the_one_shot_solver() {
        let (engine, config) = social_engine(150, 42);
        let instance = config.generate();
        let ranking = config.likes_ranking();
        for phi in [0.1, 0.5, 0.9] {
            let served = engine.quantile("likes", phi).unwrap();
            let direct = exact_quantile(&instance, &ranking, phi).unwrap();
            assert_eq!(served.result.weight, direct.weight, "phi {phi}");
            assert_eq!(served.result.total_answers, direct.total_answers);
            assert!(!served.from_cache);
        }
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let (engine, _) = social_engine(100, 7);
        let first = engine.quantile("likes", 0.5).unwrap();
        let second = engine.quantile("likes", 0.5).unwrap();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.result.weight, second.result.weight);
        let stats = engine.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.counters.solved, 1);
        assert_eq!(stats.counters.quantile_requests, 2);
        assert_eq!(engine.cache_stats().hits, 1);
        // The per-shard breakdown sums to the aggregate.
        let per_shard = engine.cache_shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), 1);
    }

    #[test]
    fn batch_mixes_cache_hits_with_one_shared_solve() {
        let (engine, _) = social_engine(100, 9);
        engine.quantile("likes", 0.5).unwrap();
        let answers = engine.quantile_batch("likes", &[0.25, 0.5, 0.75]).unwrap();
        assert!(!answers[0].from_cache);
        assert!(answers[1].from_cache);
        assert!(!answers[2].from_cache);
        // Batched answers equal single-φ answers.
        for answer in &answers {
            let single = engine.quantile("likes", answer.phi).unwrap();
            assert_eq!(single.result.weight, answer.result.weight);
        }
        assert_eq!(engine.stats().counters.batch_requests, 1);
    }

    #[test]
    fn replace_database_invalidates_cached_results() {
        let (engine, _) = social_engine(80, 1);
        let before = engine.quantile("likes", 0.5).unwrap();
        assert!(engine.quantile("likes", 0.5).unwrap().from_cache);

        let other = SocialConfig {
            rows_per_relation: 80,
            seed: 999,
            ..Default::default()
        };
        let (_, new_db) = other.generate().into_parts();
        engine.replace_database("social", new_db).unwrap();

        let after = engine.quantile("likes", 0.5).unwrap();
        assert!(
            !after.from_cache,
            "replacement must invalidate cached results"
        );
        assert_eq!(engine.catalog().get("social").unwrap().generation, 2);
        assert_eq!(engine.plan("likes").unwrap().generation, 2);
        assert_eq!(before.generation, 1);
        assert_eq!(after.generation, 2);
        // Different seeds virtually always shift the median.
        assert_ne!(
            (before.result.total_answers, before.result.weight.clone()),
            (after.result.total_answers, after.result.weight.clone())
        );
        assert!(engine.stats().cache.invalidations > 0);
    }

    #[test]
    fn replace_database_is_atomic_on_recompile_failure() {
        let (engine, _) = social_engine(60, 3);
        let before_gen = engine.plan("likes").unwrap().generation;
        // A database missing the registered query's relations cannot recompile.
        let bad = Database::new();
        assert!(engine.replace_database("social", bad).is_err());
        assert_eq!(engine.plan("likes").unwrap().generation, before_gen);
        assert_eq!(engine.catalog().get("social").unwrap().generation, 1);
        assert!(engine.quantile("likes", 0.5).is_ok());
    }

    #[test]
    fn intractable_plans_serve_approximate_only() {
        let config = qjoin_workload::path::PathConfig {
            atoms: 3,
            tuples_per_relation: 40,
            join_domain: 5,
            weight_range: 100,
            skew: 0.0,
            seed: 5,
        };
        let instance = config.generate();
        let (query, database) = instance.into_parts();
        let engine = Engine::new();
        engine.create_database("paths", database).unwrap();
        engine
            .register(
                "fullsum",
                "paths",
                query.clone(),
                Ranking::sum(query.variables()),
            )
            .unwrap();
        assert!(matches!(
            engine.quantile("fullsum", 0.5).unwrap_err(),
            EngineError::PlanCannotServe { .. }
        ));
        let approx = engine
            .quantile_with("fullsum", 0.5, Accuracy::Approximate { epsilon: 0.1 })
            .unwrap();
        assert!(approx.result.total_answers > 0);
        // Approximate results are cached under their own key.
        let again = engine
            .quantile_with("fullsum", 0.5, Accuracy::Approximate { epsilon: 0.1 })
            .unwrap();
        assert!(again.from_cache);
    }

    #[test]
    fn approximate_requests_use_the_encoded_path_and_tag_telemetry() {
        let config = qjoin_workload::path::PathConfig {
            atoms: 3,
            tuples_per_relation: 40,
            join_domain: 5,
            weight_range: 100,
            skew: 0.0,
            seed: 5,
        };
        let instance = config.generate();
        let (query, database) = instance.into_parts();
        let engine = Engine::new();
        engine.create_database("paths", database).unwrap();
        engine
            .register(
                "fullsum",
                "paths",
                query.clone(),
                Ranking::sum(query.variables()),
            )
            .unwrap();
        let approx = engine
            .quantile_with("fullsum", 0.5, Accuracy::Approximate { epsilon: 0.1 })
            .unwrap();
        assert!(approx.result.total_answers > 0);
        let snapshot = engine.metrics_snapshot();
        let plan = [("plan", "fullsum")];
        assert_eq!(
            snapshot.counter("qjoin_solve_encoded_total", &plan),
            Some(1),
            "approximate solves must run on the encoded backend"
        );
        assert_eq!(snapshot.counter("qjoin_solve_row_total", &plan), Some(0));
    }

    #[test]
    fn bounded_requests_sample_reproducibly_and_cache_under_their_own_key() {
        let (engine, _) = social_engine(150, 42);
        let accuracy = Accuracy::Bounded {
            epsilon: 0.2,
            delta: 0.1,
            seed: 9,
        };
        let a = engine.quantile_with("likes", 0.5, accuracy).unwrap();
        let b = engine.quantile_with("likes", 0.5, accuracy).unwrap();
        assert!(!a.from_cache);
        assert!(b.from_cache);
        assert_eq!(a.result.weight, b.result.weight);

        // A different seed misses the cache (distinct key) and may answer elsewhere.
        let other = engine
            .quantile_with(
                "likes",
                0.5,
                Accuracy::Bounded {
                    epsilon: 0.2,
                    delta: 0.1,
                    seed: 10,
                },
            )
            .unwrap();
        assert!(!other.from_cache);

        // The sampler ran on the encoded direct-access structure.
        let snapshot = engine.metrics_snapshot();
        let plan = [("plan", "likes")];
        assert_eq!(
            snapshot.counter("qjoin_solve_encoded_total", &plan),
            Some(2)
        );
        assert_eq!(snapshot.counter("qjoin_solve_row_total", &plan), Some(0));
    }

    #[test]
    fn bounded_requests_refuse_hopeless_regimes() {
        // 60 rows → few hundred answers, far below the default Hoeffding budget.
        let (engine, _) = social_engine(10, 3);
        let err = engine
            .quantile_with(
                "likes",
                0.5,
                Accuracy::Bounded {
                    epsilon: 0.05,
                    delta: 0.01,
                    seed: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Core(CoreError::ApproxRefused(_))
        ));
        assert!(err.to_string().contains("exact solve"), "{err}");

        // Invalid sampling parameters are rejected before any solve.
        assert!(matches!(
            engine
                .quantile_with(
                    "likes",
                    0.5,
                    Accuracy::Bounded {
                        epsilon: 0.2,
                        delta: 1.5,
                        seed: 1,
                    },
                )
                .unwrap_err(),
            EngineError::PlanCannotServe { .. }
        ));
    }

    #[test]
    fn plans_share_the_catalog_database_by_pointer() {
        let (engine, _) = social_engine(80, 5);
        engine
            .register(
                "maxlikes",
                "social",
                social_network_query(),
                Ranking::max(social_network_query().variables()),
            )
            .unwrap();
        let catalog_db = Arc::clone(&engine.catalog().get("social").unwrap().database);
        for plan in engine.plans() {
            assert!(
                Arc::ptr_eq(plan.instance.shared_database(), &catalog_db),
                "plan {} must share the catalog database, not copy it",
                plan.name
            );
        }
        for stats in engine.plan_storage_stats() {
            assert_eq!(stats.owned_relations, 0, "plan {}", stats.plan);
            assert_eq!(stats.owned_bytes, 0);
            assert_eq!(stats.shared_relations, 3);
            assert!(stats.shared_bytes > 0);
        }

        // Replacement moves every dependent plan onto one new shared handle.
        let (_, new_db) = SocialConfig {
            rows_per_relation: 80,
            seed: 123,
            ..Default::default()
        }
        .generate()
        .into_parts();
        engine.replace_database("social", new_db).unwrap();
        let new_catalog_db = Arc::clone(&engine.catalog().get("social").unwrap().database);
        assert!(!Arc::ptr_eq(&catalog_db, &new_catalog_db));
        for plan in engine.plans() {
            assert!(Arc::ptr_eq(
                plan.instance.shared_database(),
                &new_catalog_db
            ));
        }
    }

    #[test]
    fn unknown_names_and_duplicates_error() {
        let (engine, _) = social_engine(60, 2);
        assert!(matches!(
            engine.quantile("nope", 0.5).unwrap_err(),
            EngineError::UnknownPlan(_)
        ));
        assert!(matches!(
            engine
                .register(
                    "likes",
                    "social",
                    social_network_query(),
                    Ranking::sum(vars(&["l2", "l3"]))
                )
                .unwrap_err(),
            EngineError::DuplicatePlan(_)
        ));
        assert!(matches!(
            engine
                .register("p2", "missing", path_query(2), Ranking::sum(vars(&["x1"])))
                .unwrap_err(),
            EngineError::UnknownDatabase(_)
        ));
        engine.drop_plan("likes").unwrap();
        assert!(matches!(
            engine.drop_plan("likes").unwrap_err(),
            EngineError::UnknownPlan(_)
        ));
    }

    #[test]
    fn metrics_snapshot_publishes_counters_and_solve_histograms() {
        let (engine, _) = social_engine(100, 13);
        engine.quantile("likes", 0.5).unwrap(); // cold: solves
        engine.quantile("likes", 0.5).unwrap(); // warm: cache hit
        let snapshot = engine.metrics_snapshot();

        // Published counters mirror the engine's atomics exactly.
        assert_eq!(
            snapshot.counter("qjoin_quantile_requests_total", &[]),
            Some(2)
        );
        assert_eq!(snapshot.counter("qjoin_solved_total", &[]), Some(1));
        assert_eq!(snapshot.counter("qjoin_cache_hits_total", &[]), Some(1));
        assert_eq!(
            snapshot.counter("qjoin_plan_compilations_total", &[]),
            Some(1)
        );
        assert_eq!(snapshot.gauge("qjoin_databases", &[]), Some(1.0));
        assert_eq!(snapshot.gauge("qjoin_plans", &[]), Some(1.0));
        assert_eq!(
            snapshot.gauge("qjoin_db_generation", &[("db", "social")]),
            Some(1.0)
        );
        assert!(snapshot.gauge("qjoin_uptime_seconds", &[]).unwrap() >= 0.0);
        // Shard occupancy gauges exist for every shard and sum to the entry count.
        let shards = engine.cache_shard_lens();
        assert_eq!(shards.len(), engine.stats().cache_shards);
        assert_eq!(shards.iter().sum::<usize>(), engine.stats().cache_entries);

        // Live solve telemetry: one whole-solve sample and nonzero phase spans.
        let plan = [("plan", "likes")];
        assert_eq!(
            snapshot
                .histogram("qjoin_solve_seconds", &plan)
                .unwrap()
                .count(),
            1
        );
        let prepare = snapshot
            .histogram(
                "qjoin_solve_phase_seconds",
                &[("plan", "likes"), ("phase", "prepare")],
            )
            .unwrap();
        assert_eq!(prepare.count(), 1);
        let rounds = snapshot.counter("qjoin_solve_rounds_total", &plan).unwrap();
        let trim_rounds = snapshot
            .histogram(
                "qjoin_solve_phase_seconds",
                &[("plan", "likes"), ("phase", "trim-round")],
            )
            .unwrap()
            .count();
        assert_eq!(
            rounds, trim_rounds,
            "round counter mirrors trim-round events"
        );
        // The encoded path served this social-network plan.
        assert_eq!(
            snapshot.counter("qjoin_solve_encoded_total", &plan),
            Some(1)
        );
        assert_eq!(snapshot.counter("qjoin_solve_row_total", &plan), Some(0));
        // Cache lookups were timed (one miss + one hit).
        assert_eq!(
            snapshot
                .histogram("qjoin_cache_lookup_seconds", &[])
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn shared_engine_serves_from_multiple_threads() {
        let (engine, _) = social_engine(80, 11);
        let engine = Arc::new(engine);
        let serial: Vec<_> = [0.2, 0.4, 0.6, 0.8]
            .iter()
            .map(|&phi| engine.quantile("likes", phi).unwrap().result.weight)
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let serial = serial.clone();
                std::thread::spawn(move || {
                    for (i, &phi) in [0.2, 0.4, 0.6, 0.8].iter().enumerate() {
                        let answer = engine.quantile("likes", phi).unwrap();
                        assert_eq!(answer.result.weight, serial[i]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
