//! The `qjoin` CLI: a REPL and one-shot subcommands over an [`Engine`].
//!
//! The REPL speaks a tiny command language (`help` prints it) against a long-lived
//! in-process engine; the one-shot subcommands (`register`, `quantile`, `batch`,
//! `stats`) synthesize the equivalent REPL script against a fresh engine, which makes
//! them convenient for smoke tests and CI. Databases are produced by the workspace's
//! workload generators (`social`, `path`, `star`, `starschema`, `random`), so a realistic catalog
//! can be spun up from a single command line.
//!
//! All command handling lives in [`CliSession`] so it is unit-testable and shareable:
//! the `qjoin` binary (in the `qjoin-server` crate, which adds the `serve` and
//! `client` subcommands) wraps [`main_with_args`], and the network server executes
//! the same command language against one shared session.

use crate::engine::Engine;
use crate::plan::{Accuracy, PreparedPlan};
use qjoin_query::{Instance, JoinQuery, Variable};
use qjoin_ranking::{AggregateKind, Ranking};
use qjoin_workload::path::PathConfig;
use qjoin_workload::random_acyclic::RandomAcyclicConfig;
use qjoin_workload::social::SocialConfig;
use qjoin_workload::star::StarConfig;
use qjoin_workload::star_schema::StarSchemaConfig;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, IsTerminal, Write as _};
use std::sync::{Arc, RwLock};

/// Usage text shared by `help`, `--help`, and parse errors.
pub const HELP: &str = "\
qjoin — persistent quantile-query engine for joins (PODS 2023)

USAGE (one-shot):
  qjoin register <workload> [key=value ...] [ranking=<spec>]
  qjoin quantile <workload> <phi> [key=value ...] [ranking=<spec>] [eps=<ε>]
  qjoin batch    <workload> <phi> [<phi> ...] [key=value ...] [ranking=<spec>] [eps=<ε>]
  qjoin stats    <workload> [key=value ...]
  qjoin repl                read REPL commands from stdin

USAGE (network; provided by the qjoin-server crate's binary):
  qjoin serve  [addr=127.0.0.1:0] [workers=N] [queue=N] [cache=N]
  qjoin client <addr> [command ...]          one-shot or stdin-driven remote session

WORKLOADS (database generators; all keys optional):
  social   rows= seed= users= events= likes= skew=     (default ranking sum:l2,l3)
  path     atoms= rows= domain= weights= skew= seed=   (default ranking max:*)
  star     arms= rows= domain= weights= skew= seed=    (default ranking max:*)
  starschema  lineitems= orders= parts= weights= skew= seed=  (default ranking sum:wl)
  random   atoms= arity= rows= domain= seed=           (default ranking max:*)

RANKING SPECS:
  sum:l2,l3    max:*    min:x1,x3    lex:x2,x1        (* = all query variables)

REPL COMMANDS:
  open <db> <workload> [key=value ...]      generate + catalog a database
  replace <db> <workload> [key=value ...]   swap a database (invalidates caches)
  register <plan> <db> [ranking=<spec>]     compile a prepared plan
  quantile <plan> <phi> [eps=<ε>]           serve one quantile
                        [delta=<δ> seed=<s>]  (with eps=: randomized sampling route)
  batch <plan> <phi> [<phi> ...] [eps=<ε>]  serve many quantiles in one pass
  plans                                     list prepared plans
  stats                                     engine statistics + per-plan storage sharing
  stats json                                the same statistics as one JSON object
  metrics                                   Prometheus-style metric exposition lines
  trace last [n]                            the n most recent request span traces
  trace id <id>                             one retained trace as an indented span tree
  trace chrome <id|last>                    a trace as Chrome trace-event JSON (chrome://tracing)
  explain <plan> <phi>                      dichotomy class, join-tree shape, target rank
  explain analyze <plan> <phi>              explain + one traced uncached solve's observations
  help                                      this text
  quit | exit                               leave the REPL";

/// Metadata the CLI remembers per catalogued database: the query its workload joins
/// over and the workload's default ranking.
struct DbMeta {
    query: JoinQuery,
    default_ranking: Ranking,
}

/// An engine session executing the textual command language (the REPL's and the
/// network protocol's shared brain).
///
/// The session is **thread-safe**: [`CliSession::execute`] takes `&self`, the engine
/// is held behind an [`Arc`], and the per-database workload metadata sits behind its
/// own lock — `qjoin-server` shares one session across all of its worker threads.
pub struct CliSession {
    engine: Arc<Engine>,
    db_meta: RwLock<BTreeMap<String, DbMeta>>,
}

impl Default for CliSession {
    fn default() -> Self {
        CliSession::new()
    }
}

impl CliSession {
    /// A session with a fresh engine.
    pub fn new() -> Self {
        CliSession::with_engine(Arc::new(Engine::new()))
    }

    /// A session over a shared engine (used by the network server).
    pub fn with_engine(engine: Arc<Engine>) -> Self {
        CliSession {
            engine,
            db_meta: RwLock::new(BTreeMap::new()),
        }
    }

    /// The underlying shared engine (used by tests and embedding code).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Executes one REPL command line, returning its printable output.
    pub fn execute(&self, line: &str) -> Result<String, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&command, rest)) = tokens.split_first() else {
            return Ok(String::new());
        };
        match command {
            "help" => Ok(HELP.to_string()),
            "open" => self.cmd_open(rest, false),
            "replace" => self.cmd_open(rest, true),
            "register" => self.cmd_register(rest),
            "quantile" => self.cmd_quantile(rest),
            "batch" => self.cmd_batch(rest),
            "plans" => Ok(self.cmd_plans()),
            "stats" => match rest {
                [] => Ok(self.cmd_stats()),
                ["json"] => Ok(self.cmd_stats_json()),
                _ => Err("usage: stats [json]".to_string()),
            },
            "metrics" => Ok(self.cmd_metrics()),
            "trace" => self.cmd_trace(rest),
            "explain" => self.cmd_explain(rest),
            "quit" | "exit" => Err("__quit__".to_string()),
            other => Err(format!("unknown command {other:?}; try `help`")),
        }
    }

    fn cmd_open(&self, args: &[&str], replace: bool) -> Result<String, String> {
        let [name, workload, params @ ..] = args else {
            return Err("usage: open|replace <db> <workload> [key=value ...]".to_string());
        };
        let params = parse_params(params)?;
        let (instance, default_ranking) = generate_workload(workload, &params)?;
        let (query, database) = instance.into_parts();
        let tuples = database.total_tuples();
        let relations = database.num_relations();
        if replace {
            self.engine
                .replace_database(name, database)
                .map_err(|e| e.to_string())?;
        } else {
            self.engine
                .create_database(name, database)
                .map_err(|e| e.to_string())?;
        }
        let generation = self.engine.catalog().get(name).unwrap().generation;
        self.db_meta.write().unwrap().insert(
            name.to_string(),
            DbMeta {
                query,
                default_ranking,
            },
        );
        Ok(format!(
            "db {name}: {tuples} tuples across {relations} relations (workload {workload}, generation {generation})"
        ))
    }

    fn cmd_register(&self, args: &[&str]) -> Result<String, String> {
        let [plan, db, params @ ..] = args else {
            return Err("usage: register <plan> <db> [ranking=<spec>]".to_string());
        };
        let params = parse_params(params)?;
        ensure_known_keys(&params, &["ranking"])?;
        let (query, ranking) = {
            let db_meta = self.db_meta.read().unwrap();
            let meta = db_meta
                .get(*db)
                .ok_or_else(|| format!("no database named {db:?}; `open` one first"))?;
            let ranking = match params.get("ranking") {
                Some(spec) => parse_ranking(spec, &meta.query)?,
                None => meta.default_ranking.clone(),
            };
            (meta.query.clone(), ranking)
        };
        let plan = self
            .engine
            .register(plan, db, query, ranking)
            .map_err(|e| e.to_string())?;
        Ok(describe_plan(&plan))
    }

    fn cmd_quantile(&self, args: &[&str]) -> Result<String, String> {
        let [plan, phi, params @ ..] = args else {
            return Err(
                "usage: quantile <plan> <phi> [eps=<ε>] [delta=<δ>] [seed=<s>]".to_string(),
            );
        };
        let phi = parse_phi(phi)?;
        let params = parse_params(params)?;
        ensure_known_keys(&params, &["eps", "delta", "seed"])?;
        let accuracy = parse_accuracy(&params)?;
        let answer = self
            .engine
            .quantile_with(plan, phi, accuracy)
            .map_err(|e| e.to_string())?;
        Ok(describe_answer(&answer))
    }

    fn cmd_batch(&self, args: &[&str]) -> Result<String, String> {
        let [plan, rest @ ..] = args else {
            return Err(
                "usage: batch <plan> <phi> [<phi> ...] [eps=<ε>] [delta=<δ>] [seed=<s>]"
                    .to_string(),
            );
        };
        let (phi_tokens, param_tokens): (Vec<&str>, Vec<&str>) =
            rest.iter().partition(|t| !t.contains('='));
        if phi_tokens.is_empty() {
            return Err("batch needs at least one φ".to_string());
        }
        let phis: Vec<f64> = phi_tokens
            .iter()
            .map(|t| parse_phi(t))
            .collect::<Result<_, _>>()?;
        let params = parse_params(&param_tokens)?;
        ensure_known_keys(&params, &["eps", "delta", "seed"])?;
        let accuracy = parse_accuracy(&params)?;
        let answers = self
            .engine
            .quantile_batch_with(plan, &phis, accuracy)
            .map_err(|e| e.to_string())?;
        let mut out = String::new();
        for answer in &answers {
            writeln!(out, "{}", describe_answer(answer)).unwrap();
        }
        let solved = answers.iter().filter(|a| !a.from_cache).count();
        write!(
            out,
            "batch of {}: {} solved in one shared pass, {} from cache",
            answers.len(),
            solved,
            answers.len() - solved
        )
        .unwrap();
        Ok(out)
    }

    fn cmd_plans(&self) -> String {
        let mut lines: Vec<String> = self
            .engine
            .plans()
            .iter()
            .map(|p| describe_plan(p))
            .collect();
        if lines.is_empty() {
            lines.push("no plans registered".to_string());
        }
        lines.join("\n")
    }

    /// Engine counters followed by the storage report: resident bytes per catalogued
    /// database, and per plan the split between relations shared with the catalog
    /// (pointer-identical storage) and privately owned copies. With the copy-on-write
    /// data layer every plan should report `owned=0`.
    fn cmd_stats(&self) -> String {
        // Sourced from the same registry snapshot as `stats json` / `metrics`,
        // so the human dump and the machine surfaces can never diverge.
        let metrics = self.engine.metrics_snapshot();
        let stats = self.engine.stats();
        let mut out = stats.to_string();
        let uptime = metrics.gauge("qjoin_uptime_seconds", &[]).unwrap_or(0.0);
        write!(out, "\nuptime:             {uptime:.1}s").unwrap();
        let occupancy: Vec<String> = (0..stats.cache_shards)
            .map(|shard| {
                let shard = shard.to_string();
                let entries = metrics
                    .gauge("qjoin_cache_shard_entries", &[("shard", &shard)])
                    .unwrap_or(0.0);
                format!("{}", entries as usize)
            })
            .collect();
        write!(
            out,
            "\ncache shards:       occupancy=[{}]",
            occupancy.join(", ")
        )
        .unwrap();
        let catalog = self.engine.catalog();
        for (name, entry) in catalog.iter() {
            let generation = metrics
                .gauge("qjoin_db_generation", &[("db", name)])
                .map_or(entry.generation, |g| g as u64);
            write!(
                out,
                "\ndb {name}: generation={generation} relations={} tuples={} resident≈{}",
                entry.database.num_relations(),
                entry.database.total_tuples(),
                format_bytes(entry.database.estimated_tuple_bytes()),
            )
            .unwrap();
        }
        for s in self.engine.plan_storage_stats() {
            write!(
                out,
                "\nplan {}: db={} relations shared={} owned={} bytes shared≈{} owned≈{}",
                s.plan,
                s.database,
                s.shared_relations,
                s.owned_relations,
                format_bytes(s.shared_bytes),
                format_bytes(s.owned_bytes),
            )
            .unwrap();
        }
        out
    }

    fn cmd_stats_json(&self) -> String {
        qjoin_telemetry::render_json(&self.engine.metrics_snapshot())
    }

    fn cmd_metrics(&self) -> String {
        qjoin_telemetry::render_prometheus(&self.engine.metrics_snapshot())
            .trim_end()
            .to_string()
    }

    /// `trace last [n]` / `trace id <id>` / `trace chrome <id|last>`: reads
    /// recorded request traces back out of the engine's flight recorder.
    fn cmd_trace(&self, args: &[&str]) -> Result<String, String> {
        const USAGE: &str = "usage: trace last [n] | trace id <id> | trace chrome <id|last>";
        let recorder = self.engine.recorder();
        if !recorder.is_enabled() {
            return Err("span tracing is disabled (flight recorder capacity 0); \
                 restart with a non-zero tracecap"
                .to_string());
        }
        let last_trace = || {
            recorder
                .last(1)
                .into_iter()
                .next()
                .ok_or_else(|| "no traces recorded yet".to_string())
        };
        let by_id = |raw: &str| {
            let id = qjoin_telemetry::TraceId::parse(raw)
                .ok_or_else(|| format!("invalid trace id {raw:?} (expected hex)"))?;
            recorder
                .get(id)
                .ok_or_else(|| format!("trace {id} is not in the flight recorder (evicted?)"))
        };
        match args {
            [] | ["last"] => Ok(qjoin_telemetry::render_tree(last_trace()?.as_ref())),
            ["last", n] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("invalid trace count {n:?}"))?;
                let traces = recorder.last(n.max(1));
                if traces.is_empty() {
                    return Err("no traces recorded yet".to_string());
                }
                Ok(traces
                    .iter()
                    .map(|t| qjoin_telemetry::render_tree(t))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            ["id", raw] => Ok(qjoin_telemetry::render_tree(by_id(raw)?.as_ref())),
            ["chrome", "last"] => Ok(qjoin_telemetry::chrome_trace_json(last_trace()?.as_ref())),
            ["chrome", raw] => Ok(qjoin_telemetry::chrome_trace_json(by_id(raw)?.as_ref())),
            _ => Err(USAGE.to_string()),
        }
    }

    /// `explain [analyze] <plan> <phi>`: the §5 dichotomy class and plan shape,
    /// plus (with `analyze`) one traced uncached solve's observed rounds.
    fn cmd_explain(&self, args: &[&str]) -> Result<String, String> {
        const USAGE: &str = "usage: explain [analyze] <plan> <phi>";
        let (analyze, rest) = match args {
            ["analyze", rest @ ..] => (true, rest),
            rest => (false, rest),
        };
        let [plan, phi] = rest else {
            return Err(USAGE.to_string());
        };
        let phi = parse_phi(phi)?;
        let report = self
            .engine
            .explain(plan, phi, analyze)
            .map_err(|e| e.to_string())?;
        Ok(report.render().trim_end().to_string())
    }
}

/// Formats a byte count with a binary unit suffix.
fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

fn describe_plan(plan: &PreparedPlan) -> String {
    format!(
        "plan {}: db={} gen={} strategy={} answers={} ranking={} compile={:.2}ms",
        plan.name,
        plan.database,
        plan.generation,
        plan.strategy.label(),
        plan.total_answers,
        plan.ranking,
        plan.compile_time.as_secs_f64() * 1_000.0
    )
}

fn describe_answer(answer: &crate::engine::EngineAnswer) -> String {
    let accuracy = match answer.accuracy {
        Accuracy::Exact => String::new(),
        Accuracy::Approximate { epsilon } => format!(" eps={epsilon}"),
        Accuracy::Bounded {
            epsilon,
            delta,
            seed,
        } => format!(" eps={epsilon} delta={delta} seed={seed}"),
    };
    format!(
        "phi={:.4}{}: weight={} rank={}/{} iterations={}{}",
        answer.phi,
        accuracy,
        answer.result.weight,
        answer.result.target_index,
        answer.result.total_answers,
        answer.result.iterations,
        if answer.from_cache { " (cached)" } else { "" }
    )
}

/// Parses `key=value` tokens; rejects anything else.
fn parse_params(tokens: &[&str]) -> Result<BTreeMap<String, String>, String> {
    let mut params = BTreeMap::new();
    for token in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("expected key=value, got {token:?}"));
        };
        params.insert(key.to_string(), value.to_string());
    }
    Ok(params)
}

/// Rejects parameters outside the allowed set, so typos (`row=` for `rows=`) fail
/// loudly instead of silently running on defaults.
fn ensure_known_keys(params: &BTreeMap<String, String>, allowed: &[&str]) -> Result<(), String> {
    for key in params.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown parameter {key:?}; expected one of: {}",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn param<T: std::str::FromStr>(
    params: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match params.get(key) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value {raw:?} for {key}")),
        None => Ok(default),
    }
}

fn parse_phi(token: &str) -> Result<f64, String> {
    let phi: f64 = token.parse().map_err(|_| format!("invalid φ {token:?}"))?;
    if !(0.0..=1.0).contains(&phi) {
        return Err(format!("φ must be in [0, 1], got {phi}"));
    }
    Ok(phi)
}

/// `eps=` alone selects the deterministic ε-approximation; adding `delta=` and/or
/// `seed=` switches to the randomized sampler (Hoeffding bound, reproducible by
/// seed), defaulting δ = 0.01 and seed = 0x5eed.
fn parse_accuracy(params: &BTreeMap<String, String>) -> Result<Accuracy, String> {
    let epsilon = params
        .get("eps")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| format!("invalid eps {raw:?}"))
        })
        .transpose()?;
    let delta = params
        .get("delta")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| format!("invalid delta {raw:?}"))
        })
        .transpose()?;
    let seed = params
        .get("seed")
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|_| format!("invalid seed {raw:?}"))
        })
        .transpose()?;
    match (epsilon, delta.is_some() || seed.is_some()) {
        (None, false) => Ok(Accuracy::Exact),
        (None, true) => {
            Err("delta=/seed= request randomized sampling and need eps= too".to_string())
        }
        (Some(epsilon), false) => Ok(Accuracy::Approximate { epsilon }),
        (Some(epsilon), true) => Ok(Accuracy::Bounded {
            epsilon,
            delta: delta.unwrap_or(0.01),
            seed: seed.unwrap_or(0x5eed),
        }),
    }
}

/// Parses a ranking spec `kind:vars` (vars a comma list, or `*` for all query
/// variables) against the query it will rank.
fn parse_ranking(spec: &str, query: &JoinQuery) -> Result<Ranking, String> {
    let (kind_str, vars_str) = spec
        .split_once(':')
        .ok_or_else(|| format!("ranking spec {spec:?} must look like kind:v1,v2 or kind:*"))?;
    let vars: Vec<Variable> = if vars_str == "*" {
        query.variables()
    } else {
        vars_str
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|name| {
                let var = Variable::new(name);
                if query.contains_variable(&var) {
                    Ok(var)
                } else {
                    Err(format!("variable {name:?} does not occur in the query"))
                }
            })
            .collect::<Result<_, _>>()?
    };
    if vars.is_empty() {
        return Err("ranking needs at least one variable".to_string());
    }
    let kind = match kind_str {
        "sum" => AggregateKind::Sum,
        "min" => AggregateKind::Min,
        "max" => AggregateKind::Max,
        "lex" => AggregateKind::Lex,
        other => return Err(format!("unknown ranking kind {other:?}")),
    };
    Ok(Ranking::new(kind, vars))
}

/// Generates a workload instance plus its default ranking.
fn generate_workload(
    kind: &str,
    params: &BTreeMap<String, String>,
) -> Result<(Instance, Ranking), String> {
    match kind {
        "social" => {
            ensure_known_keys(
                params,
                &["rows", "seed", "users", "events", "likes", "skew"],
            )?;
            let rows = param(params, "rows", 200usize)?;
            let config = SocialConfig {
                users: param(params, "users", rows.max(1))?,
                events: param(params, "events", (rows / 10).max(1))?,
                rows_per_relation: rows,
                max_likes: param(params, "likes", 1_000i64)?,
                event_skew: param(params, "skew", 0.8f64)?,
                seed: param(params, "seed", 7u64)?,
            };
            let ranking = config.likes_ranking();
            Ok((config.generate(), ranking))
        }
        "path" => {
            ensure_known_keys(
                params,
                &["atoms", "rows", "domain", "weights", "skew", "seed"],
            )?;
            let rows = param(params, "rows", 100usize)?;
            let config = PathConfig {
                atoms: param(params, "atoms", 3usize)?,
                tuples_per_relation: rows,
                join_domain: param(params, "domain", (rows / 10).max(2))?,
                weight_range: param(params, "weights", 1_000_000i64)?,
                skew: param(params, "skew", 0.2f64)?,
                seed: param(params, "seed", 7u64)?,
            };
            let instance = config.generate();
            let ranking = Ranking::max(instance.query().variables());
            Ok((instance, ranking))
        }
        "star" => {
            ensure_known_keys(
                params,
                &["arms", "rows", "domain", "weights", "skew", "seed"],
            )?;
            let rows = param(params, "rows", 100usize)?;
            let config = StarConfig {
                arms: param(params, "arms", 3usize)?,
                tuples_per_relation: rows,
                center_domain: param(params, "domain", (rows / 10).max(2))?,
                weight_range: param(params, "weights", 1_000_000i64)?,
                skew: param(params, "skew", 0.2f64)?,
                seed: param(params, "seed", 7u64)?,
            };
            let instance = config.generate();
            let ranking = Ranking::max(instance.query().variables());
            Ok((instance, ranking))
        }
        "starschema" => {
            ensure_known_keys(
                params,
                &["lineitems", "orders", "parts", "weights", "skew", "seed"],
            )?;
            let lineitems = param(params, "lineitems", 10_000usize)?;
            let mut config = StarSchemaConfig::with_scale(lineitems);
            config.orders = param(params, "orders", config.orders)?;
            config.parts = param(params, "parts", config.parts)?;
            config.weight_range = param(params, "weights", config.weight_range)?;
            config.skew = param(params, "skew", config.skew)?;
            config.seed = param(params, "seed", config.seed)?;
            let ranking = config.revenue_ranking();
            Ok((config.generate(), ranking))
        }
        "random" => {
            ensure_known_keys(params, &["atoms", "arity", "rows", "domain", "seed"])?;
            let config = RandomAcyclicConfig {
                atoms: param(params, "atoms", 3usize)?,
                max_arity: param(params, "arity", 3usize)?,
                tuples_per_relation: param(params, "rows", 20usize)?,
                domain: param(params, "domain", 6i64)?,
                seed: param(params, "seed", 7u64)?,
            };
            let instance = config.generate();
            let ranking = Ranking::max(instance.query().variables());
            Ok((instance, ranking))
        }
        other => Err(format!(
            "unknown workload {other:?} (expected social, path, star, starschema, or random)"
        )),
    }
}

/// Runs a one-shot subcommand by synthesizing the equivalent REPL script against a
/// fresh session. Returns the lines to print.
pub fn run_one_shot(args: &[String]) -> Result<String, String> {
    let [subcommand, workload, rest @ ..] = args else {
        return Err(format!("missing arguments\n\n{HELP}"));
    };
    let (bare, keyed): (Vec<&str>, Vec<&str>) = rest
        .iter()
        .map(String::as_str)
        .partition(|t| !t.contains('='));
    // `ranking=` goes to register, `eps=` to the query, the rest to the workload.
    let mut open_params = Vec::new();
    let mut register_params = Vec::new();
    let mut query_params = Vec::new();
    for token in keyed {
        if token.starts_with("ranking=") {
            register_params.push(token);
        } else if token.starts_with("eps=") {
            query_params.push(token);
        } else {
            open_params.push(token);
        }
    }

    let session = CliSession::new();
    let mut out = String::new();
    let mut run = |session: &CliSession, command: String| -> Result<(), String> {
        let output = session.execute(&command)?;
        if !output.is_empty() {
            writeln!(out, "{output}").unwrap();
        }
        Ok(())
    };
    run(
        &session,
        format!("open db {workload} {}", open_params.join(" ")),
    )?;
    run(
        &session,
        format!("register plan db {}", register_params.join(" ")),
    )?;
    match subcommand.as_str() {
        "register" => {}
        "quantile" | "batch" => {
            if bare.is_empty() {
                return Err(format!("{subcommand} needs at least one φ\n\n{HELP}"));
            }
            run(
                &session,
                format!("batch plan {} {}", bare.join(" "), query_params.join(" ")),
            )?;
        }
        "stats" => {}
        other => return Err(format!("unknown subcommand {other:?}\n\n{HELP}")),
    }
    if *subcommand == "stats" {
        run(&session, "stats".to_string())?;
    }
    Ok(out.trim_end().to_string())
}

/// The REPL: reads commands from stdin, printing a prompt when interactive.
pub fn run_repl() -> i32 {
    let interactive = std::io::stdin().is_terminal();
    let session = CliSession::new();
    let stdin = std::io::stdin();
    if interactive {
        println!("qjoin — type `help` for commands, `quit` to leave");
    }
    loop {
        if interactive {
            print!("qjoin> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => return 0,
            Ok(_) => {}
        }
        match session.execute(&line) {
            Ok(output) if output.is_empty() => {}
            Ok(output) => println!("{output}"),
            Err(e) if e == "__quit__" => return 0,
            Err(e) => {
                eprintln!("error: {e}");
                if !interactive {
                    return 1;
                }
            }
        }
    }
}

/// Entry point shared with the binary: dispatches on the first argument.
pub fn main_with_args(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        None | Some("repl") => run_repl(),
        Some("help") | Some("-h") | Some("--help") => {
            println!("{HELP}");
            0
        }
        Some(_) => match run_one_shot(args) {
            Ok(output) => {
                if !output.is_empty() {
                    println!("{output}");
                }
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(session: &CliSession, command: &str) -> String {
        session
            .execute(command)
            .unwrap_or_else(|e| panic!("command {command:?} failed: {e}"))
    }

    #[test]
    fn open_register_quantile_batch_stats_flow() {
        let session = CliSession::new();
        let opened = ok(&session, "open s social rows=120 seed=3");
        assert!(opened.contains("360 tuples"));
        let registered = ok(&session, "register likes s");
        assert!(
            registered.contains("strategy=sum-adjacent-pair"),
            "{registered}"
        );
        let answer = ok(&session, "quantile likes 0.5");
        assert!(answer.contains("phi=0.5000"), "{answer}");
        let batch = ok(&session, "batch likes 0.1 0.5 0.9");
        assert!(batch.contains("1 from cache"), "{batch}");
        let stats = ok(&session, "stats");
        assert!(stats.contains("plans:              1"), "{stats}");
        // The storage report shows the plan sharing every relation with the catalog.
        assert!(stats.contains("db s: generation=1 relations=3"), "{stats}");
        assert!(
            stats.contains("plan likes: db=s relations shared=3 owned=0"),
            "{stats}"
        );
        assert!(stats.contains("owned≈0 B"), "{stats}");
        // Registry-sourced lines: uptime and per-shard cache occupancy.
        assert!(stats.contains("uptime:             "), "{stats}");
        assert!(stats.contains("cache shards:       occupancy=["), "{stats}");
    }

    #[test]
    fn metrics_and_stats_json_expose_the_registry() {
        let session = CliSession::new();
        ok(&session, "open s social rows=120 seed=3");
        ok(&session, "register likes s");
        ok(&session, "quantile likes 0.5");
        ok(&session, "quantile likes 0.5"); // warm: cache hit

        let metrics = ok(&session, "metrics");
        assert!(
            metrics.contains("# TYPE qjoin_solve_seconds histogram"),
            "{metrics}"
        );
        assert!(
            metrics.contains("qjoin_solve_seconds_count{plan=\"likes\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("qjoin_quantile_requests_total 2"),
            "{metrics}"
        );
        assert!(metrics.contains("qjoin_cache_hits_total 1"), "{metrics}");
        assert!(
            metrics.contains("qjoin_db_generation{db=\"s\"} 1.0"),
            "{metrics}"
        );
        assert!(
            !metrics.ends_with('\n'),
            "trailing newline would add an empty payload line"
        );

        let json = ok(&session, "stats json");
        assert!(!json.contains('\n'), "stats json must be one line: {json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(
            json.contains("\"qjoin_quantile_requests_total\":2"),
            "{json}"
        );
        assert!(
            json.contains("\"qjoin_solve_seconds{plan=\\\"likes\\\"}\":{\"count\":1"),
            "{json}"
        );

        // `stats` with any other argument is a usage error.
        assert!(session.execute("stats nonsense").is_err());
    }

    #[test]
    fn replace_swaps_the_database_and_invalidates() {
        let session = CliSession::new();
        ok(&session, "open s social rows=80 seed=1");
        ok(&session, "register likes s");
        let before = ok(&session, "quantile likes 0.5");
        ok(&session, "replace s social rows=80 seed=99");
        let after = ok(&session, "quantile likes 0.5");
        assert!(!after.contains("(cached)"), "{after}");
        assert_ne!(before, after);
    }

    #[test]
    fn explicit_rankings_and_other_workloads() {
        let session = CliSession::new();
        ok(&session, "open p path atoms=3 rows=60 seed=2");
        let max_plan = ok(&session, "register m p ranking=max:*");
        assert!(max_plan.contains("strategy=minmax"), "{max_plan}");
        let lex_plan = ok(&session, "register l p ranking=lex:x2,x1");
        assert!(lex_plan.contains("strategy=lex"), "{lex_plan}");
        ok(&session, "quantile m 0.25");
        ok(&session, "quantile l 0.75");
        let plans = ok(&session, "plans");
        assert!(
            plans.contains("plan l:") && plans.contains("plan m:"),
            "{plans}"
        );
    }

    #[test]
    fn intractable_sum_falls_back_to_eps() {
        let session = CliSession::new();
        ok(&session, "open p path atoms=3 rows=40 seed=4");
        let plan = ok(&session, "register fullsum p ranking=sum:*");
        assert!(plan.contains("sum-approximate-only"), "{plan}");
        let err = session.execute("quantile fullsum 0.5").unwrap_err();
        assert!(err.contains("cannot serve"), "{err}");
        let approx = ok(&session, "quantile fullsum 0.5 eps=0.1");
        assert!(approx.contains("eps=0.1"), "{approx}");
    }

    #[test]
    fn sampling_route_answers_and_refuses_via_the_command_language() {
        let session = CliSession::new();
        ok(&session, "open s social rows=150 seed=42");
        ok(&session, "register likes s");
        // eps+delta/seed select the randomized sampler; the answer echoes the params.
        let sampled = ok(&session, "quantile likes 0.5 eps=0.2 delta=0.1 seed=9");
        assert!(sampled.contains("eps=0.2 delta=0.1 seed=9"), "{sampled}");
        let again = ok(&session, "quantile likes 0.5 eps=0.2 delta=0.1 seed=9");
        assert!(again.contains("(cached)"), "{again}");
        // Hopeless regime: the Hoeffding budget dwarfs the answer count, so the
        // request is refused with the witness on one clean error line.
        ok(&session, "open tiny social rows=10 seed=3");
        ok(&session, "register tinyplan tiny");
        let err = session
            .execute("quantile tinyplan 0.5 eps=0.05 delta=0.01 seed=1")
            .unwrap_err();
        assert!(err.contains("approximate solve refused"), "{err}");
        assert!(!err.contains('\n'), "wire errors must be one line: {err}");
        // delta/seed without eps is a parse error, not a silent exact solve.
        assert!(session.execute("quantile likes 0.5 delta=0.1").is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let session = CliSession::new();
        assert!(session.execute("open").is_err());
        assert!(session.execute("open s nosuch").is_err());
        assert!(session.execute("quantile nope 0.5").is_err());
        assert!(session.execute("bogus").is_err());
        assert!(session.execute("quantile nope 1.5").is_err());
        ok(&session, "open s social rows=40");
        assert!(session.execute("register p s ranking=sum:zz").is_err());
        assert!(session.execute("register p s ranking=weird:*").is_err());
        // Typoed parameter keys fail loudly instead of running on defaults.
        assert!(session.execute("open t social row=500").is_err());
        assert!(session.execute("register p s rankin=max:*").is_err());
        ok(&session, "register p s");
        assert!(session.execute("quantile p 0.5 esp=0.1").is_err());
        assert!(session.execute("batch p 0.5 esp=0.1").is_err());
    }

    #[test]
    fn trace_verbs_replay_recorded_requests() {
        let session = CliSession::new();
        ok(&session, "open s social rows=120 seed=3");
        ok(&session, "register likes s");
        ok(&session, "quantile likes 0.5");

        // The cold solve recorded a full request trace: lifecycle spans plus
        // one per solve phase, each carrying its structured arguments.
        let tree = ok(&session, "trace last 1");
        for needle in [
            "request",
            "cache-lookup",
            "solve",
            "prepare",
            "pivot-scan",
            "trim-round",
            "materialize",
            "round=",
            "candidates=",
        ] {
            assert!(tree.contains(needle), "missing {needle:?} in:\n{tree}");
        }

        // `trace id` replays the same trace by its hex id.
        let id = tree
            .split_whitespace()
            .nth(1)
            .expect("render_tree leads with `trace <id>`");
        let by_id = ok(&session, &format!("trace id {id}"));
        assert_eq!(tree, by_id);

        // The chrome export is one line of trace-event JSON with complete events.
        let chrome = ok(&session, &format!("trace chrome {id}"));
        assert!(!chrome.contains('\n'), "{chrome}");
        assert!(chrome.starts_with('[') && chrome.ends_with(']'), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"trim-round\""), "{chrome}");
        assert_eq!(ok(&session, "trace chrome last"), chrome);

        // A warm repeat records a new (cache-hit) trace, newest first.
        ok(&session, "quantile likes 0.5");
        let warm = ok(&session, "trace last 1");
        assert!(warm.contains("hit=true"), "{warm}");
        assert!(!warm.contains("solve"), "{warm}");

        // Errors are reported, not panicked.
        assert!(session.execute("trace id zzz").is_err());
        assert!(session.execute("trace id ffffffff").is_err());
        assert!(session.execute("trace bogus").is_err());
    }

    #[test]
    fn trace_reports_disabled_recorder() {
        let session =
            CliSession::with_engine(Arc::new(Engine::with_config(crate::engine::EngineConfig {
                flight_recorder_capacity: 0,
                ..Default::default()
            })));
        ok(&session, "open s social rows=40 seed=1");
        ok(&session, "register likes s");
        ok(&session, "quantile likes 0.5");
        let err = session.execute("trace last").unwrap_err();
        assert!(err.contains("disabled"), "{err}");
    }

    #[test]
    fn explain_names_the_dichotomy_class() {
        let session = CliSession::new();
        ok(&session, "open s social rows=120 seed=3");
        ok(&session, "register likes s");
        let report = ok(&session, "explain likes 0.5");
        assert!(
            report.contains("dichotomy class: sum-adjacent-pair"),
            "{report}"
        );
        assert!(report.contains("Theorem 5.6"), "{report}");
        assert!(report.contains("join tree: 3 atoms"), "{report}");
        assert!(report.contains("targets rank"), "{report}");

        // analyze runs one real solve and reports its observed rounds.
        let analyzed = ok(&session, "explain analyze likes 0.5");
        assert!(analyzed.contains("analyze: solved in"), "{analyzed}");
        assert!(analyzed.contains("round 0:"), "{analyzed}");
        assert!(analyzed.contains("n_lt="), "{analyzed}");

        // The intractable class explains itself and analyzes approximately.
        ok(&session, "open p path atoms=3 rows=40 seed=4");
        ok(&session, "register fullsum p ranking=sum:*");
        let hard = ok(&session, "explain analyze fullsum 0.5");
        assert!(hard.contains("sum-approximate-only"), "{hard}");
        assert!(hard.contains("NP-hard"), "{hard}");
        assert!(hard.contains("approximate eps=0.05"), "{hard}");

        assert!(session.execute("explain").is_err());
        assert!(session.execute("explain nope 0.5").is_err());
        assert!(session.execute("explain likes 1.5").is_err());
    }

    #[test]
    fn bytes_format_uses_binary_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn one_shot_register_and_batch() {
        let register = run_one_shot(&[
            "register".to_string(),
            "social".to_string(),
            "rows=80".to_string(),
            "seed=3".to_string(),
        ])
        .unwrap();
        assert!(register.contains("plan plan:"), "{register}");
        let batch = run_one_shot(&[
            "batch".to_string(),
            "social".to_string(),
            "0.1".to_string(),
            "0.5".to_string(),
            "0.9".to_string(),
            "rows=80".to_string(),
        ])
        .unwrap();
        assert!(batch.contains("solved in one shared pass"), "{batch}");
        let stats = run_one_shot(&[
            "stats".to_string(),
            "social".to_string(),
            "rows=40".to_string(),
        ])
        .unwrap();
        assert!(stats.contains("plans:              1"), "{stats}");
        assert!(run_one_shot(&["quantile".to_string(), "social".to_string()]).is_err());
        assert!(run_one_shot(&["bogus".to_string(), "social".to_string()]).is_err());
    }
}
